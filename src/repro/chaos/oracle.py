"""Recovery-equivalence oracles: faulted runs must equal fault-free runs.

The differential-testing core of the chaos harness.  Each ``check_*``
function builds one layer's workload, runs it **fault-free** and **under a
fault plan** (twice), and asserts three families of properties:

1. **Recovery equivalence** — the faulted run's final answer is
   byte-equal (``pickle``) to the fault-free run's.  Crashes, stragglers,
   lost shuffle partitions and lost blocks may cost time, never
   correctness.
2. **Determinism** — two faulted runs from the same seed produce the
   identical injection trace and the identical result.  This is the
   mechanical check of the seed-determinism contract in
   :mod:`repro.chaos.plan`.
3. **Conservation** — layer-specific invariants: no record lost or
   double-counted, backlog/queue bookkeeping conserved, event-queue heap
   and index consistency (:meth:`IndexedHeap.check_invariants`) sampled
   while faults are in flight.

Use :func:`run_all` / :func:`sweep` to run every layer over one or many
seeds; each returns :class:`OracleReport` objects whose ``ok`` flag and
``failures`` list feed straight into property tests.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from operator import add
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..cloud.autoscale import ThresholdPolicy, simulate_autoscaling
from ..cluster import make_cluster
from ..common.errors import TaskFailedError
from ..dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from ..resilience import (
    AdmissionConfig,
    HedgePolicy,
    ResiliencePolicies,
    RetryPolicy,
)
from ..simcore.kernel import Simulator
from ..storage.dfs import DFSConfig, DistributedFS
from ..streaming.backpressure import PipelineConfig, run_event_pipeline
from ..streaming.checkpoint import (
    CheckpointConfig,
    run_stateful_stream,
    run_windowed_stream,
)
from ..streaming.events import WindowAgg, WindowSpec, assign_tumbling
from ..streaming.microbatch import MicroBatchConfig, run_microbatch
from ..workloads.generators import event_stream
from .adapters import (
    ClusterChaos,
    DFSChaos,
    EngineChaos,
    InjectionTrace,
    burst_rate,
    burst_series,
    operator_crash_times,
    snapshot_corrupt_times,
)
from .plan import FaultEvent, FaultPlan

__all__ = ["OracleReport", "check_dataflow", "check_streaming",
           "check_microbatch", "check_event_streaming", "check_dfs",
           "check_autoscale", "check_resilience", "check_serve",
           "check_integrity", "LAYERS", "run_all", "sweep"]


@dataclass
class OracleReport:
    """Outcome of one layer's recovery-equivalence check."""

    layer: str
    seed: int
    plan: FaultPlan
    ok: bool = True
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    injections: int = 0

    def expect(self, cond: bool, label: str) -> bool:
        """Record one assertion; flips ``ok`` on failure."""
        if cond:
            self.checks.append(label)
        else:
            self.ok = False
            self.failures.append(label)
        return bool(cond)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mark = "OK" if self.ok else f"FAIL({', '.join(self.failures)})"
        return (f"<OracleReport {self.layer} seed={self.seed} "
                f"{len(self.checks)} checks, {self.injections} faults: {mark}>")


def _heap_monitor(sim: Simulator, report: OracleReport,
                  period: float = 0.5, samples: int = 20) -> None:
    """Sample the kernel's event-queue invariants while chaos is live.

    Bounded (``samples`` probes) so the monitor never keeps the queue
    alive after the workload drains.
    """
    def _mon():
        for _ in range(samples):
            yield sim.timeout(period)
            try:
                sim._queue.check_invariants()
            except AssertionError:
                report.expect(False, "heap_invariants")
                return
    sim.process(_mon(), name="chaos:heap-monitor")


def _bytes(obj) -> bytes:
    return pickle.dumps(obj, protocol=4)


# --------------------------------------------------------------------- dataflow

def _dataflow_words(seed: int, n: int = 3000) -> List[str]:
    rng = np.random.default_rng([seed, 101])
    vocab = [f"w{i:03d}" for i in range(40)]
    return [vocab[j] for j in rng.integers(0, len(vocab), size=n)]

def _run_dataflow(seed: int, plan: Optional[FaultPlan],
                  monitor: Optional[Callable[[Simulator], None]] = None,
                  policies: Optional[ResiliencePolicies] = None):
    sim = Simulator()
    cluster = make_cluster(sim, n_racks=2, nodes_per_rack=4)
    ctx = DataflowContext(default_parallelism=8)
    engine = SimEngine(cluster,
                       config=EngineConfig(max_task_retries=8,
                                           resilience=policies),
                       cost_model=CostModel(cpu_per_record=2e-4))
    words = _dataflow_words(seed)
    ds = ctx.parallelize(words, 8).map(lambda w: (w, 1)).reduce_by_key(add, 6)
    trace = InjectionTrace()
    if plan is not None:
        if monitor is not None:
            monitor(sim)
        ClusterChaos(cluster, plan, trace).start()
        EngineChaos(engine, plan, trace).start()
    res = sim.run_until_done(engine.collect(ds))
    return sorted(res.value), trace, len(words)


def check_dataflow(seed: int, plan: Optional[FaultPlan] = None) -> OracleReport:
    """Wordcount under node loss, stragglers, task crashes, lost shuffles."""
    if plan is None:
        # the fault-free job runs ~0.17 simulated seconds, so the renewal
        # horizon and rates are calibrated to land several faults while
        # tasks are actually in flight
        node_names = [f"h{r}_{i}" for r in range(2) for i in range(4)]
        plan = FaultPlan.renewal(
            seed, horizon=0.3,
            rates={"node_fail": 3.0, "slow_node": 6.0,
                   "task_crash": 15.0, "lost_shuffle": 10.0},
            targets=node_names, mean_duration=0.08)
    report = OracleReport("dataflow", seed, plan)
    monitor = lambda sim: _heap_monitor(sim, report, period=0.02)
    free, _t, n_records = _run_dataflow(seed, None)
    faulted1, trace1, _ = _run_dataflow(seed, plan, monitor)
    faulted2, trace2, _ = _run_dataflow(seed, plan, monitor)
    report.injections = len(trace1)
    report.expect(_bytes(faulted1) == _bytes(free), "recovery_equivalence")
    report.expect(trace1.signature() == trace2.signature(),
                  "trace_determinism")
    report.expect(_bytes(faulted1) == _bytes(faulted2), "result_determinism")
    report.expect(sum(c for _w, c in faulted1) == n_records,
                  "record_conservation")
    return report


# --------------------------------------------------------------------- streaming

class _ListState:
    """A deliberately in-place-mutating aggregator (the satellite-2 trap)."""

    @staticmethod
    def agg(acc, v):
        acc.append(v)
        return acc

    @staticmethod
    def init(v):
        return [v]


def _stream_events(seed: int, n: int = 240, span: float = 120.0):
    rng = np.random.default_rng([seed, 202])
    times = np.sort(rng.uniform(0.0, span, size=n))
    keys = rng.integers(0, 12, size=n)
    vals = rng.integers(1, 100, size=n)
    return [(float(t), int(k), int(v))
            for t, k, v in zip(times, keys, vals)]


def check_streaming(seed: int, plan: Optional[FaultPlan] = None) -> OracleReport:
    """Checkpoint/replay under operator crashes (incl. trailing crashes)."""
    if plan is None:
        # horizon past the last event time so trailing crashes (the
        # satellite-1 bug) are exercised by construction
        plan = FaultPlan.renewal(seed, horizon=160.0,
                                 rates={"operator_crash": 0.03})
    report = OracleReport("streaming", seed, plan)
    events = _stream_events(seed)
    crashes = operator_crash_times(plan)
    report.injections = len(crashes)
    cfg = CheckpointConfig(interval=10.0)
    for label, agg, init in (("sum", add, lambda v: v),
                             ("mutating_list", _ListState.agg,
                              _ListState.init)):
        free = run_stateful_stream(events, agg, init, cfg)
        faulted1 = run_stateful_stream(events, agg, init, cfg,
                                       crash_times=crashes)
        faulted2 = run_stateful_stream(events, agg, init, cfg,
                                       crash_times=crashes)
        report.expect(_bytes(faulted1.state) == _bytes(free.state),
                      f"{label}:recovery_equivalence")
        report.expect(_bytes(faulted1.state) == _bytes(faulted2.state),
                      f"{label}:result_determinism")
        report.expect(len(faulted1.recoveries) == len(crashes),
                      f"{label}:all_crashes_recovered")
        report.expect(faulted1.processed_events == len(events),
                      f"{label}:record_conservation")
        report.expect(all(r.recovery_seconds >= cfg.recovery_fixed_cost
                          for r in faulted1.recoveries),
                      f"{label}:recovery_cost_accounted")
    return report


# --------------------------------------------------------------------- microbatch

def check_microbatch(seed: int, plan: Optional[FaultPlan] = None) -> OracleReport:
    """Micro-batch engine under load bursts, with idle (zero-rate) windows."""
    if plan is None:
        plan = FaultPlan.renewal(seed, horizon=60.0,
                                 rates={"load_burst": 0.05},
                                 mean_duration=6.0)
    report = OracleReport("microbatch", seed, plan)
    report.injections = sum(1 for e in plan if e.kind == "load_burst")
    cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=2e-4,
                           parallelism=2, backpressure=True,
                           backlog_threshold=2, throttle_factor=0.5)
    duration = 60.0

    def base_rate(t: float) -> float:
        # periodic idle windows exercise the empty-batch path (satellite 4)
        return 0.0 if int(t // 10) % 3 == 2 else 2000.0

    rate = burst_rate(base_rate, plan)
    r1 = run_microbatch(rate, cfg, duration)
    r2 = run_microbatch(rate, cfg, duration)
    offered = sum(int(max(0, round(rate(float(t)) * cfg.batch_interval)))
                  for t in np.arange(0.0, duration, cfg.batch_interval))
    report.expect(r1.processed_records + r1.dropped_records == offered,
                  "record_conservation")
    report.expect(
        _bytes((r1.processed_records, r1.dropped_records, r1.max_backlog,
                r1.batch_times, r1.latency.count))
        == _bytes((r2.processed_records, r2.dropped_records, r2.max_backlog,
                   r2.batch_times, r2.latency.count)),
        "result_determinism")
    report.expect(all(bt > cfg.scheduling_overhead for bt in r1.batch_times),
                  "no_empty_batches")
    # latency is weighted by batch size: one latency observation per record
    report.expect(r1.latency.count == r1.processed_records,
                  "backlog_conservation")
    # typed-counter flow conservation: in == out + inflight (0 at shutdown)
    reg = r1.registry
    report.expect(
        reg is not None
        and reg.value("stream.records_in")
        == reg.value("stream.records_out")
        + reg.value("stream.records_inflight")
        and reg.value("stream.records_inflight") == 0,
        "registry_flow_conservation")
    return report


# --------------------------------------------------------------- event streaming

def _windowed_events(seed: int, n: int = 400, span: float = 60.0):
    rng = np.random.default_rng([seed, 404])
    arrival = np.sort(rng.uniform(0.0, span, size=n))
    ts = np.maximum(arrival - rng.exponential(0.4, size=n), 0.0)
    keys = rng.integers(0, 8, size=n)
    vals = rng.integers(1, 50, size=n)
    return [(float(a), float(t), int(k), int(v))
            for a, t, k, v in zip(arrival, ts, keys, vals)]


def check_event_streaming(seed: int,
                          plan: Optional[FaultPlan] = None) -> OracleReport:
    """Windowed exactly-once under crashes + pipeline conservation.

    Two legs.  The *checkpoint* leg crashes :func:`run_windowed_stream`
    at plan-derived times and demands the full emission log — not just
    final state — be byte-equal to the crash-free run, that the scalar
    and vectorized aggregators agree under the same crash plan, and that
    the per-window ledger ``assigned(w) == window_in[w] + window_late[w]``
    balances against an independent recount.  The *pipeline* leg pushes a
    bursty overload through the credit-based pipeline and checks lossless
    record conservation and determinism.
    """
    if plan is None:
        plan = FaultPlan.renewal(seed, horizon=80.0,
                                 rates={"operator_crash": 0.04},
                                 mean_duration=5.0)
    report = OracleReport("event_streaming", seed, plan)
    events = _windowed_events(seed)
    crashes = operator_crash_times(plan)
    report.injections = len(crashes)
    window = WindowSpec.tumbling(2.0)
    agg = WindowAgg.by_name("sum")
    cfg = CheckpointConfig(interval=8.0)
    kw = dict(watermark_delay=1.0, allowed_lateness=1.0)
    free = run_windowed_stream(events, window, agg, cfg, **kw)
    faulted1 = run_windowed_stream(events, window, agg, cfg,
                                   crash_times=crashes, **kw)
    faulted2 = run_windowed_stream(events, window, agg, cfg,
                                   crash_times=crashes, **kw)
    scalar = run_windowed_stream(events, window, agg, cfg,
                                 crash_times=crashes, vectorized=False, **kw)
    report.expect(_bytes(faulted1.emissions) == _bytes(free.emissions),
                  "exactly_once_emissions")
    report.expect(_bytes(faulted1.emissions) == _bytes(faulted2.emissions),
                  "result_determinism")
    report.expect(_bytes(scalar.emissions) == _bytes(faulted1.emissions),
                  "scalar_vectorized_equivalence")
    report.expect(len(faulted1.recoveries) == len(crashes),
                  "all_crashes_recovered")
    report.expect(faulted1.processed_events == len(events),
                  "record_conservation")
    # independent recount of assigned (window, key) pairs for the ledger
    ts_all = np.array([e[1] for e in events])
    starts = assign_tumbling(ts_all, window.size)
    assigned: Dict[tuple, int] = {}
    for (_a, _t, k, _v), s in zip(events, starts):
        wkey = (k, float(s))
        assigned[wkey] = assigned.get(wkey, 0) + 1
    for run, label in ((free, "free"), (faulted1, "faulted")):
        balanced = (
            sum(run.window_in.values()) + sum(run.window_late.values())
            == len(events)
            and all(run.window_in.get(w, 0) + run.window_late.get(w, 0) == c
                    for w, c in assigned.items()))
        report.expect(balanced, f"{label}:per_window_conservation")

    # pipeline leg: bursty 1.5x overload through the credit pipeline
    pcfg = PipelineConfig(backpressure=True, credits=4)
    capacity = pcfg.parallelism / pcfg.per_record_cost
    pev = event_stream("bursty", rate=1.5 * capacity, duration=8.0,
                       seed=np.random.default_rng([seed, 405]))
    p1 = run_event_pipeline(pev, pcfg)
    p2 = run_event_pipeline(pev, pcfg)
    report.expect(p1.conserved, "pipeline_record_conservation")
    report.expect(
        (p1.processed_records, p1.shed_records, p1.windows_fired,
         p1.corrections, p1.late_dropped_records)
        == (p2.processed_records, p2.shed_records, p2.windows_fired,
            p2.corrections, p2.late_dropped_records),
        "pipeline_determinism")
    report.expect(p1.pipeline_latency.p99 <= 10.0,
                  "pipeline_latency_bounded")
    return report


# --------------------------------------------------------------------- dfs

def _run_dfs(seed: int, plan: Optional[FaultPlan], horizon: float):
    sim = Simulator()
    cluster = make_cluster(sim, n_racks=3, nodes_per_rack=3)
    dfs = DistributedFS(cluster,
                        DFSConfig(block_size=64 * 1024, ec_k=4, ec_m=2,
                                  detection_delay=1.0),
                        seed=7)
    rng = np.random.default_rng([seed, 303])
    data_rep = rng.bytes(150_000)
    data_ec = rng.bytes(200_000)
    sim.run_until_done(dfs.write("/rep.bin", data=data_rep,
                                 writer="h0_0", mode="replicate"))
    sim.run_until_done(dfs.write("/ec.bin", data=data_ec,
                                 writer="h1_0", mode="ec"))
    trace = InjectionTrace()
    if plan is not None:
        ClusterChaos(cluster, plan, trace).start()
        DFSChaos(dfs, plan, trace).start()
    sim.run(until=horizon + 30.0)
    got_rep, _ = sim.run_until_done(dfs.read("/rep.bin", reader="h2_0"))
    got_ec, _ = sim.run_until_done(dfs.read("/ec.bin", reader="h0_1"))
    counters = (dfs.repairs_started, dfs.degraded_reads)
    return (data_rep, data_ec, got_rep, got_ec, counters, trace, sim)


def check_dfs(seed: int, plan: Optional[FaultPlan] = None) -> OracleReport:
    """DFS durability under transient node loss and silent block loss."""
    horizon = 40.0
    if plan is None:
        node_names = [f"h{r}_{i}" for r in range(3) for i in range(3)]
        plan = FaultPlan.renewal(
            seed, horizon=horizon,
            rates={"node_fail": 0.02, "lost_block": 0.05},
            targets=node_names, mean_duration=5.0)
    report = OracleReport("dfs", seed, plan)
    want_rep, want_ec, got_rep, got_ec, c1, trace1, sim1 = \
        _run_dfs(seed, plan, horizon)
    _wr, _we, got_rep2, got_ec2, c2, trace2, _s2 = \
        _run_dfs(seed, plan, horizon)
    report.injections = len(trace1)
    report.expect(got_rep == want_rep, "replicated_read_equivalence")
    report.expect(got_ec == want_ec, "ec_read_equivalence")
    report.expect(trace1.signature() == trace2.signature(),
                  "trace_determinism")
    report.expect((got_rep2, got_ec2, c2) == (got_rep, got_ec, c1),
                  "result_determinism")
    try:
        sim1._queue.check_invariants()
        report.expect(True, "heap_invariants")
    except AssertionError:
        report.expect(False, "heap_invariants")
    return report


# --------------------------------------------------------------------- autoscale

def check_autoscale(seed: int, plan: Optional[FaultPlan] = None) -> OracleReport:
    """Fluid autoscaler under load bursts: bounds, conservation, determinism."""
    if plan is None:
        plan = FaultPlan.renewal(seed, horizon=600.0,
                                 rates={"load_burst": 0.005},
                                 mean_duration=60.0)
    report = OracleReport("autoscale", seed, plan)
    report.injections = sum(1 for e in plan if e.kind == "load_burst")
    rng = np.random.default_rng([seed, 404])
    base = 40.0 + 30.0 * np.sin(np.arange(600) / 60.0) + \
        rng.normal(0.0, 3.0, size=600)
    load = burst_series(np.clip(base, 0.0, None), plan)
    kw = dict(mu=10.0, dt=1.0, control_period=30.0, boot_delay=120.0,
              cooldown=60.0, min_instances=1, max_instances=50,
              initial_instances=4)
    r1 = simulate_autoscaling(ThresholdPolicy(high=0.75, low=0.3, step=3),
                              load, **kw)
    r2 = simulate_autoscaling(ThresholdPolicy(high=0.75, low=0.3, step=3),
                              load, **kw)
    report.expect(r1.instances.tobytes() == r2.instances.tobytes()
                  and r1.queue.tobytes() == r2.queue.tobytes(),
                  "result_determinism")
    report.expect(bool(np.all((r1.instances >= 1) & (r1.instances <= 50))),
                  "fleet_bounds")
    report.expect(bool(np.all(r1.queue >= 0.0)), "queue_nonnegative")
    report.expect(abs(r1.instance_seconds - float(r1.instances.sum() * 1.0))
                  < 1e-6, "billing_conservation")
    return report


# --------------------------------------------------------------------- resilience

def check_resilience(seed: int,
                     plan: Optional[FaultPlan] = None) -> OracleReport:
    """Policy-enabled runs: recovery equivalence, typed budget failure,
    and overload-safe admission control.

    Three legs:

    1. The wordcount job with a full :class:`ResiliencePolicies` stack
       (generous retry budget, hedging, a never-firing deadline) under
       the dataflow fault plan must be byte-equal to the fault-free run
       — policies may change *when* work happens, never *what* comes out
       — and the policy-enabled fault-free run must equal the plain one.
    2. A scripted crash storm against a deliberately tight retry budget
       must surface as a *deterministic, typed* failure carrying the
       attempt history — never a hang, never an untyped crash.
    3. The micro-batch engine under 3.75x overload with token-bucket
       admission must stay stable with a bounded backlog and exact drop
       accounting: ``in == out + inflight + shed``.
    """
    if plan is None:
        node_names = [f"h{r}_{i}" for r in range(2) for i in range(4)]
        plan = FaultPlan.renewal(
            seed, horizon=0.3,
            rates={"node_fail": 3.0, "slow_node": 6.0,
                   "task_crash": 15.0, "lost_shuffle": 10.0},
            targets=node_names, mean_duration=0.08)
    report = OracleReport("resilience", seed, plan)
    policies = ResiliencePolicies(
        retry=RetryPolicy(max_attempts=10, budget=200, base_delay=0.01,
                          seed=seed),
        hedge=HedgePolicy(multiplier=3.0),
        deadline_timeout=1e6)
    free, _t0, n_records = _run_dataflow(seed, None)
    free_pol, _t1, _ = _run_dataflow(seed, None, policies=policies)
    faulted1, trace1, _ = _run_dataflow(seed, plan, policies=policies)
    faulted2, trace2, _ = _run_dataflow(seed, plan, policies=policies)
    report.injections = len(trace1)
    report.expect(_bytes(free_pol) == _bytes(free), "idle_policy_equivalence")
    report.expect(_bytes(faulted1) == _bytes(free), "recovery_equivalence")
    report.expect(trace1.signature() == trace2.signature(),
                  "trace_determinism")
    report.expect(_bytes(faulted1) == _bytes(faulted2), "result_determinism")
    report.expect(sum(c for _w, c in faulted1) == n_records,
                  "record_conservation")

    # crash storm vs. tight budget: deterministic typed failure
    crash_plan = FaultPlan.scripted(
        [FaultEvent(time=0.0, kind="task_crash", magnitude=500.0)],
        seed=seed, name="budget-exhaust")
    tight = ResiliencePolicies(
        retry=RetryPolicy(max_attempts=3, budget=6, base_delay=0.0,
                          seed=seed))
    outcomes: List[Optional[tuple]] = []
    for _ in range(2):
        try:
            _run_dataflow(seed, crash_plan, policies=tight)
            outcomes.append(None)
        except TaskFailedError as exc:
            outcomes.append((exc.op, exc.job, exc.stage, exc.budget,
                             tuple((a.op, a.time) for a in exc.attempts)))
    report.expect(outcomes[0] is not None, "budget_exhaustion_typed")
    report.expect(outcomes[0] is not None and len(outcomes[0][4]) > 0,
                  "budget_attempt_history")
    report.expect(outcomes[0] == outcomes[1], "budget_failure_determinism")

    # overload + admission control: stable, bounded, exactly accounted
    adm = AdmissionConfig(rate=800.0, burst=1200.0, max_backlog=4)
    cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=2e-3,
                           parallelism=2, admission=adm)
    m1 = run_microbatch(lambda t: 3000.0, cfg, 30.0)
    m2 = run_microbatch(lambda t: 3000.0, cfg, 30.0)
    reg = m1.registry
    report.expect(m1.shed_records > 0, "admission_sheds_under_overload")
    report.expect(m1.max_backlog <= adm.max_backlog,
                  "admission_backlog_bounded")
    report.expect(
        reg is not None
        and reg.value("stream.records_in")
        == reg.value("stream.records_out")
        + reg.value("stream.records_inflight")
        + reg.value("stream.records_shed")
        and reg.value("stream.records_inflight") == 0,
        "admission_flow_conservation")
    report.expect(
        (m1.processed_records, m1.shed_records, m1.max_backlog)
        == (m2.processed_records, m2.shed_records, m2.max_backlog),
        "admission_determinism")
    report.expect(m1.stable, "admission_stable_degraded")
    return report


# --------------------------------------------------------------------- serve

def _serve_mix():
    from ..serve import TenantSpec
    return [
        TenantSpec(name="sql", profile="web-sql", users=1_500_000,
                   arrival="poisson", slo_p99=30.0),
        TenantSpec(name="etl", profile="dataflow", users=400_000,
                   arrival="mmpp", slo_p99=90.0),
        TenantSpec(name="pulse", profile="streaming", users=600_000,
                   arrival="periodic", slo_p99=45.0),
        TenantSpec(name="dag", profile="workflow", users=250_000,
                   arrival="sessions", slo_p99=150.0),
    ]


def check_serve(seed: int, plan: Optional[FaultPlan] = None) -> OracleReport:
    """Multi-tenant serving gateway under the full fault vocabulary.

    The gateway composes admission, fair-share scheduling, breaker-gated
    autoscaling, and retry/hedging, so its oracle checks *accounting*
    invariants rather than output equivalence (faults legitimately
    change which requests complete when):

    1. **Determinism** — two faulted runs produce byte-equal snapshots
       (per-tenant counters *and* per-request latency vectors).
    2. **Conservation** — for every tenant, in clean and faulted runs,
       ``submitted == rejected + completed + failed + inflight`` exactly,
       with ``inflight == 0`` after drain, and each admitted request
       terminal exactly once (retries/hedges never double-bill).
    3. **Graceful degradation** — the faulted worst-tenant p99 stays
       within a constant factor of the fault-free run (no unbounded
       divergence), and load bursts only ever add offered requests.
    """
    from ..serve import ServeConfig, run_gateway
    horizon = 40.0
    if plan is None:
        plan = FaultPlan.renewal(
            seed, horizon=horizon,
            rates={"task_crash": 0.15, "slow_node": 0.02,
                   "node_fail": 0.01, "load_burst": 0.02},
            mean_duration=6.0)
    report = OracleReport("serve", seed, plan)
    report.injections = len(plan)
    mix = _serve_mix()
    cfg = ServeConfig(horizon=horizon, sample_frac=5e-3, seed=seed)
    clean = run_gateway(mix, cfg)
    faulted1 = run_gateway(mix, cfg, plan=plan)
    faulted2 = run_gateway(mix, cfg, plan=plan)
    report.expect(_bytes(faulted1.snapshot()) == _bytes(faulted2.snapshot()),
                  "result_determinism")
    for label, rep in (("clean", clean), ("faulted", faulted1)):
        report.expect(rep.conservation_ok(),
                      f"{label}:per_tenant_conservation")
        report.expect(all(t.inflight == 0 for t in rep.tenants.values()),
                      f"{label}:drained")
        report.expect(
            all(t.completed + t.failed == t.submitted - t.rejected
                for t in rep.tenants.values()),
            f"{label}:bill_exactly_once")
        report.expect(0.0 < rep.jain_fairness() <= 1.0 + 1e-12,
                      f"{label}:jain_in_range")
        report.expect(rep.node_seconds > 0, f"{label}:fleet_billed")
    report.expect(
        faulted1.worst_p99() <= 10.0 * max(clean.worst_p99(), 1.0),
        "graceful_p99_degradation")
    report.expect(
        all(faulted1.tenants[n].submitted >= clean.tenants[n].submitted
            for n in clean.tenants),
        "load_bursts_only_add_offers")
    return report


# --------------------------------------------------------------------- integrity

def _run_dataflow_corrupt(seed: int, plan: Optional[FaultPlan]):
    """Wordcount with silent shuffle corruption; returns the accounting."""
    sim = Simulator()
    cluster = make_cluster(sim, n_racks=2, nodes_per_rack=4)
    ctx = DataflowContext(default_parallelism=8)
    engine = SimEngine(cluster, config=EngineConfig(max_task_retries=8),
                       cost_model=CostModel(cpu_per_record=2e-4))
    words = _dataflow_words(seed)
    ds = ctx.parallelize(words, 8).map(lambda w: (w, 1)).reduce_by_key(add, 6)
    trace = InjectionTrace()
    if plan is not None:
        ClusterChaos(cluster, plan, trace).start()
        EngineChaos(engine, plan, trace).start()
    res = sim.run_until_done(engine.collect(ds))
    account = (engine.integrity_detected, engine.integrity_latent_discarded,
               len(engine.audit_shuffle_integrity()))
    return sorted(res.value), trace, len(words), account


def _run_dfs_integrity(seed: int, plan: Optional[FaultPlan], horizon: float):
    """DFS run with the background scrubber on and a closing scrub pass."""
    sim = Simulator()
    cluster = make_cluster(sim, n_racks=3, nodes_per_rack=3)
    dfs = DistributedFS(cluster,
                        DFSConfig(block_size=64 * 1024, ec_k=4, ec_m=2,
                                  detection_delay=1.0, scrub_interval=6.0),
                        seed=7)
    rng = np.random.default_rng([seed, 303])
    data_rep = rng.bytes(150_000)
    data_ec = rng.bytes(200_000)
    sim.run_until_done(dfs.write("/rep.bin", data=data_rep,
                                 writer="h0_0", mode="replicate"))
    sim.run_until_done(dfs.write("/ec.bin", data=data_ec,
                                 writer="h1_0", mode="ec"))
    trace = InjectionTrace()
    if plan is not None:
        ClusterChaos(cluster, plan, trace).start()
        DFSChaos(dfs, plan, trace).start()
    sim.run(until=horizon + 30.0)
    # close the books: one full scrub pass flushes any still-latent rot
    # into quarantine + repair, then leave room for the repairs to land
    sim.run_until_done(dfs.scrub_now())
    sim.run(until=sim.now + 30.0)
    got_rep, _ = sim.run_until_done(dfs.read("/rep.bin", reader="h2_0"))
    got_ec, _ = sim.run_until_done(dfs.read("/ec.bin", reader="h0_1"))
    account = (dfs.integrity_detected, dfs.integrity_latent_discarded,
               len(dfs.audit_integrity()))
    protection = all(
        len(b.locations) == (dfs.config.replication
                             if b.mode == "replicate"
                             else dfs.codec.k + dfs.codec.m)
        for b in dfs._blocks.values())
    return data_rep, data_ec, got_rep, got_ec, account, protection, trace


def check_integrity(seed: int,
                    plan: Optional[FaultPlan] = None) -> OracleReport:
    """End-to-end data integrity under silent ``data_corrupt`` faults.

    Three legs, each holding the same contract — silent corruption may
    cost retries and repair traffic, never correctness, and every
    injected corruption is accounted for exactly
    (``injected == detected + latent_discarded + latent_remaining``):

    1. **Engine** — wordcount with rotting shuffle buckets, alone and
       composed with task crashes + node failures; results must be
       byte-equal to the fault-free run and detection must ride the
       lineage-recovery path.
    2. **DFS** — replicated + EC files with rotting replicas/fragments
       (composed with transient node failures), a background scrubber,
       and a closing scrub pass; reads must be byte-equal, nothing may
       stay latent after the scrub, and full replication/fragment counts
       must be restored (never repaired *from* a corrupt copy).
    3. **Streaming** — stateful and windowed checkpoint/replay with
       crashes *and* rotting snapshots; state and the emission log must
       be byte-equal to fault-free, and the sealed-checkpoint mode must
       be output-equivalent to the plain one.

    ``plan``, when given, drives all three legs; the default builds one
    per leg calibrated to its workload's time scale.
    """
    node_names = [f"h{r}_{i}" for r in range(2) for i in range(4)]
    engine_plans = {
        "alone": plan if plan is not None else FaultPlan.renewal(
            seed, horizon=0.3, rates={"data_corrupt": 20.0}),
        "composed": plan if plan is not None else FaultPlan.renewal(
            seed, horizon=0.3,
            rates={"data_corrupt": 20.0, "task_crash": 8.0,
                   "node_fail": 1.0},
            targets=node_names, mean_duration=0.08),
    }
    report = OracleReport("integrity", seed,
                          plan if plan is not None
                          else engine_plans["composed"])

    # -- leg 1: engine shuffle buckets
    free, _t, n_records, _a = _run_dataflow_corrupt(seed, None)
    for label, eplan in engine_plans.items():
        f1, trace1, _n, acc1 = _run_dataflow_corrupt(seed, eplan)
        f2, trace2, _n2, acc2 = _run_dataflow_corrupt(seed, eplan)
        injected = trace1.count("data_corrupt")
        report.injections += injected
        detected, discarded, latent = acc1
        report.expect(_bytes(f1) == _bytes(free),
                      f"engine_{label}:recovery_equivalence")
        report.expect(trace1.signature() == trace2.signature(),
                      f"engine_{label}:trace_determinism")
        report.expect(_bytes(f1) == _bytes(f2) and acc1 == acc2,
                      f"engine_{label}:result_determinism")
        report.expect(sum(c for _w, c in f1) == n_records,
                      f"engine_{label}:record_conservation")
        report.expect(injected == detected + discarded + latent,
                      f"engine_{label}:integrity_accounting")

    # -- leg 2: DFS replicas and EC fragments, scrub-and-repair
    horizon = 40.0
    dfs_names = [f"h{r}_{i}" for r in range(3) for i in range(3)]
    dplan = plan if plan is not None else FaultPlan.renewal(
        seed, horizon=horizon,
        rates={"data_corrupt": 0.12, "node_fail": 0.02},
        targets=dfs_names, mean_duration=5.0)
    want_rep, want_ec, got_rep, got_ec, dacc1, prot1, dtrace1 = \
        _run_dfs_integrity(seed, dplan, horizon)
    _wr, _we, got_rep2, got_ec2, dacc2, prot2, dtrace2 = \
        _run_dfs_integrity(seed, dplan, horizon)
    injected = dtrace1.count("data_corrupt")
    report.injections += injected
    detected, discarded, latent = dacc1
    report.expect(got_rep == want_rep, "dfs:replicated_read_equivalence")
    report.expect(got_ec == want_ec, "dfs:ec_read_equivalence")
    report.expect(dtrace1.signature() == dtrace2.signature(),
                  "dfs:trace_determinism")
    report.expect((got_rep2, got_ec2, dacc2, prot2)
                  == (got_rep, got_ec, dacc1, prot1),
                  "dfs:result_determinism")
    report.expect(latent == 0, "dfs:no_latent_after_scrub")
    report.expect(injected == detected + discarded,
                  "dfs:integrity_accounting")
    report.expect(prot1, "dfs:protection_restored")

    # -- leg 3: streaming checkpoints (stateful + windowed)
    splan = plan if plan is not None else FaultPlan.renewal(
        seed, horizon=160.0,
        rates={"operator_crash": 0.03, "data_corrupt": 0.04})
    crashes = operator_crash_times(splan)
    corruptions = snapshot_corrupt_times(splan)
    events = _stream_events(seed)
    plain_cfg = CheckpointConfig(interval=10.0)
    sealed_cfg = CheckpointConfig(interval=10.0, integrity=True)
    base = run_stateful_stream(events, add, lambda v: v, plain_cfg)
    sealed_free = run_stateful_stream(events, add, lambda v: v, sealed_cfg)
    s1 = run_stateful_stream(events, add, lambda v: v, sealed_cfg,
                             crash_times=crashes,
                             corrupt_times=corruptions)
    s2 = run_stateful_stream(events, add, lambda v: v, sealed_cfg,
                             crash_times=crashes,
                             corrupt_times=corruptions)
    reg = s1.registry
    report.injections += int(reg.value("integrity.injected"))
    report.expect(_bytes(sealed_free.state) == _bytes(base.state),
                  "stream:integrity_flag_equivalence")
    report.expect(_bytes(s1.state) == _bytes(base.state),
                  "stream:recovery_equivalence")
    report.expect(_bytes(s1.state) == _bytes(s2.state),
                  "stream:result_determinism")
    report.expect(len(s1.recoveries) == len(crashes),
                  "stream:all_crashes_recovered")
    report.expect(s1.processed_events == len(events),
                  "stream:record_conservation")
    report.expect(reg.value("integrity.injected")
                  == reg.value("integrity.detected")
                  + reg.value("integrity.latent"),
                  "stream:integrity_accounting")

    wevents = _windowed_events(seed)
    wplan = plan if plan is not None else FaultPlan.renewal(
        seed, horizon=80.0,
        rates={"operator_crash": 0.04, "data_corrupt": 0.05},
        mean_duration=5.0)
    wcrashes = operator_crash_times(wplan)
    wcorruptions = snapshot_corrupt_times(wplan)
    window = WindowSpec.tumbling(2.0)
    agg = WindowAgg.by_name("sum")
    wkw = dict(watermark_delay=1.0, allowed_lateness=1.0)
    wcfg = CheckpointConfig(interval=8.0, integrity=True)
    wfree = run_windowed_stream(wevents, window, agg,
                                CheckpointConfig(interval=8.0), **wkw)
    w1 = run_windowed_stream(wevents, window, agg, wcfg,
                             crash_times=wcrashes,
                             corrupt_times=wcorruptions, **wkw)
    w2 = run_windowed_stream(wevents, window, agg, wcfg,
                             crash_times=wcrashes,
                             corrupt_times=wcorruptions, **wkw)
    wreg = w1.registry
    report.injections += int(wreg.value("integrity.injected"))
    report.expect(_bytes(w1.emissions) == _bytes(wfree.emissions),
                  "windowed:exactly_once_emissions")
    report.expect(_bytes(w1.emissions) == _bytes(w2.emissions),
                  "windowed:result_determinism")
    report.expect(w1.processed_events == len(wevents),
                  "windowed:record_conservation")
    report.expect(wreg.value("integrity.injected")
                  == wreg.value("integrity.detected")
                  + wreg.value("integrity.latent"),
                  "windowed:integrity_accounting")
    return report


# --------------------------------------------------------------------- drivers

LAYERS: Dict[str, Callable[[int], OracleReport]] = {
    "dataflow": check_dataflow,
    "streaming": check_streaming,
    "microbatch": check_microbatch,
    "event_streaming": check_event_streaming,
    "dfs": check_dfs,
    "autoscale": check_autoscale,
    "resilience": check_resilience,
    "serve": check_serve,
    "integrity": check_integrity,
}


def run_all(seed: int,
            layers: Optional[Sequence[str]] = None) -> List[OracleReport]:
    """Run every layer's oracle for one seed."""
    names = list(layers) if layers is not None else sorted(LAYERS)
    return [LAYERS[name](seed) for name in names]


def sweep(seeds: Sequence[int],
          layers: Optional[Sequence[str]] = None) -> List[OracleReport]:
    """Run the oracles over many seeds; returns the flat report list."""
    out: List[OracleReport] = []
    for s in seeds:
        out.extend(run_all(int(s), layers))
    return out
