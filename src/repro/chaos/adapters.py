"""Thin per-layer injection adapters for :class:`~repro.chaos.plan.FaultPlan`.

Each adapter translates the relevant subset of one plan into its layer's
native fault mechanism:

* :class:`ClusterChaos`   — node crash/repair and straggler (slow-node)
  injection on a :class:`~repro.cluster.cluster.Cluster` (the generalized
  successor of the cluster-only ``FailureInjector`` renewal loops);
* :class:`EngineChaos`    — task-attempt crashes (via ``SimEngine.fault_hook``),
  lost shuffle partitions (via ``SimEngine.drop_map_outputs``), and silent
  shuffle corruption (via ``SimEngine.corrupt_map_outputs``);
* :class:`DFSChaos`       — lost DFS block replicas / EC fragments with
  chargeable re-protection, and silent replica/fragment corruption
  (``data_corrupt`` → ``DistributedFS.corrupt_piece``), on top of the
  DFS's own node-failure repair;
* :func:`operator_crash_times` / :func:`snapshot_corrupt_times` —
  streaming operator crashes and checkpoint-snapshot corruption for
  :func:`~repro.streaming.checkpoint.run_stateful_stream`;
* :func:`burst_rate` / :func:`burst_series` — load bursts for the
  micro-batch engine and the autoscaling fluid simulator.

Every actual injection is appended to an :class:`InjectionTrace`; the
recovery-equivalence oracle replays a scenario twice and asserts the two
traces are identical, which is the machine check of the determinism
contract.  Adapters with no matching events in the plan schedule nothing
and cost nothing — the no-plan overhead guard in
``benchmarks/bench_chaos_overhead.py`` measures exactly that.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.cluster import Cluster
from ..simcore.kernel import Simulator
from .plan import FaultPlan

__all__ = [
    "InjectionTrace", "sleep_until", "ClusterChaos", "EngineChaos",
    "DFSChaos", "operator_crash_times", "snapshot_corrupt_times",
    "burst_rate", "burst_series",
]


def sleep_until(sim: Simulator, t: float):
    """Timeout event that fires at absolute sim time ``t`` (or now if past).

    Every injection process sleeps through this one helper rather than
    hand-rolling ``timeout(max(0.0, ev.time - sim.now))``.  Events whose
    scheduled time is already past all collapse to a zero-delay timeout
    at ``t == now``; because the kernel orders same-time events by
    schedule sequence and injection processes are spawned in plan order,
    they still fire in plan order — a property pinned by the
    same-timestamp regression test in ``tests/chaos/test_adapters.py``.
    """
    return sim.timeout(max(0.0, t - sim.now))


class InjectionTrace:
    """Ordered record of the faults a run actually experienced.

    Entries are ``(sim_time, what, detail)`` tuples.  ``signature()`` is
    hashable so two runs of the same plan can be compared exactly.
    """

    def __init__(self) -> None:
        self.entries: List[Tuple[float, str, str]] = []

    def record(self, time: float, what: str, detail: str = "") -> None:
        """Append one injection record."""
        self.entries.append((round(float(time), 9), what, str(detail)))

    def signature(self) -> Tuple[Tuple[float, str, str], ...]:
        """Hashable identity of the whole trace."""
        return tuple(self.entries)

    def count(self, what: str) -> int:
        """Number of entries of one kind."""
        return sum(1 for _, w, _d in self.entries if w == what)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<InjectionTrace {len(self.entries)} entries>"


class ClusterChaos:
    """Inject ``node_fail`` and ``slow_node`` events into a cluster.

    Node failures with ``duration > 0`` recover after that long; a fault
    that would kill the *last* live node is skipped (and recorded as
    skipped) so the substrate always retains liveness — recovery
    equivalence is only defined for runs that can finish.  Slow-node
    events compose multiplicatively with any existing speed factor and
    restore it afterwards.
    """

    def __init__(self, cluster: Cluster, plan: FaultPlan,
                 trace: Optional[InjectionTrace] = None) -> None:
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.plan = plan
        self.trace = trace if trace is not None else InjectionTrace()

    def start(self) -> int:
        """Schedule all cluster-level faults; returns how many."""
        rng = self.plan.rng("cluster")
        names = self.cluster.node_names
        n = 0
        for ev in self.plan:
            if ev.kind not in ("node_fail", "slow_node"):
                continue
            target = ev.target or str(rng.choice(names))
            body = self._fail if ev.kind == "node_fail" else self._slow
            self.sim.process(body(ev, target),
                             name=f"chaos:{ev.kind}:{target}@{ev.time:g}")
            n += 1
        return n

    def _fail(self, ev, target: str):
        yield sleep_until(self.sim, ev.time)
        node = self.cluster.nodes[target]
        others_live = [nd for nd in self.cluster.live_nodes()
                       if nd.name != target]
        if not node.alive or not others_live:
            self.trace.record(self.sim.now, "node_fail_skipped", target)
            return
        node.fail()
        self.trace.record(self.sim.now, "node_fail", target)
        if ev.duration > 0:
            yield self.sim.timeout(ev.duration)
            if not node.alive:
                node.recover()
                self.trace.record(self.sim.now, "node_recover", target)

    def _slow(self, ev, target: str):
        yield sleep_until(self.sim, ev.time)
        node = self.cluster.nodes[target]
        node.set_speed_factor(node.speed_factor * ev.magnitude)
        self.trace.record(self.sim.now, "slow_node",
                          f"{target}x{ev.magnitude:g}")
        if ev.duration > 0:
            yield self.sim.timeout(ev.duration)
            node.set_speed_factor(node.speed_factor / ev.magnitude)
            self.trace.record(self.sim.now, "slow_node_end", target)


class EngineChaos:
    """Inject ``task_crash``, ``lost_shuffle``, and ``data_corrupt``
    faults into a SimEngine.

    Task crashes arm a budget at each event's time; the engine's
    ``fault_hook`` then fails the next ``magnitude`` task attempts to
    start (they retry through the normal failure path).  Lost-shuffle
    events silently delete registered map outputs so reduce tasks hit
    :class:`~repro.dataflow.engine.MissingShuffleError` and lineage
    recovery re-runs exactly the dropped maps.  Data-corrupt events rot
    registered map-output buckets in place — *nothing* fails loudly; the
    engine's sealed fetch path detects the damage and recovers through
    the same lineage machinery.
    """

    def __init__(self, engine, plan: FaultPlan,
                 trace: Optional[InjectionTrace] = None) -> None:
        self.engine = engine
        self.sim: Simulator = engine.sim
        self.plan = plan
        self.trace = trace if trace is not None else InjectionTrace()
        self._crash_budget = 0
        self._rng = plan.rng("engine.lost_shuffle")
        self._corrupt_rng = plan.rng("engine.data_corrupt")

    def start(self) -> int:
        """Arm the hook and schedule all engine-level faults."""
        relevant = [ev for ev in self.plan
                    if ev.kind in ("task_crash", "lost_shuffle",
                                   "data_corrupt")]
        if any(ev.kind == "task_crash" for ev in relevant):
            self.engine.fault_hook = self._hook
        for ev in relevant:
            self.sim.process(self._arm(ev),
                             name=f"chaos:{ev.kind}@{ev.time:g}")
        return len(relevant)

    def _hook(self, stage, split: int, node: str) -> bool:
        if self._crash_budget <= 0:
            return False
        self._crash_budget -= 1
        self.trace.record(self.sim.now, "task_crash",
                          f"s{stage.stage_id}p{split}@{node}")
        return True

    def _arm(self, ev):
        yield sleep_until(self.sim, ev.time)
        if ev.kind == "task_crash":
            self._crash_budget += max(1, int(ev.magnitude))
            self.trace.record(self.sim.now, "task_crash_armed",
                              str(max(1, int(ev.magnitude))))
            return
        if ev.kind == "data_corrupt":
            hit = self.engine.corrupt_map_outputs(
                max(1, int(ev.magnitude)), rng=self._corrupt_rng)
            for sid, m, r in hit:
                self.trace.record(self.sim.now, "data_corrupt",
                                  f"s{sid}m{m}r{r}")
            if not hit:
                self.trace.record(self.sim.now, "data_corrupt_skipped", "")
            return
        dropped = self.engine.drop_map_outputs(max(1, int(ev.magnitude)),
                                               rng=self._rng)
        for sid, m in dropped:
            self.trace.record(self.sim.now, "lost_shuffle", f"s{sid}m{m}")
        if not dropped:
            self.trace.record(self.sim.now, "lost_shuffle_skipped", "")


class DFSChaos:
    """Inject ``lost_block`` and ``data_corrupt`` faults into a
    :class:`DistributedFS`.

    A victim block (and slot) is chosen via the plan's child RNG among
    blocks that stay readable after the fault — one replica of at least
    two live copies, or one fragment while more than ``k`` live fragments
    remain.  A *lost* piece is re-protected through the DFS's own repair
    machinery after ``detection_delay``, with the repair traffic charged
    as usual.  A *corrupted* piece stays silently in place — the
    checksummed read path (or the scrubber) detects it, quarantines the
    copy, and repairs from clean sources.  Node failures are
    :class:`ClusterChaos` business; the DFS already watches those itself.
    """

    def __init__(self, dfs, plan: FaultPlan,
                 trace: Optional[InjectionTrace] = None) -> None:
        self.dfs = dfs
        self.sim: Simulator = dfs.sim
        self.plan = plan
        self.trace = trace if trace is not None else InjectionTrace()
        self._rng = plan.rng("dfs.lost_block")
        self._corrupt_rng = plan.rng("dfs.data_corrupt")

    def start(self) -> int:
        """Schedule all lost-block / data-corrupt faults; returns how many."""
        n = 0
        for ev in self.plan:
            if ev.kind == "lost_block":
                self.sim.process(self._lose(ev),
                                 name=f"chaos:lost_block@{ev.time:g}")
                n += 1
            elif ev.kind == "data_corrupt":
                self.sim.process(self._corrupt(ev),
                                 name=f"chaos:data_corrupt@{ev.time:g}")
                n += 1
        return n

    def _corrupt(self, ev):
        yield sleep_until(self.sim, ev.time)
        dfs = self.dfs
        rng = self._corrupt_rng
        for _ in range(max(1, int(ev.magnitude))):
            candidates = []
            for _bid, block in sorted(dfs._blocks.items()):
                slots = [s for s in self._droppable_slots(block)
                         if dfs._piece_clean(block.block_id, s)]
                if slots:
                    candidates.append((block, slots))
            if not candidates:
                self.trace.record(self.sim.now, "data_corrupt_skipped", "")
                continue
            block, slots = candidates[int(rng.integers(len(candidates)))]
            slot = slots[int(rng.integers(len(slots)))]
            off = dfs.corrupt_piece(block.block_id, slot, rng=rng)
            self.trace.record(self.sim.now, "data_corrupt",
                              f"b{block.block_id}s{slot}@{off}")

    def _droppable_slots(self, block) -> List[int]:
        alive = self.dfs.cluster.nodes
        live = [s for s, node in sorted(block.locations.items())
                if alive[node].alive]
        if block.mode == "replicate":
            return live if len(live) >= 2 else []
        return live if len(live) > self.dfs.codec.k else []

    def _lose(self, ev):
        yield sleep_until(self.sim, ev.time)
        dfs = self.dfs
        candidates = []
        for _bid, block in sorted(dfs._blocks.items()):
            slots = self._droppable_slots(block)
            if slots:
                candidates.append((block, slots))
        if not candidates:
            self.trace.record(self.sim.now, "lost_block_skipped", "")
            return
        block, slots = candidates[int(self._rng.integers(len(candidates)))]
        slot = slots[int(self._rng.integers(len(slots)))]
        del block.locations[slot]
        dfs._content.pop((block.block_id, slot), None)
        dfs._seals.pop((block.block_id, slot), None)
        self.trace.record(self.sim.now, "lost_block",
                          f"b{block.block_id}s{slot}")
        # re-protect through the DFS's own repair path, like the
        # failure watcher does after its detection delay
        yield self.sim.timeout(dfs.config.detection_delay)
        dfs.repairs_started += 1
        if block.mode == "replicate":
            yield from dfs._rereplicate(block, slot)
        else:
            yield from dfs._reconstruct_fragment(block, slot)
        self.trace.record(self.sim.now, "block_repaired",
                          f"b{block.block_id}s{slot}")


def operator_crash_times(plan: FaultPlan) -> List[float]:
    """Event-time crash instants for ``run_stateful_stream``.

    The streaming adapter is this translation: ``operator_crash`` events
    map onto the checkpointing engine's native ``crash_times``.
    """
    return [ev.time for ev in plan if ev.kind == "operator_crash"]


def snapshot_corrupt_times(plan: FaultPlan) -> List[float]:
    """Snapshot-corruption instants for the streaming runs.

    ``data_corrupt`` events map onto ``corrupt_times`` of
    :func:`~repro.streaming.checkpoint.run_stateful_stream` /
    ``run_windowed_stream`` (which require
    ``CheckpointConfig(integrity=True)``); each rots the newest intact
    checkpoint snapshot at that event time.
    """
    return [ev.time for ev in plan if ev.kind == "data_corrupt"]


def burst_rate(rate_fn: Callable[[float], float],
               plan: FaultPlan) -> Callable[[float], float]:
    """Wrap an offered-rate function with the plan's ``load_burst`` events.

    During ``[time, time + duration)`` the base rate is multiplied by the
    event's magnitude; overlapping bursts compose multiplicatively.  With
    no burst events the base function is returned unwrapped, so an empty
    plan adds zero per-call overhead.
    """
    bursts = [ev for ev in plan if ev.kind == "load_burst"]
    if not bursts:
        return rate_fn

    def wrapped(t: float) -> float:
        r = rate_fn(t)
        for ev in bursts:
            if ev.time <= t < ev.time + ev.duration:
                r *= ev.magnitude
        return r
    return wrapped


def burst_series(load: Sequence[float], plan: FaultPlan,
                 dt: float = 1.0) -> np.ndarray:
    """Apply ``load_burst`` events to a discrete load trace (autoscaler)."""
    out = np.asarray(load, dtype=np.float64).copy()
    t = np.arange(len(out)) * dt
    for ev in plan:
        if ev.kind != "load_burst":
            continue
        mask = (t >= ev.time) & (t < ev.time + ev.duration)
        out[mask] *= ev.magnitude
    return out
