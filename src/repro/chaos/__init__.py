"""Cross-layer chaos harness: fault plans, injection adapters, oracles.

One seed-deterministic :class:`FaultPlan` drives faults into every layer
of the stack — cluster nodes, the dataflow engine, streaming operators,
the DFS, and load-facing services — through thin adapters, while the
recovery-equivalence oracles (:mod:`repro.chaos.oracle`) check that
faulted runs produce byte-identical results to fault-free runs.
"""

from .adapters import (
    ClusterChaos,
    DFSChaos,
    EngineChaos,
    InjectionTrace,
    burst_rate,
    burst_series,
    operator_crash_times,
    snapshot_corrupt_times,
)
from .oracle import (
    LAYERS,
    OracleReport,
    check_autoscale,
    check_dataflow,
    check_dfs,
    check_event_streaming,
    check_integrity,
    check_microbatch,
    check_streaming,
    run_all,
    sweep,
)
from .plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS", "FaultEvent", "FaultPlan",
    "InjectionTrace", "ClusterChaos", "EngineChaos", "DFSChaos",
    "operator_crash_times", "burst_rate", "burst_series",
    "snapshot_corrupt_times",
    "OracleReport", "LAYERS", "run_all", "sweep",
    "check_dataflow", "check_streaming", "check_microbatch",
    "check_event_streaming", "check_dfs", "check_autoscale",
    "check_integrity",
]
