"""Deadlines and retry policies with budgets, backoff, and seeded jitter.

Everything here is driven by *sim time* passed in explicitly — the kernel
never reads a wall clock — so the same seeds always produce the same
retry schedules.  A :class:`RetryPolicy` is an immutable description;
per-job mutable state (attempt history, remaining budget, jitter RNG)
lives in the :class:`RetrySession` it mints.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..common.errors import DeadlineExceededError, RetryBudgetExhaustedError
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = ["Deadline", "Attempt", "RetryPolicy", "RetrySession"]


@dataclass(frozen=True)
class Deadline:
    """An absolute sim-time expiry for an operation or a whole job."""

    expires_at: float

    @classmethod
    def after(cls, now: float, timeout: float) -> "Deadline":
        return cls(expires_at=now + timeout)

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        return now > self.expires_at

    def check(self, now: float, op: Optional[str] = None) -> None:
        """Raise :class:`DeadlineExceededError` if ``now`` is past expiry."""
        if self.expired(now):
            raise DeadlineExceededError(
                deadline=self.expires_at, now=now, op=op)


@dataclass(frozen=True)
class Attempt:
    """One failed attempt, as recorded in a session's history."""

    op: str
    time: float
    error: str
    delay: float


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with decorrelated jitter and a retry budget.

    ``max_attempts`` bounds failures *per operation* (a task, a repair);
    ``budget`` bounds total failures *per session* (a job) across all
    operations — ``None`` means unlimited.  With ``base_delay == 0`` the
    policy degrades to immediate retries and consumes no randomness, so
    it is schedule-identical to the pre-policy hard-coded loops.
    """

    max_attempts: int = 4
    budget: Optional[int] = None
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: str = "decorrelated"  # "decorrelated" | "none"
    seed: int = 0

    def session(self, key: str = "", job: Optional[str] = None,
                stage: Optional[object] = None) -> "RetrySession":
        """Mint independent mutable retry state for one job/repair."""
        return RetrySession(policy=self, key=key, job=job, stage=stage)


@dataclass
class RetrySession:
    """Mutable per-job state for a :class:`RetryPolicy`.

    Records every failure, computes the backoff delay for the next
    attempt, and raises :class:`RetryBudgetExhaustedError` (with the full
    attempt history attached) the moment either the per-op attempt bound
    or the session-wide budget is exhausted.
    """

    policy: RetryPolicy
    key: str = ""
    job: Optional[str] = None
    stage: Optional[object] = None
    history: List[Attempt] = field(default_factory=list)
    _op_failures: Dict[str, int] = field(default_factory=dict)
    _prev_delay: Dict[str, float] = field(default_factory=dict)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    @property
    def budget_left(self) -> Optional[int]:
        if self.policy.budget is None:
            return None
        return self.policy.budget - len(self.history)

    def attempts_for(self, op: str) -> int:
        return self._op_failures.get(op, 0)

    def _jitter_rng(self) -> np.random.Generator:
        # Lazily seeded from (policy.seed, crc32(key)) so distinct jobs
        # draw independent-but-reproducible jitter streams.
        if self._rng is None:
            salt = zlib.crc32(self.key.encode("utf-8")) & 0xFFFFFFFF
            self._rng = np.random.default_rng([self.policy.seed, salt])
        return self._rng

    def _backoff(self, op: str, failures: int) -> float:
        p = self.policy
        if p.base_delay <= 0.0:
            return 0.0
        if p.jitter == "decorrelated":
            # AWS-style decorrelated jitter: sleep in
            # [base, prev * 3], capped.  Consumes one uniform draw.
            prev = self._prev_delay.get(op, p.base_delay)
            hi = max(p.base_delay, prev * 3.0)
            delay = float(self._jitter_rng().uniform(p.base_delay, hi))
        else:
            delay = p.base_delay * (p.multiplier ** (failures - 1))
        delay = min(p.max_delay, delay)
        self._prev_delay[op] = delay
        return delay

    def record_failure(self, op: str, error: str, now: float) -> float:
        """Record a failed attempt; return the backoff before retrying.

        Raises :class:`RetryBudgetExhaustedError` if ``op`` has now
        failed ``max_attempts`` times, or the session budget is spent.
        """
        failures = self._op_failures.get(op, 0) + 1
        self._op_failures[op] = failures
        exhausted = failures >= self.policy.max_attempts
        budget = self.budget_left  # before appending this failure
        if budget is not None and budget <= 0:
            exhausted = True
        delay = 0.0 if exhausted else self._backoff(op, failures)
        self.history.append(Attempt(op=op, time=now, error=str(error),
                                    delay=delay))
        reg = get_registry()
        if reg is not None:
            reg.counter("resilience.retries").inc()
        tr = get_tracer()
        if tr is not None:
            tr.instant("resilience.retry", now, cat="resilience",
                       op=op, failures=failures, delay=delay,
                       error=str(error)[:120])
        if exhausted:
            if reg is not None:
                reg.counter("resilience.budget_exhausted").inc()
            raise RetryBudgetExhaustedError(
                op=op, job=self.job, stage=self.stage,
                attempts=self.history, budget=self.policy.budget)
        return delay

    def record_success(self, op: str, now: float) -> None:
        """Reset the per-op failure count after a successful attempt."""
        self._op_failures.pop(op, None)
        self._prev_delay.pop(op, None)
