"""Hedged duplicate requests: launch a backup after a quantile delay.

``HedgePolicy`` decides *when* a backup is worth launching (once enough
completed-duration samples exist to estimate a tail quantile);
``run_hedged`` races a primary against a late-launched hedge, delivers
the first success, and cancels the loser via its cancel callback
(``Store.cancel_get``-style plumbing).  Ties go to the primary so hedging
never changes a deterministic winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = ["HedgePolicy", "quantile", "run_hedged"]


def quantile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (deterministic, no interpolation)."""
    xs = sorted(samples)
    idx = max(0, min(len(xs) - 1, math.ceil(q * len(xs)) - 1))
    return xs[idx]


@dataclass(frozen=True)
class HedgePolicy:
    """Launch a duplicate once the primary outlives the tail quantile."""

    quantile: float = 0.95
    multiplier: float = 2.0   # hedge at multiplier * q-th duration
    min_delay: float = 0.0
    min_samples: int = 3      # need this many completions to estimate
    max_hedges: int = 1       # backups per operation

    def delay(self, durations: Sequence[float]) -> Optional[float]:
        """Sim-time to wait before hedging, or None if unestimable."""
        if len(durations) < self.min_samples:
            return None
        d = self.multiplier * quantile(durations, self.quantile)
        return max(self.min_delay, d)


def run_hedged(sim, launch: Callable[[int], Tuple[object, Optional[Callable[[], None]]]],
               delay: float, op: str = "op"):
    """Race a primary attempt against one hedged backup.

    ``launch(i)`` starts attempt ``i`` (0 = primary, 1 = hedge) and
    returns ``(event, cancel)`` where ``event`` succeeds with the result
    and ``cancel`` (may be None) withdraws the attempt if it loses.
    Returns an event that succeeds with ``(value, winner_index)`` as soon
    as either attempt succeeds, or fails with the primary's error if
    both fail.  The hedge launches only if the primary is still pending
    after ``delay`` sim seconds.
    """
    done = sim.event()

    def _wait(ev):
        # Yield on ev but swallow failure propagation: a failed child
        # event fails the waiting process (and AnyOf conditions fail on
        # the first child failure), so inspect .triggered/.ok after.
        try:
            yield ev
        except Exception:
            pass

    def _proc():
        ev0, cancel0 = launch(0)
        timer = sim.timeout(delay)
        yield from _wait(sim.any_of([ev0, timer]))
        if ev0.triggered:
            # Primary finished before the hedge delay: pass its outcome
            # through unchanged (hedging never retries a failure).
            if ev0.ok:
                _settle(ev0, 0, None, None)
            else:
                done.fail(ev0.value)
            return
        ev1, cancel1 = launch(1)
        reg = get_registry()
        if reg is not None:
            reg.counter("resilience.hedge.launched").inc()
        tr = get_tracer()
        if tr is not None:
            tr.instant("resilience.hedge.launch", sim.now, cat="resilience",
                       op=op, delay=delay)
        yield from _wait(sim.any_of([ev0, ev1]))
        # Primary wins ties: inspect ev0 first.
        for idx, ev, loser, loser_cancel in ((0, ev0, ev1, cancel1),
                                             (1, ev1, ev0, cancel0)):
            if ev.triggered and ev.ok:
                _settle(ev, idx, loser, loser_cancel)
                return
        # The completed attempt failed; wait for the straggler.
        straggler, idx, first_err = ((ev1, 1, ev0.value)
                                     if ev0.triggered else (ev0, 0, ev1.value))
        yield from _wait(straggler)
        if straggler.ok:
            _settle(straggler, idx, None, None)
        else:
            done.fail(first_err if idx == 1 else straggler.value)

    def _settle(ev, idx: int, loser, loser_cancel) -> None:
        if loser_cancel is not None:
            loser_cancel()
        if loser is not None:
            # Nobody will ever wait on the abandoned attempt; pre-defuse
            # so a late failure cannot surface as an unhandled crash.
            loser.defused = True
        if idx == 1:
            reg = get_registry()
            if reg is not None:
                reg.counter("resilience.hedge.wins").inc()
        done.succeed((ev.value, idx))

    sim.process(_proc(), name=f"hedge:{op}")
    return done
