"""Token-bucket admission control with bounded-backlog load shedding.

``TokenBucket`` is a lazily-refilled rate limiter over explicit sim
time.  ``AdmissionController`` combines it with a backlog bound and an
SLO knob: ``mode="shed"`` drops excess records immediately (latency
SLO — every admitted record is processed promptly), ``mode="delay"``
asks the source to wait for tokens instead (completeness SLO — records
are only dropped when they can *never* fit the bucket).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.errors import ConfigError
from ..obs.metrics import get_registry

__all__ = ["AdmissionConfig", "TokenBucket", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    rate: float                 # sustained records/sec admitted
    burst: float                # bucket capacity (records)
    max_backlog: int = 8        # queued batches before hard shedding
    mode: str = "shed"          # "shed" drops now, "delay" waits
    delay_quantum: float = 0.5  # wait when backlog-bound in delay mode

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ConfigError("admission rate and burst must be positive")
        if self.mode not in ("shed", "delay"):
            raise ConfigError(f"unknown admission mode {self.mode!r}")


class TokenBucket:
    """Classic token bucket with lazy refill at query time."""

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._stamp = now

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now

    def available(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def take(self, now: float, n: float) -> float:
        """Take up to ``n`` tokens; return how many were granted."""
        self._refill(now)
        granted = min(n, self._tokens)
        self._tokens -= granted
        return granted

    def time_until(self, now: float, n: float) -> float:
        """Sim seconds until ``n`` tokens will be available (0 if now)."""
        self._refill(now)
        need = min(n, self.burst) - self._tokens
        return max(0.0, need / self.rate)


class AdmissionController:
    """Decide per offered batch: admit, shed, or delay."""

    def __init__(self, config: AdmissionConfig, now: float = 0.0) -> None:
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, now)
        self.admitted = 0
        self.shed = 0

    def _take_whole(self, now: float, n: int) -> int:
        """Take up to ``n`` *whole* tokens, never debiting a fraction.

        Records are indivisible, so a grant must be an integer.  Taking
        ``bucket.take(now, n)`` and flooring afterwards (the original
        implementation) silently destroyed the fractional remainder: an
        offer that could not be admitted still debited up to one token.
        At low rates with small offers that is starvation — a bucket
        refilling 0.6 tokens/s offered one record per second keeps
        getting debited 0.6 tokens for *shed* records and never
        accumulates the full token it needs, admitting ~0 instead of
        ~0.6 records/s.  Rejected work must never count against the
        tenant's future admission share.
        """
        whole = int(math.floor(self.bucket.available(now) + 1e-9))
        granted = min(int(n), whole)
        if granted > 0:
            self.bucket.take(now, granted)
        return granted

    def admit(self, now: float, offered: int,
              backlog: int) -> Tuple[int, int, float]:
        """Return ``(admitted, shed, delay)`` for ``offered`` records.

        ``backlog`` is the number of batches already queued downstream.
        ``delay > 0`` (delay mode only) means: sleep that long and
        re-offer the remainder; such calls shed nothing themselves.
        """
        cfg = self.config
        reg = get_registry()
        if backlog >= cfg.max_backlog:
            if cfg.mode == "delay":
                return 0, 0, cfg.delay_quantum
            self.shed += offered
            if reg is not None:
                reg.counter("resilience.admission.shed").inc(offered)
            return 0, offered, 0.0
        if cfg.mode == "delay":
            # Anything over the bucket capacity can never be granted in
            # one offer; shed only that impossible excess, wait for the
            # rest.
            fits = int(math.floor(min(offered, cfg.burst)))
            impossible = offered - fits
            granted = self._take_whole(now, fits)
            if granted < fits:
                wait = self.bucket.time_until(now, fits - granted)
                self.admitted += granted
                self.shed += impossible
                if reg is not None and impossible:
                    reg.counter("resilience.admission.shed").inc(impossible)
                return granted, impossible, max(wait, 1e-6)
            self.admitted += granted
            self.shed += impossible
            if reg is not None and impossible:
                reg.counter("resilience.admission.shed").inc(impossible)
            return granted, impossible, 0.0
        granted = self._take_whole(now, offered)
        dropped = offered - granted
        self.admitted += granted
        self.shed += dropped
        if reg is not None and dropped:
            reg.counter("resilience.admission.shed").inc(dropped)
        return granted, dropped, 0.0
