"""Per-target circuit breakers driven by explicit sim time.

A breaker guards calls *to* a named target (a node, a service).  It is
closed while the target looks healthy, opens after a run of consecutive
failures, and after ``recovery_time`` of sim time lets a limited number
of half-open probes through; probe successes re-close it, a probe
failure re-opens it.  Time is always passed in by the caller so the same
component works inside the discrete-event kernel and in fluid models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = ["BreakerConfig", "CircuitBreaker"]


@dataclass(frozen=True)
class BreakerConfig:
    failure_threshold: int = 3      # consecutive failures before opening
    recovery_time: float = 30.0     # sim seconds open before half-open
    half_open_successes: int = 1    # probe successes needed to close


@dataclass
class _Target:
    state: str = "closed"           # closed | open | half_open
    failures: int = 0               # consecutive failures while closed
    opened_at: float = 0.0
    probes: int = 0                 # successful half-open probes so far
    probe_out: bool = False         # a half-open probe is in flight


class CircuitBreaker:
    """Tracks closed/open/half-open state for many named targets."""

    def __init__(self, config: BreakerConfig = BreakerConfig()) -> None:
        self.config = config
        self._targets: Dict[str, _Target] = {}
        self.trips = 0

    def _get(self, target: str) -> _Target:
        return self._targets.setdefault(target, _Target())

    def state(self, target: str, now: float) -> str:
        """Current state (non-consuming; lazily moves open → half_open)."""
        t = self._get(target)
        if (t.state == "open"
                and now - t.opened_at >= self.config.recovery_time):
            t.state = "half_open"
            t.probes = 0
            t.probe_out = False
        return t.state

    def allow(self, target: str, now: float) -> bool:
        """May a call proceed?  Consumes the half-open probe slot."""
        state = self.state(target, now)
        t = self._get(target)
        if state == "closed":
            return True
        if state == "half_open" and not t.probe_out:
            t.probe_out = True
            return True
        reg = get_registry()
        if reg is not None:
            reg.counter("resilience.breaker.rejections").inc()
        return False

    def record_success(self, target: str, now: float) -> None:
        t = self._get(target)
        if self.state(target, now) == "half_open":
            t.probes += 1
            t.probe_out = False
            if t.probes >= self.config.half_open_successes:
                t.state = "closed"
                t.failures = 0
        else:
            t.failures = 0

    def trip(self, target: str, now: float) -> None:
        """Open immediately on definitive knowledge (e.g. a node died)."""
        t = self._get(target)
        if self.state(target, now) != "open":
            self._trip(target, t, now)

    def reset(self, target: str) -> None:
        """Close immediately on definitive recovery (e.g. node came back)."""
        self._targets.pop(target, None)

    def record_failure(self, target: str, now: float) -> None:
        t = self._get(target)
        state = self.state(target, now)
        if state == "half_open":
            self._trip(target, t, now)
            return
        if state == "open":
            return
        t.failures += 1
        if t.failures >= self.config.failure_threshold:
            self._trip(target, t, now)

    def _trip(self, target: str, t: _Target, now: float) -> None:
        t.state = "open"
        t.opened_at = now
        t.failures = 0
        t.probe_out = False
        self.trips += 1
        reg = get_registry()
        if reg is not None:
            reg.counter("resilience.breaker.trips").inc()
        tr = get_tracer()
        if tr is not None:
            tr.instant("resilience.breaker.open", now, cat="resilience",
                       target=target)
