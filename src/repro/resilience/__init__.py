"""Deterministic, sim-time resilience kernel shared by every layer.

One policy vocabulary — deadlines, retry budgets with seeded backoff
jitter, per-target circuit breakers, hedged requests, and token-bucket
admission control — consumed by the dataflow engine, the DFS, the
micro-batch streaming engine, and the autoscaler.  All state advances on
explicit sim time, so identical seeds produce identical retry schedules,
breaker transitions, and shed counts; chaos oracles property-test that
policy-enabled runs stay byte-identical to fault-free runs until a
budget is exhausted, and then fail with one deterministic typed error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .admission import AdmissionConfig, AdmissionController, TokenBucket
from .breaker import BreakerConfig, CircuitBreaker
from .hedge import HedgePolicy, quantile, run_hedged
from .policy import Attempt, Deadline, RetryPolicy, RetrySession

__all__ = [
    "Deadline",
    "Attempt",
    "RetryPolicy",
    "RetrySession",
    "BreakerConfig",
    "CircuitBreaker",
    "HedgePolicy",
    "quantile",
    "run_hedged",
    "AdmissionConfig",
    "AdmissionController",
    "TokenBucket",
    "ResiliencePolicies",
]


@dataclass(frozen=True)
class ResiliencePolicies:
    """Bundle of policies a consumer honours; any slot may be None.

    Consumers read only the slots they understand: the dataflow engine
    uses ``retry`` / ``hedge`` / ``deadline_timeout``, the DFS uses
    ``retry`` / ``breaker_config``, streaming uses ``admission``, and
    the autoscaler uses ``breaker_config``.  ``None`` everywhere is
    byte-identical to the pre-policy behaviour.
    """

    retry: Optional[RetryPolicy] = None
    hedge: Optional[HedgePolicy] = None
    deadline_timeout: Optional[float] = None  # per-job, relative sim time
    breaker_config: Optional[BreakerConfig] = None
    admission: Optional[AdmissionConfig] = None
