"""Shared foundation: errors, units, RNG plumbing, stats, data structures."""

from .errors import (
    BlockNotFoundError,
    CapacityError,
    CloudError,
    ConfigError,
    DataflowError,
    InsufficientReplicasError,
    MigrationError,
    NetworkError,
    PlacementError,
    PlanError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
    StorageError,
    StreamingError,
    TaskFailedError,
)
from .fairshare import max_min_fair_share, weighted_max_min
from .pqueue import IndexedHeap
from .rng import RandomState, ensure_rng, spawn, zipf_pmf, zipf_sample
from .stats import Histogram, Summary, TimeWeighted, cdf_points, jain_index, percentile
from .units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    TB,
    TiB,
    Gbit_per_s,
    Kbit_per_s,
    Mbit_per_s,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    hours,
    minutes,
    ms,
    us,
)

__all__ = [
    # errors
    "ReproError", "ConfigError", "SimulationError", "SchedulingError",
    "StorageError", "BlockNotFoundError", "InsufficientReplicasError",
    "CapacityError", "DataflowError", "PlanError", "TaskFailedError",
    "NetworkError", "RoutingError", "CloudError", "PlacementError",
    "MigrationError", "StreamingError",
    # rng
    "RandomState", "ensure_rng", "spawn", "zipf_pmf", "zipf_sample",
    # stats
    "Summary", "Histogram", "TimeWeighted", "jain_index", "percentile",
    "cdf_points",
    # structures
    "IndexedHeap",
    # fair sharing
    "max_min_fair_share", "weighted_max_min",
    # units
    "KB", "MB", "GB", "TB", "KiB", "MiB", "GiB", "TiB",
    "Kbit_per_s", "Mbit_per_s", "Gbit_per_s",
    "ms", "us", "minutes", "hours",
    "fmt_bytes", "fmt_rate", "fmt_time",
]
