"""An indexed binary min-heap supporting decrease-key and removal.

The DES kernel and several schedulers need a priority queue where an
entry's priority can change (task reprioritization, event cancellation)
without tombstone buildup.  This implementation keeps a position index so
``update`` / ``remove`` are O(log n) and membership checks are O(1).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

__all__ = ["IndexedHeap"]


class IndexedHeap:
    """Min-heap of ``(priority, key)`` with O(log n) update and removal.

    Keys must be hashable and unique.  Priorities are compared with ``<``;
    tuples are the usual choice for tie-breaking.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, Hashable]] = []
        self._pos: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pos

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: Hashable, priority: Any) -> None:
        """Insert ``key`` with ``priority``; raises if already present."""
        if key in self._pos:
            raise KeyError(f"key {key!r} already in heap")
        self._heap.append((priority, key))
        idx = len(self._heap) - 1
        self._pos[key] = idx
        self._sift_up(idx)

    def peek(self) -> Tuple[Hashable, Any]:
        """Return ``(key, priority)`` of the minimum without removing it."""
        if not self._heap:
            raise IndexError("peek from empty heap")
        priority, key = self._heap[0]
        return key, priority

    def pop(self) -> Tuple[Hashable, Any]:
        """Remove and return ``(key, priority)`` of the minimum."""
        if not self._heap:
            raise IndexError("pop from empty heap")
        priority, key = self._heap[0]
        self._remove_at(0)
        return key, priority

    def remove(self, key: Hashable) -> Any:
        """Remove ``key``; returns its priority. Raises KeyError if absent."""
        idx = self._pos[key]
        priority = self._heap[idx][0]
        self._remove_at(idx)
        return priority

    def update(self, key: Hashable, priority: Any) -> None:
        """Change the priority of ``key`` (up or down)."""
        idx = self._pos[key]
        old = self._heap[idx][0]
        self._heap[idx] = (priority, key)
        if priority < old:
            self._sift_up(idx)
        else:
            self._sift_down(idx)

    def push_or_update(self, key: Hashable, priority: Any) -> None:
        """Insert ``key`` or change its priority if present."""
        if key in self._pos:
            self.update(key, priority)
        else:
            self.push(key, priority)

    def priority(self, key: Hashable) -> Any:
        """Current priority of ``key``."""
        return self._heap[self._pos[key]][0]

    def get_priority(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Priority of ``key`` or ``default`` when absent."""
        idx = self._pos.get(key)
        return default if idx is None else self._heap[idx][0]

    # -- internals --------------------------------------------------------

    def _remove_at(self, idx: int) -> None:
        key = self._heap[idx][1]
        last = self._heap.pop()
        del self._pos[key]
        if idx < len(self._heap):
            self._heap[idx] = last
            self._pos[last[1]] = idx
            self._sift_down(idx)
            self._sift_up(idx)

    def _sift_up(self, idx: int) -> None:
        item = self._heap[idx]
        while idx > 0:
            parent = (idx - 1) >> 1
            if self._heap[parent][0] <= item[0]:
                break
            self._heap[idx] = self._heap[parent]
            self._pos[self._heap[idx][1]] = idx
            idx = parent
        self._heap[idx] = item
        self._pos[item[1]] = idx

    def _sift_down(self, idx: int) -> None:
        n = len(self._heap)
        item = self._heap[idx]
        while True:
            child = 2 * idx + 1
            if child >= n:
                break
            right = child + 1
            if right < n and self._heap[right][0] < self._heap[child][0]:
                child = right
            if self._heap[child][0] >= item[0]:
                break
            self._heap[idx] = self._heap[child]
            self._pos[self._heap[idx][1]] = idx
            idx = child
        self._heap[idx] = item
        self._pos[item[1]] = idx

    def check_invariants(self) -> None:
        """Assert heap order and index consistency (used by property tests)."""
        n = len(self._heap)
        assert len(self._pos) == n
        for i in range(n):
            priority, key = self._heap[i]
            assert self._pos[key] == i
            left, right = 2 * i + 1, 2 * i + 2
            if left < n:
                assert not (self._heap[left][0] < priority)
            if right < n:
                assert not (self._heap[right][0] < priority)
