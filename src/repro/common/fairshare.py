"""Fair-share allocation primitives.

:func:`max_min_fair_share` is the water-filling algorithm used by both the
flow-level network model (per-link bandwidth sharing) and the fair job
scheduler (per-queue capacity division).  :func:`weighted_max_min` is the
weighted generalization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["max_min_fair_share", "weighted_max_min"]


def max_min_fair_share(capacity: float, demands: Sequence[float]) -> np.ndarray:
    """Max-min fair allocation of ``capacity`` among ``demands``.

    Classic water-filling: repeatedly give every unsatisfied demand an equal
    share of the remaining capacity; demands smaller than the share are
    fully satisfied and the released capacity is redistributed.  Properties
    (verified by property tests):

    * no allocation exceeds its demand,
    * allocations sum to ``min(capacity, sum(demands))``,
    * any demand that is not fully satisfied receives at least as much as
      every other allocation (max-min optimality).
    """
    return weighted_max_min(capacity, demands, None)


def weighted_max_min(
    capacity: float,
    demands: Sequence[float],
    weights: Sequence[float] = None,
) -> np.ndarray:
    """Weighted max-min fair allocation.

    Each unsatisfied demand receives capacity proportional to its weight in
    every filling round.  ``weights=None`` means equal weights.  Zero-weight
    entries only receive capacity left over after all positively weighted
    demands are satisfied (then shared equally among them).
    """
    d = np.asarray(list(demands), dtype=np.float64)
    if d.size == 0:
        return d.copy()
    if np.any(d < 0):
        raise ValueError("demands must be nonnegative")
    if capacity < 0:
        raise ValueError("capacity must be nonnegative")
    if weights is None:
        w = np.ones_like(d)
    else:
        w = np.asarray(list(weights), dtype=np.float64)
        if w.shape != d.shape:
            raise ValueError("weights and demands must align")
        if np.any(w < 0):
            raise ValueError("weights must be nonnegative")

    alloc = np.zeros_like(d)
    remaining = float(capacity)
    active = (d > 0) & (w > 0)

    while remaining > 1e-12 and active.any():
        w_act = w[active]
        need = d[active] - alloc[active]
        # water level: capacity per unit weight if spread evenly this round
        level = remaining / w_act.sum()
        give = np.minimum(need, level * w_act)
        alloc[active] += give
        remaining -= float(give.sum())
        sat = (d - alloc) <= 1e-12
        newly = active & sat
        if not newly.any() and remaining > 1e-12:
            # nobody saturated => everyone got level*w and capacity exhausted
            break
        active &= ~sat

    # zero-weight demands share whatever is left, equally (unweighted max-min)
    if remaining > 1e-12:
        zero_w = (w == 0) & (d > 0)
        if zero_w.any():
            sub = max_min_fair_share(remaining, d[zero_w])
            alloc[zero_w] = sub
    return alloc
