"""Streaming summary statistics, histograms, and fairness indices.

These are the measurement primitives used by every experiment harness:
:class:`Summary` (Welford streaming moments + reservoir for quantiles),
:class:`Histogram` (fixed-bin), :class:`TimeWeighted` (time-averaged
utilization), and :func:`jain_index` (fairness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "Summary",
    "Histogram",
    "TimeWeighted",
    "jain_index",
    "percentile",
    "cdf_points",
]


class Summary:
    """Streaming mean/variance/min/max with exact quantiles.

    Uses Welford's online algorithm for numerically stable moments and keeps
    every observation (experiments here are laptop-scale) so quantiles are
    exact.  ``keep_values=False`` drops raw values to bound memory, in which
    case quantile queries raise.
    """

    def __init__(self, keep_values: bool = True) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._values: Optional[List[float]] = [] if keep_values else None
        self._weights: Optional[List[int]] = [] if keep_values else None
        self._weighted = False

    def add(self, x: float, weight: int = 1) -> None:
        """Record one observation with integer multiplicity ``weight``.

        ``weight=n`` is equivalent to ``n`` calls of ``add(x)`` (used e.g.
        for per-batch latencies weighted by batch size) without storing
        ``n`` copies of the value.
        """
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        if weight == 0:
            return
        x = float(x)
        self.count += weight
        delta = x - self._mean
        self._mean += delta * weight / self.count
        self._m2 += delta * weight * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if weight != 1:
            self._weighted = True
        if self._values is not None:
            self._values.append(x)
            self._weights.append(int(weight))

    def extend(self, xs: Iterable[float]) -> None:
        """Record many observations."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two observations)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._mean * self.count

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile (requires ``keep_values=True``).

        With weighted observations this matches ``np.quantile`` over the
        weight-expanded sample, computed without materializing it.
        """
        if self._values is None:
            raise ValueError("Summary built with keep_values=False")
        if not self._values:
            return 0.0
        if not self._weighted:
            return float(np.quantile(np.asarray(self._values), q))
        order = np.argsort(np.asarray(self._values, dtype=np.float64))
        vals = np.asarray(self._values, dtype=np.float64)[order]
        cumw = np.cumsum(np.asarray(self._weights, dtype=np.int64)[order])
        # linear interpolation at virtual index q * (N - 1) of the
        # expanded sorted sample, N = total weight
        pos = q * (self.count - 1)
        i0 = int(math.floor(pos))
        frac = pos - i0
        v0 = vals[np.searchsorted(cumw, i0, side="right")]
        v1 = vals[np.searchsorted(cumw, min(i0 + 1, self.count - 1),
                                  side="right")]
        return float(v0 + (v1 - v0) * frac)

    @property
    def p50(self) -> float:
        """Median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.quantile(0.99)

    def values(self) -> List[float]:
        """All recorded observations, weight-expanded (copy)."""
        if self._values is None:
            raise ValueError("Summary built with keep_values=False")
        if not self._weighted:
            return list(self._values)
        return [x for x, w in zip(self._values, self._weights)
                for _ in range(w)]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.count:
            return "Summary(empty)"
        return (
            f"Summary(n={self.count}, mean={self.mean:.4g}, "
            f"sd={self.stdev:.4g}, min={self.min:.4g}, max={self.max:.4g})"
        )


class Histogram:
    """Fixed-bin histogram over ``[lo, hi)`` with under/overflow bins."""

    def __init__(self, lo: float, hi: float, n_bins: int) -> None:
        if not (hi > lo):
            raise ValueError("hi must exceed lo")
        if n_bins <= 0:
            raise ValueError("need at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        self.n_bins = int(n_bins)
        self._counts = np.zeros(n_bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self._width = (self.hi - self.lo) / self.n_bins

    def add(self, x: float, weight: int = 1) -> None:
        """Record ``x`` with integer multiplicity ``weight``."""
        if x < self.lo:
            self.underflow += weight
        elif x >= self.hi:
            self.overflow += weight
        else:
            idx = int((x - self.lo) / self._width)
            # guard the exact-hi float edge
            idx = min(idx, self.n_bins - 1)
            self._counts[idx] += weight

    @property
    def counts(self) -> np.ndarray:
        """In-range bin counts (copy)."""
        return self._counts.copy()

    @property
    def total(self) -> int:
        """All recorded weight, including under/overflow."""
        return int(self._counts.sum()) + self.underflow + self.overflow

    def bin_edges(self) -> np.ndarray:
        """The ``n_bins + 1`` bin edges."""
        return np.linspace(self.lo, self.hi, self.n_bins + 1)

    def normalized(self) -> np.ndarray:
        """In-range bin probabilities (sums to in-range fraction)."""
        t = self.total
        if t == 0:
            return np.zeros(self.n_bins)
        return self._counts / t


@dataclass
class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`update` whenever the level changes; query :meth:`average`
    for the time integral divided by elapsed time.  Used for utilization
    and queue-length metrics in the simulators.
    """

    start_time: float = 0.0
    _level: float = 0.0
    _last_t: float = field(default=0.0)
    _area: float = field(default=0.0)
    _initialized: bool = field(default=False)

    def update(self, t: float, level: float) -> None:
        """Signal takes value ``level`` from time ``t`` onward."""
        if not self._initialized:
            self.start_time = t
            self._last_t = t
            self._level = level
            self._initialized = True
            return
        if t < self._last_t:
            raise ValueError("time must be nondecreasing")
        self._area += self._level * (t - self._last_t)
        self._last_t = t
        self._level = level

    def average(self, now: Optional[float] = None) -> float:
        """Time average from the first update until ``now`` (or last update)."""
        if not self._initialized:
            return 0.0
        end = self._last_t if now is None else now
        if end < self._last_t:
            raise ValueError("now precedes last update")
        area = self._area + self._level * (end - self._last_t)
        span = end - self.start_time
        return area / span if span > 0 else self._level

    @property
    def level(self) -> float:
        """Current level of the signal."""
        return self._level


def jain_index(xs: Sequence[float]) -> float:
    """Jain's fairness index of allocations ``xs`` — 1.0 is perfectly fair.

    ``J = (sum x)^2 / (n * sum x^2)``, in ``(0, 1]``; by convention an empty
    or all-zero allocation has index 1.0.
    """
    arr = np.asarray(list(xs), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    denom = arr.size * float((arr ** 2).sum())
    if denom == 0.0:
        return 1.0
    return float(arr.sum() ** 2 / denom)


def percentile(xs: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (``q`` in [0, 100]) of a sequence."""
    arr = np.asarray(list(xs), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def cdf_points(xs: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
    """Empirical CDF as ``(sorted values, cumulative probabilities)``."""
    arr = np.sort(np.asarray(list(xs), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, probs
