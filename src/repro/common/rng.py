"""Deterministic random-number plumbing.

Every stochastic component in the framework takes either an integer seed or
a :class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes both, and
:func:`spawn` derives independent child streams so that adding a new
consumer of randomness never perturbs existing ones (the classic
reproducibility bug in simulation codebases).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "spawn", "zipf_pmf", "zipf_sample"]

RandomState = Union[int, np.random.Generator, None]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh nondeterministic generator; an ``int`` yields a
    seeded PCG64 stream; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Children are created via ``Generator.spawn`` semantics (SeedSequence
    spawning), so each child stream is independent of the parent and of its
    siblings regardless of how much each is consumed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = rng.bit_generator.seed_seq.spawn(n)
    return [np.random.Generator(np.random.PCG64(s)) for s in seq]


def zipf_pmf(n: int, s: float) -> np.ndarray:
    """Probability mass function of a Zipf(s) law over ranks ``1..n``.

    ``s = 0`` degenerates to the uniform distribution; larger ``s`` is more
    skewed.  Unlike :func:`numpy.random.Generator.zipf` this supports any
    ``s >= 0`` over a *finite* support, which is what workload generators
    need.
    """
    if n <= 0:
        raise ValueError("support size must be positive")
    if s < 0:
        raise ValueError("zipf exponent must be >= 0")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def zipf_sample(
    rng: np.random.Generator,
    n_items: int,
    s: float,
    size: int,
    items: Optional[Sequence] = None,
) -> np.ndarray:
    """Draw ``size`` samples from a finite Zipf(s) distribution.

    Samples are integer ranks ``0..n_items-1`` unless ``items`` is given,
    in which case elements of ``items`` are returned (``len(items)`` must
    equal ``n_items``).
    """
    pmf = zipf_pmf(n_items, s)
    idx = rng.choice(n_items, size=size, p=pmf)
    if items is None:
        return idx
    items_arr = np.asarray(items, dtype=object)
    if len(items_arr) != n_items:
        raise ValueError("len(items) must equal n_items")
    return items_arr[idx]
