"""Canonical units and conversion helpers.

The whole framework uses one convention so that magnitudes compose:

* time      — seconds (float)
* data size — bytes (int where exactness matters, float in rate math)
* bandwidth — bytes per second
* compute   — abstract "work units"; a node core processes
              ``core_speed`` work units per second (1.0 = reference core)

Helpers here exist so experiment configs can be written legibly
(``MiB(128)``, ``Gbit_per_s(10)``) instead of with magic numbers.
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "TB",
    "KiB", "MiB", "GiB", "TiB",
    "Kbit_per_s", "Mbit_per_s", "Gbit_per_s",
    "ms", "us", "minutes", "hours",
    "fmt_bytes", "fmt_rate", "fmt_time",
]

_K = 1000
_Ki = 1024


def KB(n: float) -> int:
    """``n`` kilobytes (10^3) in bytes."""
    return int(n * _K)


def MB(n: float) -> int:
    """``n`` megabytes (10^6) in bytes."""
    return int(n * _K ** 2)


def GB(n: float) -> int:
    """``n`` gigabytes (10^9) in bytes."""
    return int(n * _K ** 3)


def TB(n: float) -> int:
    """``n`` terabytes (10^12) in bytes."""
    return int(n * _K ** 4)


def KiB(n: float) -> int:
    """``n`` kibibytes (2^10) in bytes."""
    return int(n * _Ki)


def MiB(n: float) -> int:
    """``n`` mebibytes (2^20) in bytes."""
    return int(n * _Ki ** 2)


def GiB(n: float) -> int:
    """``n`` gibibytes (2^30) in bytes."""
    return int(n * _Ki ** 3)


def TiB(n: float) -> int:
    """``n`` tebibytes (2^40) in bytes."""
    return int(n * _Ki ** 4)


def Kbit_per_s(n: float) -> float:
    """``n`` kilobits/second as bytes/second."""
    return n * _K / 8.0


def Mbit_per_s(n: float) -> float:
    """``n`` megabits/second as bytes/second."""
    return n * _K ** 2 / 8.0


def Gbit_per_s(n: float) -> float:
    """``n`` gigabits/second as bytes/second."""
    return n * _K ** 3 / 8.0


def ms(n: float) -> float:
    """``n`` milliseconds in seconds."""
    return n * 1e-3


def us(n: float) -> float:
    """``n`` microseconds in seconds."""
    return n * 1e-6


def minutes(n: float) -> float:
    """``n`` minutes in seconds."""
    return n * 60.0


def hours(n: float) -> float:
    """``n`` hours in seconds."""
    return n * 3600.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary prefixes)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bps: float) -> str:
    """Human-readable bandwidth from bytes/second (decimal bit prefixes)."""
    bits = bps * 8.0
    for unit in ("bit/s", "Kbit/s", "Mbit/s", "Gbit/s", "Tbit/s"):
        if abs(bits) < 1000.0 or unit == "Tbit/s":
            return f"{bits:.2f} {unit}"
        bits /= 1000.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"
