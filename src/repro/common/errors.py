"""Exception hierarchy shared by every ``repro`` subsystem.

All framework errors derive from :class:`ReproError` so callers can catch
one base class at API boundaries.  Subsystems raise the most specific
subclass that applies; nothing in the framework raises bare ``Exception``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "SchedulingError",
    "StorageError",
    "BlockNotFoundError",
    "InsufficientReplicasError",
    "CapacityError",
    "ChecksumError",
    "DataflowError",
    "BucketFileError",
    "PlanError",
    "UnpicklableTaskError",
    "WorkerTaskError",
    "RetryBudgetExhaustedError",
    "DeadlineExceededError",
    "TaskFailedError",
    "NetworkError",
    "RoutingError",
    "CloudError",
    "PlacementError",
    "MigrationError",
    "StreamingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` framework."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class RetryBudgetExhaustedError(ReproError):
    """A retry policy ran out of attempts (per-op) or budget (per-job).

    Carries enough context to diagnose the failure from the exception
    alone: ``op`` is the operation that exhausted its attempts, ``job`` /
    ``stage`` locate it, ``attempts`` is the full ordered history of
    failed attempts recorded by the owning
    :class:`~repro.resilience.policy.RetrySession` (each entry exposes
    ``op`` / ``time`` / ``error`` / ``delay``), and ``budget`` is the
    per-session budget that was configured (``None`` = unlimited).
    """

    def __init__(self, message: str = "", *, op=None, job=None, stage=None,
                 attempts=(), budget=None) -> None:
        self.op = op
        self.job = job
        self.stage = stage
        self.attempts = tuple(attempts)
        self.budget = budget
        super().__init__(message or self.describe())

    def describe(self) -> str:
        """Render the failure context, attempt history included."""
        where = "/".join(str(x) for x in (self.job, self.stage, self.op)
                         if x is not None) or "?"
        head = (f"retry budget exhausted at {where} "
                f"({len(self.attempts)} failed attempts recorded"
                + (f", budget={self.budget}" if self.budget is not None
                   else "") + ")")
        lines = [f"  #{i + 1} t={getattr(a, 'time', '?')} "
                 f"op={getattr(a, 'op', '?')}: {getattr(a, 'error', a)}"
                 for i, a in enumerate(self.attempts)]
        return "\n".join([head] + lines)


class DeadlineExceededError(ReproError):
    """An operation ran past its :class:`~repro.resilience.policy.Deadline`."""

    def __init__(self, message: str = "", *, deadline=None, now=None,
                 op=None) -> None:
        self.deadline = deadline
        self.now = now
        self.op = op
        if not message:
            message = (f"deadline exceeded"
                       + (f" for {op}" if op is not None else "")
                       + (f": now={now} > deadline={deadline}"
                          if deadline is not None else ""))
        super().__init__(message)


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. time travel)."""


class SchedulingError(ReproError):
    """A scheduler invariant was violated or a job cannot be scheduled."""


class StorageError(ReproError):
    """Base class for distributed-storage errors."""


class BlockNotFoundError(StorageError):
    """A block id does not exist in the namespace."""


class InsufficientReplicasError(StorageError):
    """Too few live replicas/fragments remain to serve or rebuild a block."""


class CapacityError(StorageError):
    """A node or cluster ran out of storage capacity."""


class ChecksumError(StorageError):
    """Stored bytes no longer match their checksum (silent corruption).

    Raised by :mod:`repro.storage.integrity` verification at *read* time,
    anywhere on the checksummed data plane — DFS replicas and EC
    fragments, shuffle bucket files, streaming checkpoint snapshots.
    Carries full provenance so recovery code (and humans) can locate the
    bad bytes without a debugger: ``layer`` names the data plane
    (``"dfs.replica"``, ``"shuffle"``, ``"checkpoint"``, ...), ``path``
    the stored object, ``offset`` the first corrupt chunk's byte offset,
    and ``expected`` / ``actual`` the checksum pair that disagreed.

    Picklable by construction (``__reduce__``): a pool worker that hits
    corruption re-raises the *typed* error driver-side, where the
    corrupt-bucket recovery path keys off these attributes.
    """

    def __init__(self, message: str = "", *, layer: str = "?",
                 path: str = "?", offset: int = -1, expected: int = 0,
                 actual: int = 0) -> None:
        self.layer = layer
        self.path = path
        self.offset = int(offset)
        self.expected = int(expected)
        self.actual = int(actual)
        super().__init__(message or
                         f"checksum mismatch in {layer} at {path}"
                         f" offset {offset}: expected {expected:#010x},"
                         f" got {actual:#010x}")

    def __reduce__(self):
        return (_rebuild_checksum_error,
                (str(self), self.layer, self.path, self.offset,
                 self.expected, self.actual))


def _rebuild_checksum_error(message, layer, path, offset, expected, actual):
    return ChecksumError(message, layer=layer, path=path, offset=offset,
                         expected=expected, actual=actual)


class DataflowError(ReproError):
    """Base class for dataflow-engine errors."""


class PlanError(DataflowError):
    """The logical plan is malformed (e.g. cycle, arity mismatch)."""


class UnpicklableTaskError(DataflowError):
    """A plan closure or payload cannot be serialized for pool dispatch.

    Raised by the multi-process backend *before* shipping work, naming
    the plan node (``dataset``) and attribute (``operator``) that failed
    so users can find the offending closure without decoding a worker
    traceback.  ``reason`` preserves the underlying serialization error.
    """

    def __init__(self, message: str = "", *, dataset=None, operator=None,
                 reason=None) -> None:
        self.dataset = dataset
        self.operator = operator
        self.reason = reason
        if not message:
            message = ("cannot serialize "
                       + (str(operator) if operator is not None else "object")
                       + (f" of {dataset}" if dataset is not None else "")
                       + " for the process-pool backend"
                       + (f": {reason}" if reason is not None else ""))
        super().__init__(message)


class BucketFileError(DataflowError):
    """A shuffle bucket file cannot serve a requested ``(offset, length)``.

    Raised by :func:`repro.dataflow.shuffleio.read_bucket_file` when a
    spill file is shorter than its offset table claims (truncation, a
    torn write) or the requested reduce id has no entry.  Before this
    type, a truncated file surfaced as an opaque ``UnpicklingError``
    with no hint of *which* file or bucket was short.
    """

    def __init__(self, message: str = "", *, path: str = "?",
                 reduce_id: int = -1, offset: int = -1, length: int = -1,
                 file_size: int = -1) -> None:
        self.path = path
        self.reduce_id = int(reduce_id)
        self.offset = int(offset)
        self.length = int(length)
        self.file_size = int(file_size)
        super().__init__(message or
                         f"bucket file {path} cannot serve reduce "
                         f"{reduce_id}: need [{offset}, {offset + length})"
                         f" of a {file_size}-byte file")

    def __reduce__(self):
        return (_rebuild_bucket_file_error,
                (str(self), self.path, self.reduce_id, self.offset,
                 self.length, self.file_size))


def _rebuild_bucket_file_error(message, path, reduce_id, offset, length,
                               file_size):
    return BucketFileError(message, path=path, reduce_id=reduce_id,
                           offset=offset, length=length,
                           file_size=file_size)


class WorkerTaskError(DataflowError):
    """A pool worker task raised an error that could not ship back as-is.

    Carries the remote traceback text; the original exception type is in
    ``remote_type``.
    """

    def __init__(self, message: str = "", *, remote_type: str = "",
                 remote_traceback: str = "") -> None:
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback
        super().__init__(message or
                         f"pool worker task failed ({remote_type}):\n"
                         f"{remote_traceback}")


class TaskFailedError(DataflowError, RetryBudgetExhaustedError):
    """A task exhausted its retry budget and the job must fail.

    Doubles as the dataflow-flavoured :class:`RetryBudgetExhaustedError`:
    when the engine runs under a :class:`~repro.resilience.RetryPolicy`
    it re-raises budget exhaustion as this type with the session's
    ``op`` / ``job`` / ``stage`` / ``attempts`` context attached, so both
    ``except DataflowError`` call sites and resilience-aware callers see
    the error they expect.
    """


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class RoutingError(NetworkError):
    """No route exists between two endpoints."""


class CloudError(ReproError):
    """Base class for cloud-layer errors."""


class PlacementError(CloudError):
    """A VM request cannot be placed on any host."""


class MigrationError(CloudError):
    """A live migration could not start or converge."""


class StreamingError(ReproError):
    """Micro-batch streaming engine error."""
