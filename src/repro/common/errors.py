"""Exception hierarchy shared by every ``repro`` subsystem.

All framework errors derive from :class:`ReproError` so callers can catch
one base class at API boundaries.  Subsystems raise the most specific
subclass that applies; nothing in the framework raises bare ``Exception``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "SchedulingError",
    "StorageError",
    "BlockNotFoundError",
    "InsufficientReplicasError",
    "CapacityError",
    "DataflowError",
    "PlanError",
    "TaskFailedError",
    "NetworkError",
    "RoutingError",
    "CloudError",
    "PlacementError",
    "MigrationError",
    "StreamingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` framework."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. time travel)."""


class SchedulingError(ReproError):
    """A scheduler invariant was violated or a job cannot be scheduled."""


class StorageError(ReproError):
    """Base class for distributed-storage errors."""


class BlockNotFoundError(StorageError):
    """A block id does not exist in the namespace."""


class InsufficientReplicasError(StorageError):
    """Too few live replicas/fragments remain to serve or rebuild a block."""


class CapacityError(StorageError):
    """A node or cluster ran out of storage capacity."""


class DataflowError(ReproError):
    """Base class for dataflow-engine errors."""


class PlanError(DataflowError):
    """The logical plan is malformed (e.g. cycle, arity mismatch)."""


class TaskFailedError(DataflowError):
    """A task exhausted its retry budget and the job must fail."""


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class RoutingError(NetworkError):
    """No route exists between two endpoints."""


class CloudError(ReproError):
    """Base class for cloud-layer errors."""


class PlacementError(CloudError):
    """A VM request cannot be placed on any host."""


class MigrationError(CloudError):
    """A live migration could not start or converge."""


class StreamingError(ReproError):
    """Micro-batch streaming engine error."""
