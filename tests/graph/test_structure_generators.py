"""Graph container and generators."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.graph import Graph, erdos_renyi, grid2d, ring, rmat


class TestGraph:
    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.n == 3 and g.n_edges == 2

    def test_explicit_vertex_count(self):
        g = Graph.from_edges([(0, 1)], n_vertices=10)
        assert g.n == 10

    def test_out_in_degrees(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        assert list(g.out_degrees()) == [2, 1, 0]
        assert list(g.in_degrees()) == [0, 1, 2]

    def test_neighbors(self):
        g = Graph.from_edges([(0, 2), (0, 1), (1, 2)])
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.neighbors(2).size == 0

    def test_dedup(self):
        g = Graph.from_edges([(0, 1), (0, 1), (1, 1)])
        d = g.dedup()
        assert d.n_edges == 1

    def test_symmetrized(self):
        g = Graph.from_edges([(0, 1)])
        s = g.symmetrized()
        assert sorted(s.edge_list()) == [(0, 1), (1, 0)]

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            Graph(2, [0], [5])

    def test_empty_graph(self):
        g = Graph(5, [], [])
        assert g.n_edges == 0
        assert list(g.out_degrees()) == [0] * 5


class TestGenerators:
    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(50, 200, seed=1)
        b = erdos_renyi(50, 200, seed=1)
        assert a.edge_list() == b.edge_list()
        assert erdos_renyi(50, 200, seed=2).edge_list() != a.edge_list()

    def test_erdos_renyi_no_self_loops(self):
        g = erdos_renyi(30, 500, seed=0)
        assert not any(u == v for u, v in g.edge_list())

    def test_rmat_size(self):
        g = rmat(7, 8, seed=0)
        assert g.n == 128
        assert 0 < g.n_edges <= 128 * 8

    def test_rmat_skewed_degrees(self):
        g = rmat(10, 16, seed=1)
        uniform = erdos_renyi(1024, g.n_edges, seed=1)
        assert g.out_degrees().max() > 3 * uniform.out_degrees().max()

    def test_rmat_validation(self):
        with pytest.raises(ReproError):
            rmat(0)
        with pytest.raises(ReproError):
            rmat(4, a=0.9, b=0.2, c=0.2)

    def test_ring(self):
        g = ring(5)
        assert g.n_edges == 5
        assert all(d == 1 for d in g.out_degrees())

    def test_grid_degrees(self):
        g = grid2d(3, 3)
        deg = g.out_degrees()
        assert deg.min() == 2 and deg.max() == 4   # corners vs center
        assert g.n_edges == 2 * 12                 # 12 undirected edges
