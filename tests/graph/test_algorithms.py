"""Graph algorithms validated against networkx as the oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    Graph,
    bfs_distances,
    connected_components,
    erdos_renyi,
    grid2d,
    pagerank,
    ring,
    rmat,
    sssp_dijkstra,
    triangle_count,
)


def to_nx(g: Graph, directed=True):
    G = nx.DiGraph() if directed else nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(g.edge_list())
    return G


@pytest.fixture(params=[0, 1, 2])
def random_graph(request):
    return erdos_renyi(60, 240, seed=request.param)


class TestPageRank:
    def test_uniform_on_ring(self):
        pr = pagerank(ring(8))
        assert np.allclose(pr, 1 / 8, atol=1e-6)

    def test_sums_to_one(self, random_graph):
        assert pagerank(random_graph).sum() == pytest.approx(1.0)

    def test_matches_networkx(self, random_graph):
        ours = pagerank(random_graph, damping=0.85, tol=1e-12,
                        max_iter=200)
        theirs = nx.pagerank(to_nx(random_graph), alpha=0.85, tol=1e-12,
                             max_iter=200)
        vec = np.array([theirs[i] for i in range(random_graph.n)])
        assert np.abs(ours - vec).max() < 1e-8

    def test_dangling_nodes_handled(self):
        g = Graph.from_edges([(0, 1), (1, 2)], 4)   # 2 and 3 dangle
        ours = pagerank(g, tol=1e-12, max_iter=200)
        theirs = nx.pagerank(to_nx(g), tol=1e-12, max_iter=200)
        vec = np.array([theirs[i] for i in range(4)])
        assert np.abs(ours - vec).max() < 1e-8

    def test_damping_validation(self):
        with pytest.raises(Exception):
            pagerank(ring(4), damping=1.5)


class TestConnectedComponents:
    def test_simple(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)], 6)
        assert list(connected_components(g)) == [0, 0, 0, 3, 3, 5]

    def test_matches_networkx(self, random_graph):
        ours = connected_components(random_graph)
        theirs = list(nx.connected_components(
            to_nx(random_graph, directed=False)))
        # same partition: min-label per component
        label_of = {}
        for comp in theirs:
            m = min(comp)
            for v in comp:
                label_of[v] = m
        assert all(ours[v] == label_of[v] for v in range(random_graph.n))

    def test_all_isolated(self):
        g = Graph(4, [], [])
        assert list(connected_components(g)) == [0, 1, 2, 3]

    def test_long_chain(self):
        n = 500
        g = Graph.from_edges([(i, i + 1) for i in range(n - 1)], n)
        assert (connected_components(g) == 0).all()


class TestBFS:
    def test_matches_networkx(self, random_graph):
        ours = bfs_distances(random_graph, 0)
        theirs = nx.single_source_shortest_path_length(
            to_nx(random_graph), 0)
        for v in range(random_graph.n):
            expect = theirs.get(v, -1)
            assert ours[v] == expect

    def test_unreachable_is_minus_one(self):
        g = Graph.from_edges([(0, 1)], 3)
        d = bfs_distances(g, 0)
        assert d[2] == -1

    def test_grid_manhattan(self):
        g = grid2d(5, 5)
        d = bfs_distances(g, 0)
        assert d[24] == 8

    def test_bad_source(self):
        with pytest.raises(Exception):
            bfs_distances(ring(3), 99)


class TestDijkstra:
    def test_matches_networkx_weighted(self):
        g = erdos_renyi(40, 200, seed=5)
        rng = np.random.default_rng(0)
        w = rng.uniform(0.1, 5.0, g.n_edges)
        ours = sssp_dijkstra(g, 0, w)
        G = nx.DiGraph()
        G.add_nodes_from(range(g.n))
        for (u, v), wt in zip(g.edge_list(), w):
            G.add_edge(u, v, weight=min(
                wt, G.edges[u, v]["weight"]) if G.has_edge(u, v) else wt)
        theirs = nx.single_source_dijkstra_path_length(G, 0)
        for v in range(g.n):
            expect = theirs.get(v, np.inf)
            assert ours[v] == pytest.approx(expect)

    def test_unit_weights_match_bfs(self):
        g = erdos_renyi(50, 250, seed=2)
        d1 = sssp_dijkstra(g, 3)
        d2 = bfs_distances(g, 3)
        for v in range(g.n):
            if d2[v] == -1:
                assert d1[v] == np.inf
            else:
                assert d1[v] == pytest.approx(d2[v])

    def test_negative_weight_rejected(self):
        g = ring(3)
        with pytest.raises(Exception):
            sssp_dijkstra(g, 0, np.array([-1.0, 1.0, 1.0]))


class TestTriangles:
    def test_known_counts(self):
        tri = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert triangle_count(tri) == 1
        k4 = Graph.from_edges([(i, j) for i in range(4)
                               for j in range(i + 1, 4)])
        assert triangle_count(k4) == 4
        assert triangle_count(ring(5)) == 0

    def test_matches_networkx(self, random_graph):
        ours = triangle_count(random_graph)
        theirs = sum(nx.triangles(
            to_nx(random_graph, directed=False)).values()) // 3
        assert ours == theirs

    def test_rmat_triangles_match(self):
        g = rmat(7, 4, seed=3)
        ours = triangle_count(g)
        theirs = sum(nx.triangles(to_nx(g, directed=False)).values()) // 3
        assert ours == theirs
