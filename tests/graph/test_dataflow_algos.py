"""Dataflow-backed graph algorithms agree with direct implementations."""

import numpy as np
import pytest

from repro.dataflow import DataflowContext
from repro.graph import (
    Graph,
    cc_dataflow,
    connected_components,
    edges_dataset,
    erdos_renyi,
    pagerank,
    pagerank_dataflow,
    ring,
)


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def test_edges_dataset_roundtrip(ctx):
    g = erdos_renyi(20, 60, seed=0)
    ds = edges_dataset(ctx, g, 4)
    assert sorted(ds.collect()) == sorted(g.edge_list())


def test_pagerank_agrees_with_direct(ctx):
    g = erdos_renyi(40, 200, seed=1)
    direct = pagerank(g, max_iter=25, tol=0.0)
    flow = pagerank_dataflow(ctx, g, iterations=25)
    vec = np.array([flow[v] for v in range(g.n)])
    assert np.abs(vec - direct).max() < 1e-9


def test_pagerank_with_dangling(ctx):
    g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (0, 3)], 5)  # 3,4 dangle
    direct = pagerank(g, max_iter=30, tol=0.0)
    flow = pagerank_dataflow(ctx, g, iterations=30)
    vec = np.array([flow[v] for v in range(g.n)])
    assert np.abs(vec - direct).max() < 1e-9


def test_pagerank_ring_uniform(ctx):
    flow = pagerank_dataflow(ctx, ring(6), iterations=15)
    assert all(abs(v - 1 / 6) < 1e-9 for v in flow.values())


def test_cc_agrees_with_direct(ctx):
    g = erdos_renyi(40, 60, seed=2)    # sparse -> several components
    direct = connected_components(g)
    flow = cc_dataflow(ctx, g)
    assert all(flow[v] == direct[v] for v in range(g.n))


def test_cc_isolated_vertices(ctx):
    g = Graph.from_edges([(0, 1)], 4)
    flow = cc_dataflow(ctx, g)
    assert flow == {0: 0, 1: 0, 2: 2, 3: 3}
