"""k-core decomposition and degeneracy ordering vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    Graph,
    core_numbers,
    degeneracy_ordering,
    erdos_renyi,
    grid2d,
    ring,
    rmat,
)


def nx_cores(g: Graph):
    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(g.edge_list())
    G.remove_edges_from(nx.selfloop_edges(G))
    return nx.core_number(G)


class TestCoreNumbers:
    def test_clique(self):
        k5 = Graph.from_edges([(i, j) for i in range(5)
                               for j in range(i + 1, 5)])
        assert (core_numbers(k5) == 4).all()

    def test_star(self):
        star = Graph.from_edges([(0, i) for i in range(1, 6)])
        assert (core_numbers(star) == 1).all()

    def test_ring_is_2core(self):
        assert (core_numbers(ring(10)) == 2).all()

    def test_grid(self):
        g = grid2d(4, 4)
        ours = core_numbers(g)
        theirs = nx_cores(g)
        assert all(ours[v] == theirs[v] for v in range(g.n))

    def test_isolated_vertices(self):
        g = Graph(4, [0], [1])
        cores = core_numbers(g)
        assert list(cores) == [1, 1, 0, 0]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx_er(self, seed):
        g = erdos_renyi(100, 500, seed=seed)
        ours = core_numbers(g)
        theirs = nx_cores(g)
        assert all(ours[v] == theirs[v] for v in range(g.n))

    def test_matches_networkx_rmat(self):
        g = rmat(8, 8, seed=9)
        ours = core_numbers(g)
        theirs = nx_cores(g)
        assert all(ours[v] == theirs[v] for v in range(g.n))


class TestDegeneracyOrdering:
    def test_is_permutation(self):
        g = erdos_renyi(60, 300, seed=1)
        order = degeneracy_ordering(g)
        assert sorted(order.tolist()) == list(range(g.n))

    @pytest.mark.parametrize("maker", [
        lambda: erdos_renyi(80, 400, seed=2),
        lambda: rmat(7, 6, seed=3),
        lambda: Graph.from_edges([(0, i) for i in range(1, 8)]),  # star
    ])
    def test_valid_degeneracy_ordering(self, maker):
        """Every vertex has <= degeneracy neighbors later in the order."""
        g = maker()
        und = g.symmetrized()
        order = degeneracy_ordering(g)
        degeneracy = int(core_numbers(g).max())
        position = np.empty(g.n, dtype=np.int64)
        position[order] = np.arange(g.n)
        later_neighbors = np.zeros(g.n, dtype=np.int64)
        for u, v in und.edge_list():
            if position[v] > position[u]:
                later_neighbors[u] += 1
        assert later_neighbors.max() <= degeneracy
