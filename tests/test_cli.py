"""The `python -m repro` experiment runner."""

import pytest

from repro.__main__ import discover, main


class TestDiscovery:
    def test_finds_all_experiments(self):
        exps = discover()
        for exp in ["t1", "t9", "f1", "f7", "a1", "a6"]:
            assert exp in exps

    def test_ids_map_to_files(self):
        for exp_id, path in discover().items():
            assert path.name.startswith(f"bench_{exp_id}_")
            assert path.exists()


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "a6" in out

    def test_help(self, capsys):
        assert main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 1

    def test_unknown_experiment(self, capsys):
        assert main(["run", "zz"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

    def test_run_one(self, capsys):
        assert main(["run", "a1"]) == 0
        out = capsys.readouterr().out
        assert "A1:" in out and "RS(" in out
