"""Scheduling policies on canonical workloads (the T3 result shapes)."""

import pytest

from repro.common.errors import SchedulingError
from repro.scheduler import (
    CapacityPolicy,
    JobSpec,
    Resources,
    make_scheduling_policy,
    run_schedule,
)
from repro.workloads import job_mix


def wave_workload():
    """One long many-task job plus short jobs arriving just after."""
    specs = [JobSpec(0, 0.0, tuple([4.0] * 200))]
    specs += [JobSpec(i, 1.0, tuple([1.0] * 4)) for i in range(1, 11)]
    return specs


CAP = Resources(cpus=8)


class TestFactory:
    def test_known_names(self):
        for name in ["fifo", "fair", "srpt", "drf"]:
            assert make_scheduling_policy(name).name == name

    def test_capacity_needs_guarantees(self):
        p = make_scheduling_policy("capacity", guarantees={"q": 1.0})
        assert p.name == "capacity"
        with pytest.raises(SchedulingError):
            CapacityPolicy({})

    def test_unknown_name(self):
        with pytest.raises(SchedulingError):
            make_scheduling_policy("mystery")


class TestBasicExecution:
    def test_single_job_runs_to_completion(self):
        r = run_schedule([JobSpec(0, 0.0, (2.0, 2.0))], CAP,
                         make_scheduling_policy("fifo"))
        assert r.jcts[0] == pytest.approx(2.0)     # both tasks parallel

    def test_serialization_when_one_cpu(self):
        r = run_schedule([JobSpec(0, 0.0, (2.0, 2.0))], Resources(1),
                         make_scheduling_policy("fifo"))
        assert r.jcts[0] == pytest.approx(4.0)

    def test_arrival_time_respected(self):
        r = run_schedule([JobSpec(0, 10.0, (1.0,))], CAP,
                         make_scheduling_policy("fifo"))
        assert r.makespan == pytest.approx(11.0)
        assert r.jcts[0] == pytest.approx(1.0)

    def test_utilization_bounds(self):
        specs = [JobSpec(i, 0.0, (5.0,) * 8) for i in range(4)]
        r = run_schedule(specs, CAP, make_scheduling_policy("fifo"))
        assert 0.9 <= r.cpu_utilization <= 1.0

    def test_all_jobs_finish(self):
        specs = job_mix(30, 200.0, seed=5)
        for name in ["fifo", "fair", "srpt", "drf"]:
            r = run_schedule(specs, Resources(16, 64),
                             make_scheduling_policy(name))
            assert len(r.jcts) == 30

    def test_run_before_submit_rejected(self):
        from repro.scheduler import SchedulerSim
        from repro.simcore import Simulator
        sched = SchedulerSim(Simulator(), CAP, make_scheduling_policy("fifo"))
        with pytest.raises(SchedulingError):
            sched.run()


class TestPolicyShapes:
    def test_fifo_starves_short_jobs(self):
        r = run_schedule(wave_workload(), CAP, make_scheduling_policy("fifo"))
        short_mean = sum(r.jcts[i] for i in range(1, 11)) / 10
        assert short_mean > 50     # stuck behind the long job

    def test_fair_rescues_short_jobs(self):
        fifo = run_schedule(wave_workload(), CAP,
                            make_scheduling_policy("fifo"))
        fair = run_schedule(wave_workload(), CAP,
                            make_scheduling_policy("fair"))
        fifo_short = sum(fifo.jcts[i] for i in range(1, 11)) / 10
        fair_short = sum(fair.jcts[i] for i in range(1, 11)) / 10
        assert fair_short < fifo_short / 5
        # long job pays only a little
        assert fair.jcts[0] < fifo.jcts[0] * 1.2

    def test_srpt_minimizes_mean_jct(self):
        specs = wave_workload()
        results = {name: run_schedule(specs, CAP,
                                      make_scheduling_policy(name))
                   for name in ["fifo", "fair", "srpt"]}
        assert results["srpt"].mean_jct == min(
            r.mean_jct for r in results.values())

    def test_fair_improves_fairness_index(self):
        fifo = run_schedule(wave_workload(), CAP,
                            make_scheduling_policy("fifo"))
        fair = run_schedule(wave_workload(), CAP,
                            make_scheduling_policy("fair"))
        assert fair.fairness > fifo.fairness

    def test_weights_shift_allocation(self):
        # two identical jobs, one with weight 3 -> it finishes earlier
        specs = [JobSpec(0, 0.0, (1.0,) * 64, weight=3.0),
                 JobSpec(1, 0.0, (1.0,) * 64, weight=1.0)]
        r = run_schedule(specs, Resources(4),
                         make_scheduling_policy("fair"))
        assert r.jcts[0] < r.jcts[1]

    def test_capacity_guarantees_protect_queue(self):
        # dev queue guaranteed 50%: its jobs shouldn't wait for all of prod
        specs = [JobSpec(i, 0.0, (10.0,) * 8, queue="prod")
                 for i in range(4)]
        specs.append(JobSpec(99, 0.1, (10.0,) * 4, queue="dev"))
        pol = CapacityPolicy({"prod": 0.5, "dev": 0.5})
        r = run_schedule(specs, CAP, pol)
        fifo = run_schedule(specs, CAP, make_scheduling_policy("fifo"))
        assert r.jcts[99] < fifo.jcts[99]

    def test_drf_equalizes_dominant_shares(self):
        # classic DRF example: user A cpu-heavy, user B mem-heavy
        specs = [
            JobSpec(0, 0.0, (100.0,) * 100, demand=Resources(1, 4),
                    user="A"),
            JobSpec(1, 0.0, (100.0,) * 100, demand=Resources(3, 1),
                    user="B"),
        ]
        from repro.scheduler import SchedulerSim
        from repro.simcore import Simulator
        sim = Simulator()
        total = Resources(9, 18)
        sched = SchedulerSim(sim, total, make_scheduling_policy("drf"))
        sched.submit_all(specs)
        sim.run(until=50.0)    # mid-flight snapshot
        jobs = {j.spec.job_id: j for j in sched.jobs}
        # Ghodsi et al. example: A gets 3 tasks (dominant mem 12/18=2/3),
        # B gets 2 tasks (dominant cpu 6/9=2/3)
        assert jobs[0].running == 3
        assert jobs[1].running == 2

    def test_drf_sharing_incentive(self):
        # each user's dominant share >= what a 1/n static split gives
        specs = [
            JobSpec(0, 0.0, (50.0,) * 50, demand=Resources(2, 1), user="A"),
            JobSpec(1, 0.0, (50.0,) * 50, demand=Resources(1, 2), user="B"),
        ]
        from repro.scheduler import SchedulerSim
        from repro.simcore import Simulator
        sim = Simulator()
        total = Resources(12, 12)
        sched = SchedulerSim(sim, total, make_scheduling_policy("drf"))
        sched.submit_all(specs)
        sim.run(until=10.0)
        for j in sched.jobs:
            share = j.allocated.dominant_share(total)
            assert share >= 0.5 - 1e-6
