"""Job model and resource vectors."""

import pytest

from repro.common.errors import SchedulingError
from repro.scheduler import Job, JobSpec, Resources


class TestResources:
    def test_add_sub(self):
        a = Resources(2, 4)
        b = Resources(1, 1)
        assert (a + b).cpus == 3 and (a - b).mem == 3

    def test_fits_in(self):
        assert Resources(1, 2).fits_in(Resources(2, 2))
        assert not Resources(3, 0).fits_in(Resources(2, 10))

    def test_dominant_share(self):
        total = Resources(10, 100)
        assert Resources(5, 10).dominant_share(total) == pytest.approx(0.5)
        assert Resources(1, 80).dominant_share(total) == pytest.approx(0.8)

    def test_dominant_share_zero_total(self):
        assert Resources(1, 1).dominant_share(Resources(0, 0)) == 0.0

    def test_scaled(self):
        r = Resources(1, 2).scaled(3)
        assert r.cpus == 3 and r.mem == 6


class TestJobSpec:
    def test_valid(self):
        s = JobSpec(0, 0.0, (1.0, 2.0))
        assert s.n_tasks == 2 and s.total_work == pytest.approx(3.0)

    def test_no_tasks_rejected(self):
        with pytest.raises(SchedulingError):
            JobSpec(0, 0.0, ())

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SchedulingError):
            JobSpec(0, 0.0, (1.0, 0.0))

    def test_negative_arrival_rejected(self):
        with pytest.raises(SchedulingError):
            JobSpec(0, -1.0, (1.0,))


class TestJobRuntime:
    def test_task_lifecycle(self):
        job = Job(JobSpec(0, 0.0, (1.0, 2.0, 3.0)))
        assert job.remaining_work == pytest.approx(6.0)
        idx = job.next_task()
        assert idx == 0 and job.running == 1
        assert job.remaining_work == pytest.approx(5.0)
        job.task_finished()
        assert job.completed == 1 and not job.done

    def test_done(self):
        job = Job(JobSpec(0, 0.0, (1.0,)))
        job.next_task()
        job.task_finished()
        assert job.done

    def test_next_task_when_empty_raises(self):
        job = Job(JobSpec(0, 0.0, (1.0,)))
        job.next_task()
        with pytest.raises(SchedulingError):
            job.next_task()

    def test_jct_requires_finish(self):
        job = Job(JobSpec(0, 5.0, (1.0,)))
        with pytest.raises(SchedulingError):
            job.jct()
        job.finish_time = 25.0
        assert job.jct() == pytest.approx(20.0)

    def test_allocated(self):
        job = Job(JobSpec(0, 0.0, (1.0, 1.0), demand=Resources(2, 3)))
        job.next_task()
        assert job.allocated.cpus == 2 and job.allocated.mem == 3

    def test_ideal_duration_bounds(self):
        # 4 tasks x 10s on 2 cpus: work bound = 20s; critical path 10s
        job = Job(JobSpec(0, 0.0, (10.0,) * 4))
        assert job.ideal_duration(Resources(2, 0)) == pytest.approx(20.0)
        # plenty of cpus: critical path dominates
        assert job.ideal_duration(Resources(100, 0)) == pytest.approx(10.0)
