"""EASY backfilling vs FCFS for rigid batch jobs."""

import numpy as np
import pytest

from repro.common.errors import SchedulingError
from repro.scheduler.backfill import RigidJob, simulate_batch


def canonical_scenario():
    """The textbook backfill picture.

    J0 uses half the machine; J1 (wide) must wait for it; J2 (small, short)
    fits in the idle half and finishes before J0 does — FCFS leaves the
    hole, EASY backfills it.
    """
    return [
        RigidJob(0, 0.0, n_nodes=4, runtime=100.0),
        RigidJob(1, 1.0, n_nodes=8, runtime=50.0),
        RigidJob(2, 2.0, n_nodes=2, runtime=30.0),
    ]


class TestCanonicalBackfill:
    def test_fcfs_leaves_the_hole(self):
        res = simulate_batch(canonical_scenario(), 8, "fcfs")
        assert res.start_times[2] >= 100.0      # stuck behind the wide job

    def test_easy_fills_the_hole(self):
        res = simulate_batch(canonical_scenario(), 8, "easy")
        assert res.start_times[2] == pytest.approx(2.0)
        assert res.backfilled == 1

    def test_head_job_not_delayed(self):
        """EASY's hard guarantee: the reservation holds."""
        fcfs = simulate_batch(canonical_scenario(), 8, "fcfs")
        easy = simulate_batch(canonical_scenario(), 8, "easy")
        assert easy.start_times[1] <= fcfs.start_times[1] + 1e-9

    def test_utilization_improves(self):
        fcfs = simulate_batch(canonical_scenario(), 8, "fcfs")
        easy = simulate_batch(canonical_scenario(), 8, "easy")
        assert easy.utilization > fcfs.utilization


class TestCorrectness:
    def test_all_jobs_finish(self):
        jobs = canonical_scenario()
        for policy in ("fcfs", "easy"):
            res = simulate_batch(jobs, 8, policy)
            assert set(res.finish_times) == {0, 1, 2}
            for j in jobs:
                assert res.finish_times[j.job_id] == pytest.approx(
                    res.start_times[j.job_id] + j.runtime)

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(0)
        jobs = [RigidJob(i, float(rng.uniform(0, 200)),
                         int(rng.integers(1, 9)),
                         float(rng.uniform(5, 60)))
                for i in range(60)]
        for policy in ("fcfs", "easy"):
            res = simulate_batch(jobs, 8, policy)
            # reconstruct node usage over time from starts/finishes
            events = []
            for j in jobs:
                events.append((res.start_times[j.job_id], j.n_nodes))
                events.append((res.finish_times[j.job_id], -j.n_nodes))
            events.sort()
            used = 0
            for _t, delta in events:
                used += delta
                assert used <= 8 + 1e-9

    def test_fcfs_order_respected(self):
        jobs = [RigidJob(i, float(i), 4, 10.0) for i in range(6)]
        res = simulate_batch(jobs, 8, "fcfs")
        starts = [res.start_times[i] for i in range(6)]
        assert starts == sorted(starts)

    def test_single_job(self):
        res = simulate_batch([RigidJob(0, 5.0, 3, 7.0)], 8, "easy")
        assert res.start_times[0] == 5.0
        assert res.makespan == pytest.approx(12.0)

    def test_walltime_overestimate_still_safe(self):
        # estimates are 3x the truth: backfill stays conservative but legal
        jobs = [
            RigidJob(0, 0.0, 4, 100.0, walltime_estimate=300.0),
            RigidJob(1, 1.0, 8, 50.0, walltime_estimate=150.0),
            RigidJob(2, 2.0, 2, 30.0, walltime_estimate=90.0),
        ]
        res = simulate_batch(jobs, 8, "easy")
        fcfs = simulate_batch(jobs, 8, "fcfs")
        assert res.start_times[1] <= fcfs.start_times[1] + 1e-9


class TestRandomizedGuarantee:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_easy_never_hurts_and_usually_helps(self, seed):
        rng = np.random.default_rng(seed)
        jobs = [RigidJob(i, float(rng.uniform(0, 100)),
                         int(rng.integers(1, 17)),
                         float(rng.uniform(5, 80)),
                         walltime_estimate=None)
                for i in range(80)]
        fcfs = simulate_batch(jobs, 16, "fcfs")
        easy = simulate_batch(jobs, 16, "easy")
        assert easy.mean_wait <= fcfs.mean_wait + 1e-9
        assert easy.makespan <= fcfs.makespan + 1e-9


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(SchedulingError):
            simulate_batch([RigidJob(0, 0, 1, 1.0)], 4, "magic")

    def test_oversized_job(self):
        with pytest.raises(SchedulingError):
            simulate_batch([RigidJob(0, 0, 100, 1.0)], 4)

    def test_bad_job_fields(self):
        with pytest.raises(SchedulingError):
            RigidJob(0, 0, 0, 1.0)
        with pytest.raises(SchedulingError):
            RigidJob(0, 0, 1, 0.0)
        with pytest.raises(SchedulingError):
            RigidJob(0, 0, 1, 10.0, walltime_estimate=5.0)
