"""DES kernel: clock, processes, joins, interrupts, determinism."""

import pytest

from repro.common.errors import SimulationError
from repro.simcore import Interrupt, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(2.5)
    sim.process(p(sim))
    assert sim.run() == 2.5


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []

    def p(sim, name, delay):
        yield sim.timeout(delay)
        log.append(name)
    sim.process(p(sim, "late", 3))
    sim.process(p(sim, "early", 1))
    sim.process(p(sim, "mid", 2))
    sim.run()
    assert log == ["early", "mid", "late"]


def test_same_time_fifo_by_creation():
    sim = Simulator()
    log = []

    def p(sim, name):
        yield sim.timeout(1.0)
        log.append(name)
    for i in range(5):
        sim.process(p(sim, i))
    sim.run()
    assert log == [0, 1, 2, 3, 4]


def test_process_return_value():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(1)
        return "answer"
    proc = sim.process(p(sim))
    sim.run()
    assert proc.value == "answer"


def test_join_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2)
        return 7

    def parent(sim):
        c = sim.process(child(sim))
        v = yield c
        return v * 2
    par = sim.process(parent(sim))
    sim.run()
    assert par.value == 14


def test_all_of_waits_for_slowest():
    sim = Simulator()

    def p(sim, d):
        yield sim.timeout(d)
        return d
    procs = [sim.process(p(sim, d)) for d in (1, 5, 3)]

    def waiter(sim):
        res = yield sim.all_of(procs)
        return (sim.now, sorted(res.values()))
    w = sim.process(waiter(sim))
    sim.run()
    assert w.value == (5, [1, 3, 5])


def test_any_of_fires_on_first():
    sim = Simulator()

    def p(sim, d):
        yield sim.timeout(d)
        return d

    def waiter(sim):
        res = yield sim.any_of([sim.process(p(sim, 4)), sim.process(p(sim, 1))])
        return (sim.now, res)
    w = sim.process(waiter(sim))
    sim.run()
    assert w.value[0] == 1
    assert 1 in w.value[1].values()


def test_interrupt_delivers_cause():
    sim = Simulator()
    seen = []

    def victim(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            seen.append((sim.now, i.cause))

    def attacker(sim, v):
        yield sim.timeout(2)
        v.interrupt("reason")
    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert seen == [(2.0, "reason")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)
    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()

    def victim(sim):
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(5)
        return sim.now

    def attacker(sim, v):
        yield sim.timeout(1)
        v.interrupt()
    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert v.value == 6.0


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()

    def waiter(sim):
        v = yield ev
        return v

    def firer(sim):
        yield sim.timeout(3)
        ev.succeed(99)
    w = sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert w.value == 99 and sim.now == 3.0


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    def firer(sim):
        yield sim.timeout(1)
        ev.fail(ValueError("boom"))
    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failure_surfaces_at_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("unhandled")
    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_run_until_time():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(10)
    sim.process(p(sim))
    assert sim.run(until=4.0) == 4.0
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_done_returns_value():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(2)
        return "v"
    proc = sim.process(p(sim))
    assert sim.run_until_done(proc) == "v"


def test_run_until_done_raises_on_failure():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(1)
        raise KeyError("gone")
    proc = sim.process(p(sim))
    with pytest.raises(KeyError):
        sim.run_until_done(proc)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_until_in_past_rejected():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(5)
    sim.process(p(sim))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_yielding_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42
    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_already_processed_event():
    sim = Simulator()

    def p(sim):
        t = sim.timeout(1)
        yield t
        # yield the same (already processed) event again: resumes promptly
        yield t
        return sim.now
    proc = sim.process(p(sim))
    sim.run()
    assert proc.value == 1.0


def test_zero_timeout_runs_in_order():
    sim = Simulator()
    log = []

    def p(sim, n):
        yield sim.timeout(0)
        log.append(n)
    sim.process(p(sim, 1))
    sim.process(p(sim, 2))
    sim.run()
    assert log == [1, 2]


def test_determinism_across_runs():
    def build():
        sim = Simulator()
        log = []

        def p(sim, n):
            for i in range(3):
                yield sim.timeout(0.5 * (n + 1))
                log.append((sim.now, n, i))
        for n in range(4):
            sim.process(p(sim, n))
        sim.run()
        return log
    assert build() == build()


def test_empty_condition_fires_immediately():
    sim = Simulator()

    def p(sim):
        res = yield sim.all_of([])
        return res
    proc = sim.process(p(sim))
    sim.run()
    assert proc.value == {}
