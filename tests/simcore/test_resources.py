"""Resource, Container, Store semantics."""

import pytest

from repro.common.errors import SimulationError
from repro.simcore import Container, Resource, Simulator, Store


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        r = Resource(sim, capacity=2)
        grants = []

        def user(sim, r, name, hold):
            req = r.request()
            yield req
            grants.append((sim.now, name))
            yield sim.timeout(hold)
            r.release(req)
        for i in range(4):
            sim.process(user(sim, r, i, 10))
        sim.run()
        assert grants == [(0, 0), (0, 1), (10, 2), (10, 3)]

    def test_fifo_order(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        order = []

        def user(sim, r, name):
            req = r.request()
            yield req
            order.append(name)
            yield sim.timeout(1)
            r.release(req)
        for i in range(5):
            sim.process(user(sim, r, i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_order(self):
        sim = Simulator()
        r = Resource(sim, capacity=1, priority=True)
        order = []

        def holder(sim, r):
            req = r.request()
            yield req
            yield sim.timeout(5)
            r.release(req)

        def user(sim, r, name, prio, delay):
            yield sim.timeout(delay)
            req = r.request(priority=prio)
            yield req
            order.append(name)
            r.release(req)
        sim.process(holder(sim, r))
        sim.process(user(sim, r, "low", 10, 1))
        sim.process(user(sim, r, "high", 1, 2))
        sim.run()
        assert order == ["high", "low"]

    def test_utilization(self):
        sim = Simulator()
        r = Resource(sim, capacity=2)

        def user(sim, r):
            req = r.request()
            yield req
            yield sim.timeout(10)
            r.release(req)
        sim.process(user(sim, r))
        sim.run()
        assert r.utilization(10.0) == pytest.approx(0.5)

    def test_release_unowned_raises(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)

        def bad(sim, r):
            req = r.request()
            yield req
            r.release(req)
            r.release(req)
        sim.process(bad(sim, r))
        with pytest.raises(SimulationError):
            sim.run()

    def test_cancel_queued_request(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)

        def holder(sim, r):
            req = r.request()
            yield req
            yield sim.timeout(5)
            r.release(req)

        def canceller(sim, r):
            yield sim.timeout(1)
            req = r.request()
            req.cancel()
            assert r.queued == 0
        sim.process(holder(sim, r))
        sim.process(canceller(sim, r))
        sim.run()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_counts(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)

        def user(sim, r):
            req = r.request()
            yield req
            yield sim.timeout(1)
            r.release(req)
        sim.process(user(sim, r))
        sim.process(user(sim, r))
        sim.run(until=0.5)
        assert r.in_use == 1 and r.queued == 1


class TestContainer:
    def test_put_get(self):
        sim = Simulator()
        c = Container(sim, capacity=100, init=50)

        def p(sim, c):
            yield c.get(30)
            assert c.level == 20
            yield c.put(60)
            assert c.level == 80
        sim.process(p(sim, c))
        sim.run()

    def test_get_blocks_until_available(self):
        sim = Simulator()
        c = Container(sim, capacity=100, init=0)
        times = []

        def getter(sim, c):
            yield c.get(10)
            times.append(sim.now)

        def putter(sim, c):
            yield sim.timeout(5)
            yield c.put(10)
        sim.process(getter(sim, c))
        sim.process(putter(sim, c))
        sim.run()
        assert times == [5.0]

    def test_put_blocks_when_full(self):
        sim = Simulator()
        c = Container(sim, capacity=10, init=10)
        times = []

        def putter(sim, c):
            yield c.put(5)
            times.append(sim.now)

        def getter(sim, c):
            yield sim.timeout(3)
            yield c.get(5)
        sim.process(putter(sim, c))
        sim.process(getter(sim, c))
        sim.run()
        assert times == [3.0]

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            Container(Simulator(), capacity=5, init=10)

    def test_negative_amount(self):
        c = Container(Simulator())
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)


class TestStore:
    def test_fifo(self):
        sim = Simulator()
        s = Store(sim)
        got = []

        def producer(sim, s):
            for i in range(3):
                yield s.put(i)

        def consumer(sim, s):
            for _ in range(3):
                v = yield s.get()
                got.append(v)
        sim.process(producer(sim, s))
        sim.process(consumer(sim, s))
        sim.run()
        assert got == [0, 1, 2]

    def test_get_blocks_on_empty(self):
        sim = Simulator()
        s = Store(sim)
        times = []

        def consumer(sim, s):
            v = yield s.get()
            times.append((sim.now, v))

        def producer(sim, s):
            yield sim.timeout(7)
            yield s.put("x")
        sim.process(consumer(sim, s))
        sim.process(producer(sim, s))
        sim.run()
        assert times == [(7.0, "x")]

    def test_capacity_blocks_put(self):
        sim = Simulator()
        s = Store(sim, capacity=1)
        done = []

        def producer(sim, s):
            yield s.put(1)
            yield s.put(2)      # blocks until consumer takes 1
            done.append(sim.now)

        def consumer(sim, s):
            yield sim.timeout(4)
            yield s.get()
        sim.process(producer(sim, s))
        sim.process(consumer(sim, s))
        sim.run()
        assert done == [4.0]

    def test_len(self):
        sim = Simulator()
        s = Store(sim)

        def p(sim, s):
            yield s.put(1)
            yield s.put(2)
        sim.process(p(sim, s))
        sim.run()
        assert len(s) == 2


class TestStoreCancelGet:
    def test_cancelled_get_never_fires_and_item_stays(self):
        sim = Simulator()
        s = Store(sim)

        def stage_a(sim, s):
            ev = s.get()
            s.cancel_get(ev)        # abandon the wait (stage finished)
            yield sim.timeout(5)
            assert not ev.triggered

        def producer(sim, s):
            yield sim.timeout(1)
            yield s.put("late-result")
        sim.process(stage_a(sim, s))
        sim.process(producer(sim, s))
        sim.run()
        # the late put stays queued instead of feeding the abandoned getter
        assert list(s.items) == ["late-result"]

    def test_cancel_is_idempotent_and_ignores_fulfilled(self):
        sim = Simulator()
        s = Store(sim)
        got = []

        def consumer(sim, s):
            ev = s.get()
            v = yield ev
            got.append(v)
            s.cancel_get(ev)        # already fulfilled: must be a no-op
            s.cancel_get(ev)

        def producer(sim, s):
            yield s.put(42)
        sim.process(consumer(sim, s))
        sim.process(producer(sim, s))
        sim.run()
        assert got == [42]

    def test_cancel_preserves_fifo_for_other_getters(self):
        sim = Simulator()
        s = Store(sim)
        got = []

        def quitter(sim, s):
            ev = s.get()
            s.cancel_get(ev)
            yield sim.timeout(0)

        def patient(sim, s):
            v = yield s.get()
            got.append(v)

        sim.process(quitter(sim, s))
        sim.process(patient(sim, s))

        def producer(sim, s):
            yield sim.timeout(1)
            yield s.put("for-patient")
        sim.process(producer(sim, s))
        sim.run()
        assert got == ["for-patient"]
