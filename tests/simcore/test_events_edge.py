"""Event edge cases: double-trigger, failure plumbing, condition values."""

import pytest

from repro.simcore import AllOf, AnyOf, Simulator


def test_double_succeed_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_succeed_after_fail_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("x"))
    ev.defused = True
    with pytest.raises(RuntimeError):
        ev.succeed(1)


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_ok_states():
    sim = Simulator()
    ev = sim.event()
    assert ev.ok is None
    ev.succeed()
    assert ev.ok is True
    ev2 = sim.event()
    ev2.fail(RuntimeError())
    ev2.defused = True
    assert ev2.ok is False
    sim.run()


def test_all_of_value_indices_match_inputs():
    sim = Simulator()

    def p(sim, v, d):
        yield sim.timeout(d)
        return v
    procs = [sim.process(p(sim, f"v{i}", 3 - i)) for i in range(3)]

    def waiter(sim):
        res = yield sim.all_of(procs)
        return res
    w = sim.process(waiter(sim))
    sim.run()
    assert w.value == {0: "v0", 1: "v1", 2: "v2"}


def test_any_of_failure_propagates():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1)
        raise KeyError("boom")

    def waiter(sim):
        try:
            yield sim.any_of([sim.process(bad(sim)), sim.timeout(100)])
        except KeyError as e:
            caught.append(str(e))
    sim.process(waiter(sim))
    sim.run()
    assert caught == ["'boom'"]


def test_all_of_failure_propagates():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("vboom")

    def good(sim):
        yield sim.timeout(2)

    def waiter(sim):
        try:
            yield sim.all_of([sim.process(good(sim)),
                              sim.process(bad(sim))])
        except ValueError:
            caught.append(True)
    sim.process(waiter(sim))
    sim.run()
    assert caught == [True]


def test_condition_of_mixed_simulators_rejected():
    sim1, sim2 = Simulator(), Simulator()
    t1 = sim1.timeout(1)
    t2 = sim2.timeout(1)
    with pytest.raises(ValueError):
        AnyOf(sim1, [t1, t2])


def test_peek_and_step():
    sim = Simulator()
    sim.timeout(5.0)
    assert sim.peek() == 5.0
    sim.step()
    assert sim.now == 5.0
    assert sim.peek() == float("inf")


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(Exception):
        sim.step()


def test_max_events_cap():
    sim = Simulator()
    for i in range(10):
        sim.timeout(float(i))
    sim.run(max_events=3)
    assert sim.now == 2.0
