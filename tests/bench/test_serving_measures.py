"""Smoke coverage for the schema-9 multi-tenant serving measurement.

Tiny scales only — the full-scale numbers and guards live in
``benchmarks/bench_p0_wallclock.py``; here we pin the report shape, the
per-tenant conservation invariant, and that the chaos sweep classifies
every seed.
"""

from repro.bench.perfsuite import (
    SCHEMA_VERSION,
    SERVE_MIXES,
    measure_multi_tenant_serving,
)


def test_schema_bumped_for_serving():
    assert SCHEMA_VERSION >= 9


class TestMultiTenantServing:
    def test_report_shape_and_conservation(self):
        r = measure_multi_tenant_serving(scale=0.1, mixes=("balanced",),
                                         chaos_seeds=(0,))
        assert set(r["mixes"]) == {"balanced"}
        sec = r["mixes"]["balanced"]
        assert sec["conservation_ok"]
        assert sec["simulated_requests"] > 0
        assert sec["requests_per_wall_sec"] > 0
        assert sec["dollars"] > 0
        for t in sec["tenants"].values():
            assert t["conservation_ok"] and t["inflight"] == 0
            assert t["submitted"] == (t["rejected"] + t["completed"]
                                      + t["failed"])
        chaos = r["chaos_sweep"]
        assert set(chaos["runs"]) == {"0"}
        run = chaos["runs"]["0"]
        assert run["conserved"] and run["injections"] > 0
        assert chaos["all_conserved"] is (run["conserved"] is True)
        assert chaos["max_p99_ratio_vs_clean"] == run["p99_ratio_vs_clean"]

    def test_all_mixes_defined(self):
        assert set(SERVE_MIXES) == {"balanced", "heavy_hitter",
                                    "bursty_mixed"}
