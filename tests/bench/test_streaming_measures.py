"""Smoke coverage for the schema-8 streaming measurements.

Tiny scales only — the full-scale numbers and guards live in
``benchmarks/bench_p0_wallclock.py``; here we pin the report shape, the
byte-identity invariant, and that the binary search lands a sane knee.
"""

from repro.bench.perfsuite import (
    SCHEMA_VERSION,
    measure_sustained_throughput,
    measure_windowed_aggregation,
)


def test_schema_bumped_for_streaming():
    assert SCHEMA_VERSION >= 8


class TestWindowedAggregation:
    def test_report_shape_and_identity(self):
        r = measure_windowed_aggregation(scale=0.05, reps=1)
        assert r["identical"]
        assert r["records"] > 0
        assert r["speedup"] > 0
        assert r["current"]["records_per_sec"] > 0
        assert r["baseline"]["seconds"] == r["scalar"]["seconds"]
        # the fast path must actually engage on this eligible stream
        assert r["current"]["fast_batches"] > 0
        assert r["current"]["fallback_batches"] == 0


class TestSustainedThroughput:
    def test_knee_found_and_conserved(self):
        r = measure_sustained_throughput(scale=0.05,
                                         scenarios=("uniform",),
                                         iterations=4)
        sec = r["scenarios"]["uniform"]
        assert 0 < sec["sustained_rate"] <= 2 * r["capacity_estimate"]
        assert sec["probes"]
        # knee is the highest *feasible* probe
        feas = [p["rate"] for p in sec["probes"] if p["feasible"]]
        assert sec["sustained_rate"] == max(feas)
        ov = sec["overload"]
        assert ov["offered_rate"] > sec["sustained_rate"]
        for leg in ("off", "on", "on_admission"):
            assert ov[leg]["conserved"], leg
        assert ov["on_admission"]["shed"] > 0
