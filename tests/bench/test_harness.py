"""Experiment harness: tables, series, sweeps."""

import pytest

from repro.bench import Series, Table, sweep


class TestTable:
    def test_render_alignment(self):
        t = Table("T0: demo", ["name", "value"])
        t.add_row(["a", 1.0])
        t.add_row(["longer", 123456.0])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "== T0: demo =="
        assert len({len(l) for l in lines[1:]}) == 1   # aligned

    def test_row_arity_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table("t", ["x"])
        t.add_row([0.000123])
        t.add_row([1234567.0])
        t.add_row([0.5])
        col = t.column("x")
        assert "e" in col[0] and "e" in col[1] and col[2] == "0.5"

    def test_column_accessor(self):
        t = Table("t", ["a", "b"])
        t.add_row([1, 2])
        t.add_row([3, 4])
        assert t.column("b") == ["2", "4"]

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_show_prints(self, capsys):
        t = Table("t", ["a"])
        t.add_row([1])
        t.show()
        assert "== t ==" in capsys.readouterr().out


class TestSeries:
    def test_add_and_render(self):
        s = Series("line")
        s.add(1, 2.0)
        s.add(2, 4.0)
        assert s.render() == "line: (1, 2)  (2, 4)"

    def test_show_prints(self, capsys):
        s = Series("x")
        s.add(0, 0)
        s.show()
        assert "x:" in capsys.readouterr().out


class TestSweep:
    def test_collects_results(self):
        out = sweep([1, 2, 3], lambda v: {"sq": v * v})
        assert [r["sq"] for r in out] == [1, 4, 9]
        assert [r["param"] for r in out] == [1, 2, 3]

    def test_param_not_overwritten(self):
        out = sweep([5], lambda v: {"param": "custom"})
        assert out[0]["param"] == "custom"
