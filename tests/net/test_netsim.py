"""Event-driven fluid network simulation behaviour."""

import pytest

from repro.common.units import Gbit_per_s, MB
from repro.net import NetworkSim, dumbbell, fat_tree, star
from repro.simcore import Simulator


def make(topo):
    sim = Simulator()
    return sim, NetworkSim(sim, topo)


class TestSingleFlows:
    def test_duration_matches_bandwidth(self):
        sim, net = make(dumbbell(1, 1, bottleneck_bw=Gbit_per_s(1)))
        ev = net.transfer("l0", "r0", MB(125))      # 1 Gbit-second
        stats = sim.run_until_done(ev)
        assert stats.duration == pytest.approx(1.0, rel=1e-3)

    def test_zero_bytes_latency_only(self):
        sim, net = make(star(2, latency=1e-3))
        ev = net.transfer("h0", "h1", 0)
        stats = sim.run_until_done(ev)
        assert stats.duration == pytest.approx(2e-3)

    def test_local_copy(self):
        sim, net = make(star(2))
        ev = net.transfer("h0", "h0", MB(125))
        stats = sim.run_until_done(ev)
        assert stats.duration == pytest.approx(MB(125) / net.local_copy_bw)

    def test_negative_size_rejected(self):
        sim, net = make(star(2))
        with pytest.raises(Exception):
            net.transfer("h0", "h1", -1)

    def test_rate_limit(self):
        sim, net = make(dumbbell(1, 1, bottleneck_bw=Gbit_per_s(10)))
        ev = net.transfer("l0", "r0", MB(125), limit=Gbit_per_s(1))
        stats = sim.run_until_done(ev)
        assert stats.duration == pytest.approx(1.0, rel=1e-3)


class TestSharing:
    def test_two_flows_half_rate(self):
        sim, net = make(dumbbell(2, 2, bottleneck_bw=Gbit_per_s(1)))
        e1 = net.transfer("l0", "r0", MB(125))
        e2 = net.transfer("l1", "r1", MB(125))
        sim.run()
        assert e1.value.duration == pytest.approx(2.0, rel=1e-3)
        assert e2.value.duration == pytest.approx(2.0, rel=1e-3)

    def test_staggered_arrival_rates_adjust(self):
        sim, net = make(dumbbell(2, 2, bottleneck_bw=Gbit_per_s(1)))
        e1 = net.transfer("l0", "r0", MB(125))
        log = {}

        def later(sim):
            yield sim.timeout(0.5)
            e2 = net.transfer("l1", "r1", MB(125))
            stats = yield e2
            log["b_end"] = sim.now
        sim.process(later(sim))
        sim.run()
        # flow A: 0.5s alone + 1.0s shared = 1.5; flow B: ends at 2.0
        assert e1.value.end == pytest.approx(1.5, rel=1e-3)
        assert log["b_end"] == pytest.approx(2.0, rel=1e-3)

    def test_host_uplink_is_bottleneck_in_star(self):
        sim, net = make(star(3, host_bw=Gbit_per_s(1)))
        # two flows into the same destination share its uplink
        e1 = net.transfer("h0", "h2", MB(125))
        e2 = net.transfer("h1", "h2", MB(125))
        sim.run()
        assert e1.value.duration == pytest.approx(2.0, rel=1e-3)

    def test_disjoint_flows_full_rate(self):
        sim, net = make(fat_tree(4))
        e1 = net.transfer("h0_0_0", "h0_0_1", MB(125))   # same edge switch
        e2 = net.transfer("h1_0_0", "h1_0_1", MB(125))
        sim.run()
        assert e1.value.duration == pytest.approx(0.1, rel=1e-2)
        assert e2.value.duration == pytest.approx(0.1, rel=1e-2)


class TestAccounting:
    def test_total_bytes(self):
        sim, net = make(star(3))
        net.transfer("h0", "h1", 1000)
        net.transfer("h1", "h2", 500)
        sim.run()
        assert net.total_bytes == pytest.approx(1500)

    def test_link_bytes_sum_to_path_lengths(self):
        sim, net = make(star(2))
        net.transfer("h0", "h1", 1000)
        sim.run()
        carried = sum(net.link_bytes.values())
        assert carried == pytest.approx(2 * 1000, rel=1e-6)   # two hops

    def test_n_transfers(self):
        sim, net = make(star(2))
        net.transfer("h0", "h1", 10)
        net.transfer("h0", "h0", 10)
        sim.run()
        assert net.n_transfers == 2

    def test_many_concurrent_flows_complete(self):
        sim, net = make(fat_tree(4))
        hosts = net.topo.hosts
        evs = []
        for i, src in enumerate(hosts):
            dst = hosts[(i + 7) % len(hosts)]
            evs.append(net.transfer(src, dst, MB(10)))
        sim.run()
        assert all(e.triggered and e.ok for e in evs)
        assert net.active_flows == 0
