"""Weighted (QoS) flow sharing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import Gbit_per_s, MB
from repro.net import NetworkSim, dumbbell
from repro.net.flows import FlowSpec, allocate_rates
from repro.simcore import Simulator


def lk(a, b):
    return frozenset((a, b))


class TestWeightedAllocation:
    def test_weights_split_bottleneck(self):
        caps = {lk("a", "b"): 12.0}
        flows = [FlowSpec(0, (lk("a", "b"),), weight=3.0),
                 FlowSpec(1, (lk("a", "b"),), weight=1.0)]
        rates = allocate_rates(flows, caps)
        assert rates[0] == pytest.approx(9.0)
        assert rates[1] == pytest.approx(3.0)

    def test_weight_with_limit(self):
        caps = {lk("a", "b"): 12.0}
        flows = [FlowSpec(0, (lk("a", "b"),), weight=3.0, limit=4.0),
                 FlowSpec(1, (lk("a", "b"),), weight=1.0)]
        rates = allocate_rates(flows, caps)
        assert rates[0] == pytest.approx(4.0)
        assert rates[1] == pytest.approx(8.0)   # leftover flows to the other

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            allocate_rates([FlowSpec(0, (lk("a", "b"),), weight=0.0)],
                           {lk("a", "b"): 1.0})

    @given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_single_link_shares_proportional(self, weights):
        caps = {lk("a", "b"): 100.0}
        flows = [FlowSpec(i, (lk("a", "b"),), weight=w)
                 for i, w in enumerate(weights)]
        rates = allocate_rates(flows, caps)
        total_w = sum(weights)
        for i, w in enumerate(weights):
            assert rates[i] == pytest.approx(100.0 * w / total_w, rel=1e-6)

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_feasibility_preserved(self, weights):
        caps = {lk("a", "b"): 50.0, lk("b", "c"): 30.0}
        flows = [FlowSpec(i, (lk("a", "b"), lk("b", "c")), weight=w)
                 for i, w in enumerate(weights)]
        rates = allocate_rates(flows, caps)
        assert sum(rates.values()) <= 30.0 + 1e-6


class TestWeightedTransfers:
    def test_priority_flow_finishes_first(self):
        topo = dumbbell(2, 2, bottleneck_bw=Gbit_per_s(1))
        sim = Simulator()
        net = NetworkSim(sim, topo)
        hi = net.transfer("l0", "r0", MB(125), weight=3.0)
        lo = net.transfer("l1", "r1", MB(125), weight=1.0)
        sim.run()
        # hi at 0.75 Gbit/s -> 4/3 s; lo then gets the full link -> 2.0 s
        assert hi.value.end == pytest.approx(4 / 3, rel=1e-3)
        assert lo.value.end == pytest.approx(2.0, rel=1e-3)

    def test_equal_weights_unchanged_behaviour(self):
        topo = dumbbell(2, 2, bottleneck_bw=Gbit_per_s(1))
        sim = Simulator()
        net = NetworkSim(sim, topo)
        a = net.transfer("l0", "r0", MB(125), weight=2.0)
        b = net.transfer("l1", "r1", MB(125), weight=2.0)
        sim.run()
        assert a.value.duration == pytest.approx(2.0, rel=1e-3)
        assert b.value.duration == pytest.approx(2.0, rel=1e-3)

    def test_invalid_weight(self):
        topo = dumbbell(1, 1)
        net = NetworkSim(Simulator(), topo)
        with pytest.raises(Exception):
            net.transfer("l0", "r0", 100, weight=0)
