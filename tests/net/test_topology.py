"""Topology construction, routing, and the standard fabric builders."""

import pytest

from repro.common.errors import RoutingError
from repro.common.units import Gbit_per_s
from repro.net import Topology, dumbbell, fat_tree, leaf_spine, star, torus_2d


class TestTopologyBasics:
    def test_duplicate_node_rejected(self):
        t = Topology()
        t.add_host("a")
        with pytest.raises(ValueError):
            t.add_host("a")

    def test_link_requires_nodes(self):
        t = Topology()
        t.add_host("a")
        with pytest.raises(ValueError):
            t.add_link("a", "b", 1.0)

    def test_self_link_rejected(self):
        t = Topology()
        t.add_host("a")
        with pytest.raises(ValueError):
            t.add_link("a", "a", 1.0)

    def test_duplicate_link_rejected(self):
        t = Topology()
        t.add_host("a")
        t.add_host("b")
        t.add_link("a", "b", 1.0)
        with pytest.raises(ValueError):
            t.add_link("b", "a", 1.0)

    def test_bad_capacity(self):
        t = Topology()
        t.add_host("a")
        t.add_host("b")
        with pytest.raises(ValueError):
            t.add_link("a", "b", 0.0)

    def test_no_route_raises(self):
        t = Topology()
        t.add_host("a")
        t.add_host("b")
        with pytest.raises(RoutingError):
            t.path("a", "b")

    def test_path_to_self_empty(self):
        t = star(2)
        assert t.path("h0", "h0") == []
        assert t.hop_count("h0", "h0") == 0


class TestRouting:
    def test_star_two_hops(self):
        t = star(4)
        p = t.path("h0", "h3")
        assert len(p) == 2
        assert t.hop_count("h0", "h3") == 2

    def test_path_is_connected_chain(self):
        t = fat_tree(4)
        src, dst = "h0_0_0", "h3_1_1"
        path = t.path(src, dst)
        cur = src
        for link in path:
            assert cur in (link.u, link.v)
            cur = link.v if cur == link.u else link.u
        assert cur == dst

    def test_ecmp_deterministic_per_flow(self):
        t = fat_tree(4)
        p1 = t.path("h0_0_0", "h1_0_0", flow_id=7)
        p2 = t.path("h0_0_0", "h1_0_0", flow_id=7)
        assert [l.key for l in p1] == [l.key for l in p2]

    def test_ecmp_spreads_flows(self):
        t = fat_tree(4)
        paths = {tuple(sorted(tuple(l.key) for l in
                             t.path("h0_0_0", "h1_0_0", flow_id=i)))
                 for i in range(64)}
        assert len(paths) > 1   # multiple equal-cost paths used

    def test_path_latency(self):
        t = star(2, latency=1e-3)
        assert t.path_latency(t.path("h0", "h1")) == pytest.approx(2e-3)


class TestBuilders:
    def test_star_shape(self):
        t = star(5)
        assert len(t.hosts) == 5 and len(t.switches) == 1
        assert len(t.links) == 5

    def test_dumbbell_shape(self):
        t = dumbbell(3, 2)
        assert len(t.hosts) == 5 and len(t.switches) == 2
        assert len(t.links) == 6

    def test_leaf_spine_shape(self):
        t = leaf_spine(4, 2, 8)
        assert len(t.hosts) == 32
        assert len(t.switches) == 6
        assert len(t.links) == 4 * 2 + 32

    def test_fat_tree_counts(self):
        # k-ary fat tree: k^3/4 hosts, 5k^2/4 switches
        for k in (2, 4, 6):
            t = fat_tree(k)
            assert len(t.hosts) == k ** 3 // 4
            assert len(t.switches) == 5 * k * k // 4

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_fat_tree_all_pairs_connected(self):
        t = fat_tree(4)
        hosts = t.hosts
        for dst in hosts[:4]:
            for src in hosts[-4:]:
                assert t.hop_count(src, dst) <= 6

    def test_torus_shape(self):
        t = torus_2d(3, 4)
        assert len(t.hosts) == 12
        assert len(t.links) == 2 * 12   # 2D torus: 2 links per node

    def test_torus_wraparound(self):
        t = torus_2d(4, 4)
        # opposite corners are 2+2 hops via wraparound, not 3+3
        assert t.hop_count("t0_0", "t3_3") == 2

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            torus_2d(1, 5)
