"""Max-min fair flow allocation over links: cases + invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flows import FlowSpec, allocate_rates


def lk(a, b):
    return frozenset((a, b))


class TestExactAllocations:
    def test_single_flow_full_link(self):
        rates = allocate_rates([FlowSpec(0, (lk("a", "b"),))],
                               {lk("a", "b"): 10.0})
        assert rates[0] == pytest.approx(10.0)

    def test_two_flows_share_bottleneck(self):
        caps = {lk("a", "b"): 10.0}
        flows = [FlowSpec(i, (lk("a", "b"),)) for i in range(2)]
        rates = allocate_rates(flows, caps)
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)

    def test_classic_two_link_chain(self):
        # f0 crosses both links; f1 only L1; f2 only L2. caps 10 each.
        caps = {lk("a", "b"): 10.0, lk("b", "c"): 10.0}
        flows = [
            FlowSpec("f0", (lk("a", "b"), lk("b", "c"))),
            FlowSpec("f1", (lk("a", "b"),)),
            FlowSpec("f2", (lk("b", "c"),)),
        ]
        rates = allocate_rates(flows, caps)
        assert rates["f0"] == pytest.approx(5.0)
        assert rates["f1"] == pytest.approx(5.0)
        assert rates["f2"] == pytest.approx(5.0)

    def test_asymmetric_bottlenecks(self):
        # L1 cap 2 shared by f0, f1; L2 cap 10 used by f0 and f2.
        caps = {lk("a", "b"): 2.0, lk("b", "c"): 10.0}
        flows = [
            FlowSpec("f0", (lk("a", "b"), lk("b", "c"))),
            FlowSpec("f1", (lk("a", "b"),)),
            FlowSpec("f2", (lk("b", "c"),)),
        ]
        rates = allocate_rates(flows, caps)
        assert rates["f0"] == pytest.approx(1.0)
        assert rates["f1"] == pytest.approx(1.0)
        assert rates["f2"] == pytest.approx(9.0)

    def test_limit_respected_and_redistributed(self):
        caps = {lk("a", "b"): 10.0}
        flows = [FlowSpec(0, (lk("a", "b"),), limit=2.0),
                 FlowSpec(1, (lk("a", "b"),))]
        rates = allocate_rates(flows, caps)
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_empty_path_gets_limit(self):
        rates = allocate_rates([FlowSpec(0, (), limit=3.0)], {})
        assert rates[0] == 3.0

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            allocate_rates([FlowSpec(0, (lk("x", "y"),))], {})


@st.composite
def random_network(draw):
    n_links = draw(st.integers(1, 6))
    links = [lk(f"n{i}", f"n{i+1}") for i in range(n_links)]
    caps = {l: draw(st.floats(0.5, 100)) for l in links}
    n_flows = draw(st.integers(1, 8))
    flows = []
    for f in range(n_flows):
        a = draw(st.integers(0, n_links - 1))
        b = draw(st.integers(a, n_links - 1))
        flows.append(FlowSpec(f, tuple(links[a:b + 1])))
    return flows, caps


class TestInvariants:
    @given(random_network())
    @settings(max_examples=150, deadline=None)
    def test_feasibility(self, net):
        flows, caps = net
        rates = allocate_rates(flows, caps)
        for link, cap in caps.items():
            used = sum(rates[f.flow_id] for f in flows if link in f.links)
            assert used <= cap + 1e-6

    @given(random_network())
    @settings(max_examples=150, deadline=None)
    def test_every_flow_bottlenecked(self, net):
        """Each flow is either at its limit or saturates some link."""
        flows, caps = net
        rates = allocate_rates(flows, caps)
        for f in flows:
            if rates[f.flow_id] >= f.limit - 1e-9:
                continue
            saturated = False
            for link in f.links:
                used = sum(rates[g.flow_id] for g in flows
                           if link in g.links)
                if used >= caps[link] - 1e-6:
                    saturated = True
                    break
            assert saturated, f"flow {f.flow_id} has slack everywhere"

    @given(random_network())
    @settings(max_examples=100, deadline=None)
    def test_positive_rates(self, net):
        flows, caps = net
        rates = allocate_rates(flows, caps)
        for f in flows:
            assert rates[f.flow_id] > 0
