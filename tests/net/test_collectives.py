"""Collective communication: correctness of schedules and cost shapes."""

import math

import pytest

from repro.common.errors import NetworkError
from repro.common.units import Gbit_per_s, KB, MB, us
from repro.net import (
    NetworkSim,
    naive_allreduce,
    ring_allreduce,
    ring_allreduce_model,
    star,
    tree_allreduce,
    tree_allreduce_model,
)
from repro.simcore import Simulator


def run(algo, nbytes, n=8, latency=us(50), bw=Gbit_per_s(10)):
    topo = star(n, host_bw=bw, latency=latency)
    sim = Simulator()
    net = NetworkSim(sim, topo)
    ev = algo(net, topo.hosts, nbytes)
    return sim.run_until_done(ev)


class TestWireVolume:
    def test_ring_volume(self):
        r = run(ring_allreduce, MB(8), n=8)
        # 2(n-1) steps x n ranks x (payload/n) per chunk
        assert r.bytes_on_wire == pytest.approx(2 * 7 * MB(8), rel=1e-6)

    def test_tree_volume_power_of_two(self):
        r = run(tree_allreduce, MB(8), n=8)
        # (n-1) sends each way for a full binomial tree
        assert r.bytes_on_wire == pytest.approx(2 * 7 * MB(8), rel=1e-6)

    def test_naive_volume_quadratic(self):
        r = run(naive_allreduce, MB(1), n=8)
        assert r.bytes_on_wire == pytest.approx(8 * 7 * MB(1), rel=1e-6)


class TestShapes:
    def test_tree_wins_small_messages(self):
        ring = run(ring_allreduce, KB(4))
        tree = run(tree_allreduce, KB(4))
        assert tree.duration < ring.duration

    def test_ring_wins_large_messages(self):
        ring = run(ring_allreduce, MB(16))
        tree = run(tree_allreduce, MB(16))
        assert ring.duration < tree.duration

    def test_naive_worst_at_scale(self):
        naive = run(naive_allreduce, MB(4))
        ring = run(ring_allreduce, MB(4))
        assert naive.duration > ring.duration

    def test_latency_dominates_ring_at_tiny_sizes(self):
        fast = run(ring_allreduce, KB(1), latency=us(1))
        slow = run(ring_allreduce, KB(1), latency=us(500))
        assert slow.duration > 5 * fast.duration


class TestModels:
    def test_tree_model_matches_sim(self):
        # star with shared-capacity links: each round is payload at full bw
        # plus two link latencies per hop
        n, size, bw = 8, MB(16), Gbit_per_s(10)
        sim = run(tree_allreduce, size, n=n, latency=us(5), bw=bw)
        model = tree_allreduce_model(n, size, bw, latency=2 * us(5))
        assert sim.duration == pytest.approx(model, rel=0.05)

    def test_ring_model_shape(self):
        # model scales ~linearly in payload for big messages
        a = ring_allreduce_model(8, MB(8), Gbit_per_s(10))
        b = ring_allreduce_model(8, MB(16), Gbit_per_s(10))
        assert b == pytest.approx(2 * a, rel=1e-6)

    def test_models_cross(self):
        bw, lat = Gbit_per_s(10), 2 * us(50)
        small_ring = ring_allreduce_model(8, KB(4), bw, lat)
        small_tree = tree_allreduce_model(8, KB(4), bw, lat)
        big_ring = ring_allreduce_model(8, MB(64), bw, lat)
        big_tree = tree_allreduce_model(8, MB(64), bw, lat)
        assert small_tree < small_ring
        assert big_ring < big_tree


class TestValidation:
    def test_need_two_ranks(self):
        topo = star(2)
        sim = Simulator()
        net = NetworkSim(sim, topo)
        with pytest.raises(NetworkError):
            ring_allreduce(net, ["h0"], 100)

    def test_positive_payload(self):
        topo = star(2)
        sim = Simulator()
        net = NetworkSim(sim, topo)
        with pytest.raises(NetworkError):
            tree_allreduce(net, topo.hosts, 0)

    def test_non_power_of_two_ranks(self):
        r = run(tree_allreduce, MB(1), n=6)
        assert r.duration > 0
        r2 = run(ring_allreduce, MB(1), n=6)
        assert r2.bytes_on_wire == pytest.approx(2 * 5 * MB(1), rel=1e-6)
