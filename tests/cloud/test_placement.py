"""VM/host model and bin-packing placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CloudError, PlacementError
from repro.cloud import (
    Host,
    HostSpec,
    VM,
    VMSpec,
    best_fit,
    first_fit,
    lower_bound_hosts,
    place_offline,
    place_online,
    worst_fit,
)


class TestHostModel:
    def test_place_and_remove(self):
        h = Host("h", HostSpec(8, 16))
        vm = VM(0, VMSpec(2, 4))
        h.place(vm)
        assert vm.host == "h" and h.used_cpus == 2 and h.used_mem == 4
        h.remove(vm)
        assert vm.host is None and h.empty

    def test_overflow_rejected(self):
        h = Host("h", HostSpec(4, 8))
        h.place(VM(0, VMSpec(3, 4)))
        with pytest.raises(PlacementError):
            h.place(VM(1, VMSpec(2, 2)))

    def test_remove_foreign_vm(self):
        h = Host("h", HostSpec(4, 8))
        with pytest.raises(CloudError):
            h.remove(VM(9, VMSpec(1, 1)))

    def test_utilization_binding_dimension(self):
        h = Host("h", HostSpec(10, 100))
        h.place(VM(0, VMSpec(5, 10)))
        assert h.utilization() == pytest.approx(0.5)   # cpu binds

    def test_invalid_specs(self):
        with pytest.raises(CloudError):
            VMSpec(0, 1)
        with pytest.raises(CloudError):
            HostSpec(0, 1)


class TestStrategies:
    def test_first_fit_picks_earliest(self):
        hosts = [Host("a", HostSpec(4, 8)), Host("b", HostSpec(4, 8))]
        hosts[0].place(VM(0, VMSpec(3, 1)))
        assert first_fit(hosts, VMSpec(2, 2)) is hosts[1]
        assert first_fit(hosts, VMSpec(1, 1)) is hosts[0]

    def test_best_fit_picks_tightest(self):
        hosts = [Host("a", HostSpec(4, 8)), Host("b", HostSpec(4, 8))]
        hosts[0].place(VM(0, VMSpec(2, 4)))
        assert best_fit(hosts, VMSpec(1, 1)) is hosts[0]

    def test_worst_fit_picks_loosest(self):
        hosts = [Host("a", HostSpec(4, 8)), Host("b", HostSpec(4, 8))]
        hosts[0].place(VM(0, VMSpec(2, 4)))
        assert worst_fit(hosts, VMSpec(1, 1)) is hosts[1]

    def test_none_when_nothing_fits(self):
        hosts = [Host("a", HostSpec(2, 2))]
        hosts[0].place(VM(0, VMSpec(2, 2)))
        assert first_fit(hosts, VMSpec(1, 1)) is None


class TestPacking:
    def test_exact_pack(self):
        specs = [VMSpec(2, 4)] * 16     # 4 per host exactly
        res = place_online(specs, HostSpec(8, 16), "first_fit")
        assert res.hosts_used == 4
        assert res.fragmentation() == pytest.approx(0.0)

    def test_oversize_vm_rejected(self):
        with pytest.raises(PlacementError):
            place_online([VMSpec(64, 1)], HostSpec(32, 128))

    def test_unknown_strategy(self):
        with pytest.raises(PlacementError):
            place_online([VMSpec(1, 1)], HostSpec(8, 8), "psychic")

    def test_offline_preserves_vm_ids(self):
        specs = [VMSpec(1, 1, f"vm{i}") for i in range(5)]
        res = place_offline(specs, HostSpec(8, 8))
        assert sorted(vm.vm_id for vm in res.vms) == [0, 1, 2, 3, 4]

    def test_ffd_not_worse_than_ff_on_adversarial_mix(self):
        rng = np.random.default_rng(7)
        specs = [VMSpec(float(rng.choice([1, 2, 5, 7])),
                        float(rng.choice([1, 4, 14]))) for _ in range(300)]
        hs = HostSpec(8, 16)
        ff = place_online(specs, hs, "first_fit").hosts_used
        ffd = place_offline(specs, hs, "first_fit").hosts_used
        assert ffd <= ff

    def test_lower_bound_is_a_bound(self):
        rng = np.random.default_rng(3)
        specs = [VMSpec(float(rng.integers(1, 8)),
                        float(rng.integers(1, 16))) for _ in range(150)]
        hs = HostSpec(16, 48)
        lb = lower_bound_hosts(specs, hs)
        for strat in ["first_fit", "best_fit", "worst_fit"]:
            assert place_online(specs, hs, strat).hosts_used >= lb

    def test_ffd_within_classic_ratio(self):
        """FFD uses at most ~11/9 OPT + 1; test against the LP bound."""
        rng = np.random.default_rng(11)
        specs = [VMSpec(float(rng.uniform(0.5, 8)), 1.0)
                 for _ in range(400)]
        hs = HostSpec(8, 1000)     # effectively 1-D packing on cpus
        lb = lower_bound_hosts(specs, hs)
        used = place_offline(specs, hs, "first_fit").hosts_used
        assert used <= np.ceil(11 / 9 * lb) + 1

    def test_lower_bound_empty(self):
        assert lower_bound_hosts([], HostSpec()) == 0

    @given(st.lists(st.tuples(st.floats(0.5, 8), st.floats(0.5, 16)),
                    min_size=1, max_size=60),
           st.sampled_from(["first_fit", "best_fit", "worst_fit"]))
    @settings(max_examples=50, deadline=None)
    def test_all_vms_placed_and_capacity_respected(self, shapes, strat):
        specs = [VMSpec(c, m) for c, m in shapes]
        hs = HostSpec(8, 16)
        res = place_online(specs, hs, strat)
        assert all(vm.placed for vm in res.vms)
        for h in res.hosts:
            assert h.used_cpus <= hs.cpus + 1e-9
            assert h.used_mem <= hs.mem + 1e-9
