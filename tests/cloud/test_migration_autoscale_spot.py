"""Live migration models, autoscaling simulation, spot market."""

import numpy as np
import pytest

from repro.common.errors import CloudError, MigrationError
from repro.common.units import GiB, Gbit_per_s, MiB
from repro.cloud import (
    PredictivePolicy,
    SpotPriceModel,
    StaticPolicy,
    ThresholdPolicy,
    post_copy,
    pre_copy,
    run_spot_job,
    simulate_pre_copy,
    stop_and_copy,
)
from repro.cloud.autoscale import simulate_autoscaling
from repro.net import NetworkSim, dumbbell
from repro.simcore import Simulator

B = Gbit_per_s(10)
M = GiB(8)


class TestStopAndCopy:
    def test_downtime_equals_total(self):
        r = stop_and_copy(M, B)
        assert r.downtime == r.total_time == pytest.approx(M / B)
        assert r.transferred_bytes == M

    def test_validation(self):
        with pytest.raises(MigrationError):
            stop_and_copy(0, B)
        with pytest.raises(MigrationError):
            stop_and_copy(M, 0)


class TestPreCopy:
    def test_zero_dirty_one_round(self):
        r = pre_copy(M, B, 0.0)
        assert r.rounds == 1
        assert r.downtime == pytest.approx(0.0, abs=1e-9)
        assert r.total_time == pytest.approx(M / B)

    def test_downtime_far_below_stop_and_copy(self):
        r = pre_copy(M, B, 0.3 * B)
        sc = stop_and_copy(M, B)
        assert r.downtime < sc.downtime / 20

    def test_transferred_grows_with_dirty_rate(self):
        low = pre_copy(M, B, 0.1 * B)
        high = pre_copy(M, B, 0.8 * B)
        assert high.transferred_bytes > low.transferred_bytes
        assert high.total_time > low.total_time

    def test_divergence_when_dirty_exceeds_bandwidth(self):
        r = pre_copy(M, B, 1.5 * B)
        # cannot converge: downtime comparable to stop-and-copy
        assert r.downtime >= 0.5 * (M / B)

    def test_geometric_series_total_time(self):
        # with ratio r = D/B, total bytes ~ M * 1/(1 - r)
        ratio = 0.5
        r = pre_copy(M, B, ratio * B, stop_threshold_bytes=1.0)
        expected = M / B / (1 - ratio)
        assert r.total_time == pytest.approx(expected, rel=0.05)

    def test_validation(self):
        with pytest.raises(MigrationError):
            pre_copy(M, B, -1)
        with pytest.raises(MigrationError):
            pre_copy(M, B, 1, max_rounds=0)


class TestPostCopy:
    def test_constant_downtime(self):
        a = post_copy(GiB(4), B)
        b = post_copy(GiB(64), B)
        assert a.downtime == pytest.approx(b.downtime)

    def test_degraded_period_scales_with_memory(self):
        a = post_copy(GiB(4), B)
        b = post_copy(GiB(8), B)
        assert b.degraded_time == pytest.approx(2 * a.degraded_time)

    def test_fault_overhead_validation(self):
        with pytest.raises(MigrationError):
            post_copy(M, B, fault_overhead=0.5)


class TestSimulatedPreCopy:
    def test_matches_analytic_on_idle_network(self):
        topo = dumbbell(1, 1, bottleneck_bw=Gbit_per_s(1))
        sim = Simulator()
        net = NetworkSim(sim, topo)
        mem = GiB(1)
        dirty = 0.3 * Gbit_per_s(1)
        r = sim.run_until_done(simulate_pre_copy(net, "l0", "r0", mem, dirty))
        a = pre_copy(mem, Gbit_per_s(1), dirty)
        assert r.total_time == pytest.approx(a.total_time, rel=0.05)
        assert r.rounds == a.rounds

    def test_contention_stretches_migration(self):
        def run(with_noise):
            topo = dumbbell(2, 2, bottleneck_bw=Gbit_per_s(1))
            sim = Simulator()
            net = NetworkSim(sim, topo)
            if with_noise:
                # long-lived competing flow
                net.transfer("l1", "r1", GiB(10))
            ev = simulate_pre_copy(net, "l0", "r0", GiB(1),
                                   0.2 * Gbit_per_s(1))
            return sim.run_until_done(ev).total_time
        assert run(True) > run(False) * 1.5


class TestAutoscaling:
    def make_load(self):
        t = np.arange(0, 1800, 1.0)
        return 50 + 40 * np.sin(2 * np.pi * t / 900)

    def test_overprovision_low_violations(self):
        r = simulate_autoscaling(StaticPolicy(30), self.make_load(), mu=10,
                                 slo_threshold=0.5)
        assert r.slo_violation_frac < 0.05
        assert r.mean_instances == pytest.approx(30)

    def test_underprovision_high_violations(self):
        r = simulate_autoscaling(StaticPolicy(5), self.make_load(), mu=10,
                                 slo_threshold=0.5)
        assert r.slo_violation_frac > 0.3

    def test_threshold_scales_out_under_load(self):
        r = simulate_autoscaling(ThresholdPolicy(high=0.7, low=0.3),
                                 self.make_load(), mu=10,
                                 initial_instances=2, slo_threshold=0.5)
        assert r.instances.max() > 2

    def test_predictive_beats_threshold_under_bursty_load(self):
        # the F7 premise: on a traffic spike, forecasting + backlog-aware
        # provisioning yields fewer violations at no more cost
        t = np.arange(0, 3600, 1.0)
        load = 30 + (t > 1200) * (t < 1800) * 120
        thr = simulate_autoscaling(ThresholdPolicy(), load, mu=10,
                                   initial_instances=5, slo_threshold=0.5)
        pred = simulate_autoscaling(PredictivePolicy(mu=10), load, mu=10,
                                    initial_instances=5, slo_threshold=0.5)
        assert pred.slo_violation_frac < thr.slo_violation_frac
        assert pred.mean_instances <= thr.mean_instances * 1.1

    def test_bounds_respected(self):
        r = simulate_autoscaling(ThresholdPolicy(), self.make_load(), mu=10,
                                 min_instances=3, max_instances=6,
                                 initial_instances=3)
        assert r.instances.min() >= 3 and r.instances.max() <= 6

    def test_boot_delay_billed(self):
        load = np.full(600, 100.0)
        r = simulate_autoscaling(ThresholdPolicy(), load, mu=10,
                                 initial_instances=1, boot_delay=120)
        assert r.instance_seconds > 0

    def test_scale_in_cancels_queued_boots(self):
        # a 30 s burst queues 8 boots with a 300 s boot delay; when the
        # load vanishes the very next control tick must cancel the queued
        # boots instead of letting the fleet overshoot to 10 at t=300
        load = np.concatenate([np.full(30, 200.0), np.zeros(570)])
        r = simulate_autoscaling(ThresholdPolicy(high=0.7, low=0.3, step=8),
                                 load, mu=10, control_period=30,
                                 boot_delay=300, cooldown=0.0,
                                 initial_instances=2)
        assert r.instances[0] == 10           # burst queued the boots
        assert r.instances[31:].max() <= 2    # ...and scale-in trimmed them

    def test_scale_in_trims_boots_before_live_instances(self):
        # want = 5 lies between current (2) and pending (10): the decision
        # must cancel exactly 5 queued boots and leave live instances alone
        class ScriptedPolicy(StaticPolicy):
            def __init__(self, script):
                super().__init__(1)
                self.script = script

            def desired(self, t, offered, utilization, current, queue=0.0):
                return self.script.get(t, current)

        load = np.zeros(600)
        r = simulate_autoscaling(ScriptedPolicy({0.0: 10, 30.0: 5}),
                                 load, mu=10, control_period=30,
                                 boot_delay=300, cooldown=0.0,
                                 initial_instances=2)
        assert r.instances[0] == 10             # 2 live + 8 booting
        assert r.instances[30] == 5             # 2 live + 3 booting kept
        assert r.instances[299] == 5
        assert r.instances[301] == 5            # 5 live after activation

    def test_validation(self):
        with pytest.raises(CloudError):
            simulate_autoscaling(StaticPolicy(1), [1.0], mu=0)
        with pytest.raises(CloudError):
            StaticPolicy(0)
        with pytest.raises(CloudError):
            ThresholdPolicy(high=0.2, low=0.5)


class TestSpot:
    def test_price_trace_deterministic_and_bounded(self):
        m = SpotPriceModel(seed=5)
        p1, p2 = m.trace(3600), SpotPriceModel(seed=5).trace(3600)
        assert np.array_equal(p1, p2)
        assert p1.min() >= m.floor and p1.max() <= m.cap

    def test_bid_above_cap_never_preempted(self):
        m = SpotPriceModel(seed=1)
        prices = m.trace(24 * 3600)
        r = run_spot_job(4 * 3600, bid=2.0, prices=prices)
        assert r.preemptions == 0
        assert r.completion_time == pytest.approx(4 * 3600, rel=0.01)

    def test_low_bid_preempts_and_wastes(self):
        m = SpotPriceModel(mean=0.5, sigma=0.15, seed=3)
        prices = m.trace(48 * 3600)
        no_ck = run_spot_job(6 * 3600, bid=0.5, prices=prices)
        assert no_ck.preemptions > 0
        assert no_ck.wasted_work > 0

    def test_checkpointing_reduces_wasted_work(self):
        m = SpotPriceModel(mean=0.5, sigma=0.15, seed=3)
        prices = m.trace(72 * 3600)
        no_ck = run_spot_job(6 * 3600, bid=0.5, prices=prices)
        ck = run_spot_job(6 * 3600, bid=0.5, prices=prices,
                          checkpoint_interval=900)
        assert ck.wasted_work < no_ck.wasted_work

    def test_spot_cheaper_than_on_demand(self):
        m = SpotPriceModel(mean=0.25, seed=2)
        prices = m.trace(24 * 3600)
        r = run_spot_job(4 * 3600, bid=0.6, prices=prices,
                         on_demand_price=0.5)
        assert 0 < r.savings <= 1

    def test_unfinished_job_inf_time(self):
        m = SpotPriceModel(mean=0.5, floor=0.4, seed=0)
        prices = m.trace(3600)
        r = run_spot_job(100 * 3600, bid=0.45, prices=prices)
        assert r.completion_time == float("inf")

    def test_validation(self):
        with pytest.raises(CloudError):
            run_spot_job(0, 1.0, np.array([0.1]))
        with pytest.raises(CloudError):
            run_spot_job(10, 0, np.array([0.1]))
        with pytest.raises(CloudError):
            SpotPriceModel(mean=0.01, floor=0.05)
