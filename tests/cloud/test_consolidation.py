"""VM consolidation: host draining, correctness, cost accounting."""

import numpy as np
import pytest

from repro.cloud import (
    ConsolidationResult,
    Host,
    HostSpec,
    VM,
    VMSpec,
    consolidate,
    place_online,
)


def fragmented_fleet():
    """Eight hosts each deliberately left one-quarter full."""
    hosts = [Host(f"h{i}", HostSpec(16, 64)) for i in range(8)]
    vid = 0
    for h in hosts:
        h.place(VM(vid, VMSpec(4, 16)))
        vid += 1
    return hosts


class TestConsolidation:
    def test_frees_hosts(self):
        hosts = fragmented_fleet()
        res = consolidate(hosts)
        assert res.hosts_before == 8
        assert res.hosts_after == 2     # 8 quarter-VMs fit on 2 hosts
        assert res.hosts_freed == 6
        assert res.energy_saving_frac == pytest.approx(0.75)

    def test_no_capacity_violated(self):
        hosts = fragmented_fleet()
        consolidate(hosts)
        for h in hosts:
            assert h.used_cpus <= h.spec.cpus + 1e-9
            assert h.used_mem <= h.spec.mem + 1e-9

    def test_all_vms_still_placed(self):
        hosts = fragmented_fleet()
        consolidate(hosts)
        placed = sum(len(h.vms) for h in hosts)
        assert placed == 8

    def test_plan_records_moves(self):
        hosts = fragmented_fleet()
        res = consolidate(hosts)
        assert len(res.plan) == res.migrations == 6
        for vm_id, src, dst in res.plan:
            assert src != dst

    def test_full_fleet_nothing_to_do(self):
        hosts = [Host(f"h{i}", HostSpec(8, 32)) for i in range(2)]
        vid = 0
        for h in hosts:
            for _ in range(2):
                h.place(VM(vid, VMSpec(4, 16)))
                vid += 1
        res = consolidate(hosts)
        assert res.migrations == 0
        assert res.hosts_freed == 0

    def test_unmovable_vm_skips_host(self):
        hosts = [Host("a", HostSpec(8, 32)), Host("b", HostSpec(8, 32))]
        hosts[0].place(VM(0, VMSpec(6, 24)))   # won't fit beside b's VM
        hosts[1].place(VM(1, VMSpec(6, 24)))
        res = consolidate(hosts)
        assert res.migrations == 0
        assert res.hosts_after == 2

    def test_migration_cost_scales_with_moved_memory(self):
        hosts = fragmented_fleet()
        res = consolidate(hosts, mem_bytes_per_unit=1 << 30,
                          bandwidth=1.25e9)
        assert res.moved_mem == pytest.approx(6 * 16)
        # 16 GiB over 1.25 GB/s ~ 13.7 s per VM, 6 VMs
        assert res.migration_time == pytest.approx(6 * 16 * (1 << 30) /
                                                   1.25e9, rel=0.01)

    def test_dirty_rate_inflates_migration_time(self):
        quiet = consolidate(fragmented_fleet(), dirty_rate=0.0)
        busy = consolidate(fragmented_fleet(), dirty_rate=0.5 * 1.25e9)
        assert busy.migration_time > 1.5 * quiet.migration_time

    def test_idempotent(self):
        hosts = fragmented_fleet()
        consolidate(hosts)
        res2 = consolidate(hosts)
        assert res2.migrations == 0

    def test_validation(self):
        with pytest.raises(Exception):
            consolidate([], max_passes=0)


class TestRealisticMix:
    def test_packing_after_churn(self):
        """Place a mix, remove half the VMs (churn), consolidate."""
        rng = np.random.default_rng(4)
        specs = [VMSpec(float(rng.choice([1, 2, 4])),
                        float(rng.choice([4, 8, 16]))) for _ in range(120)]
        res = place_online(specs, HostSpec(16, 64), "first_fit")
        hosts, vms = res.hosts, res.vms
        for vm in vms[::2]:
            hosts_by_name = {h.name: h for h in hosts}
            hosts_by_name[vm.host].remove(vm)
        before = sum(1 for h in hosts if not h.empty)
        cres = consolidate(hosts)
        assert cres.hosts_after < before
        # capacity never violated
        for h in hosts:
            assert h.used_cpus <= h.spec.cpus + 1e-9
            assert h.used_mem <= h.spec.mem + 1e-9
