"""BreakerGatedPolicy: flap detection holds decisions, calm streams pass."""

import numpy as np

from repro.cloud.autoscale import (
    BreakerGatedPolicy,
    ThresholdPolicy,
    simulate_autoscaling,
)
from repro.resilience import BreakerConfig, CircuitBreaker


class _FlappyPolicy:
    """Alternates scale-out / scale-in every call: worst-case flapping."""

    name = "flappy"

    def __init__(self):
        self._dir = 1

    def desired(self, t, offered, utilization, current, queue=0.0):
        self._dir = -self._dir
        return max(1, current + self._dir)


class _SteadyUpPolicy:
    name = "steady-up"

    def desired(self, t, offered, utilization, current, queue=0.0):
        return current + 1


class TestBreakerGatedPolicy:
    def test_passes_through_steady_decisions(self):
        pol = BreakerGatedPolicy(_SteadyUpPolicy(), flap_window=120.0)
        n = 4
        for t in (0.0, 30.0, 60.0, 90.0):
            n = pol.desired(t, 100.0, 0.9, n)
        assert n == 8
        assert pol.held_decisions == 0

    def test_flapping_opens_breaker_and_holds_fleet(self):
        pol = BreakerGatedPolicy(
            _FlappyPolicy(),
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=2,
                                                 recovery_time=300.0)),
            flap_window=120.0)
        current = 10
        decisions = [pol.desired(t, 100.0, 0.9, current)
                     for t in np.arange(0.0, 300.0, 30.0)]
        assert pol.held_decisions > 0
        # once held, the fleet is pinned at its current size
        assert decisions[-1] == current

    def test_half_open_probe_lets_one_decision_through(self):
        pol = BreakerGatedPolicy(
            _FlappyPolicy(),
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=1,
                                                 recovery_time=100.0)),
            flap_window=50.0)
        pol.desired(0.0, 100.0, 0.9, 10)    # sets direction
        pol.desired(10.0, 100.0, 0.9, 10)   # reversal inside window: trips
        held = pol.held_decisions
        assert held >= 1
        # past recovery_time the half-open probe admits a decision again
        # (it reverses again, so it re-trips, but it was *allowed* through)
        out = pol.desired(200.0, 100.0, 0.9, 10)
        assert out != 10 or pol.held_decisions == held

    def test_name_composes(self):
        pol = BreakerGatedPolicy(ThresholdPolicy())
        assert pol.name == "threshold+breaker"

    def test_gated_threshold_survives_full_simulation(self):
        rng = np.random.default_rng(5)
        load = np.clip(40.0 + 30.0 * np.sin(np.arange(600) / 40.0)
                       + rng.normal(0.0, 8.0, size=600), 0.0, None)
        kw = dict(mu=10.0, dt=1.0, control_period=30.0, boot_delay=60.0,
                  cooldown=60.0, min_instances=1, max_instances=50,
                  initial_instances=4)
        plain = simulate_autoscaling(
            ThresholdPolicy(high=0.75, low=0.3, step=3), load, **kw)
        gated = simulate_autoscaling(
            BreakerGatedPolicy(ThresholdPolicy(high=0.75, low=0.3, step=3),
                               flap_window=90.0), load, **kw)
        assert bool(np.all((gated.instances >= 1) & (gated.instances <= 50)))
        assert bool(np.all(gated.queue >= 0.0))
        # determinism of the gated run
        gated2 = simulate_autoscaling(
            BreakerGatedPolicy(ThresholdPolicy(high=0.75, low=0.3, step=3),
                               flap_window=90.0), load, **kw)
        assert gated.instances.tobytes() == gated2.instances.tobytes()


class _ScriptedPolicy:
    """Returns a scripted sequence of desired fleet sizes."""

    name = "scripted"

    def __init__(self, wants):
        self._wants = list(wants)

    def desired(self, t, offered, utilization, current, queue=0.0):
        return self._wants.pop(0)


class TestBreakerGatedMultiTenantRegressions:
    """Regressions from the serving-gateway bug audit (ISSUE 9)."""

    def test_half_open_probe_not_rejudged_against_stale_epoch(self):
        """A sustained post-burst direction must unpin after ONE recovery.

        One bursty tenant causes a single reversal that trips the
        breaker.  The decision stream then settles on a sustained
        scale-in.  The flap detector must advance its (direction,
        timestamp) state even while decisions are held: with the state
        left stale, every half-open probe re-judged the sustained
        direction against the pre-hold epoch and re-tripped, pinning
        the fleet for the whole flap_window regardless of the breaker's
        recovery_time.
        """
        pol = BreakerGatedPolicy(
            _ScriptedPolicy([12, 8, 8]),        # up, down (flap), down
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=1,
                                                 recovery_time=30.0)),
            flap_window=120.0)
        assert pol.desired(0.0, 100.0, 0.9, 10) == 12   # up: passes
        assert pol.desired(10.0, 100.0, 0.9, 10) == 10  # flap: tripped+held
        assert pol.held_decisions == 1
        # t=45 is one recovery_time past the trip but still inside the
        # flap_window of the stale pre-hold reversal.  The sustained
        # scale-in is calm evidence and must pass.
        assert pol.desired(45.0, 100.0, 0.9, 10) == 8
        assert pol.held_decisions == 1

    def test_steady_decisions_reset_failure_run(self):
        """Isolated reversals separated by calm must not accumulate.

        Steady (no-op) decisions are calm evidence; they must reset the
        breaker's consecutive-failure count.  When they silently skipped
        the breaker, two reversals an arbitrarily long calm stretch
        apart still summed to a trip.
        """
        pol = BreakerGatedPolicy(
            _ScriptedPolicy([12, 8, 10, 10, 10, 12]),
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=2,
                                                 recovery_time=50.0)),
            flap_window=1000.0)
        assert pol.desired(0.0, 100.0, 0.9, 10) == 12    # up
        assert pol.desired(10.0, 100.0, 0.9, 10) == 8    # reversal: failure 1
        for t in (20.0, 30.0, 40.0):                     # calm stretch
            assert pol.desired(t, 100.0, 0.9, 10) == 10
        # second isolated reversal: must NOT be failure #2 of a run
        assert pol.desired(50.0, 100.0, 0.9, 10) == 12
        assert pol.held_decisions == 0
        assert pol.breaker.trips == 0
