"""BreakerGatedPolicy: flap detection holds decisions, calm streams pass."""

import numpy as np

from repro.cloud.autoscale import (
    BreakerGatedPolicy,
    ThresholdPolicy,
    simulate_autoscaling,
)
from repro.resilience import BreakerConfig, CircuitBreaker


class _FlappyPolicy:
    """Alternates scale-out / scale-in every call: worst-case flapping."""

    name = "flappy"

    def __init__(self):
        self._dir = 1

    def desired(self, t, offered, utilization, current, queue=0.0):
        self._dir = -self._dir
        return max(1, current + self._dir)


class _SteadyUpPolicy:
    name = "steady-up"

    def desired(self, t, offered, utilization, current, queue=0.0):
        return current + 1


class TestBreakerGatedPolicy:
    def test_passes_through_steady_decisions(self):
        pol = BreakerGatedPolicy(_SteadyUpPolicy(), flap_window=120.0)
        n = 4
        for t in (0.0, 30.0, 60.0, 90.0):
            n = pol.desired(t, 100.0, 0.9, n)
        assert n == 8
        assert pol.held_decisions == 0

    def test_flapping_opens_breaker_and_holds_fleet(self):
        pol = BreakerGatedPolicy(
            _FlappyPolicy(),
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=2,
                                                 recovery_time=300.0)),
            flap_window=120.0)
        current = 10
        decisions = [pol.desired(t, 100.0, 0.9, current)
                     for t in np.arange(0.0, 300.0, 30.0)]
        assert pol.held_decisions > 0
        # once held, the fleet is pinned at its current size
        assert decisions[-1] == current

    def test_half_open_probe_lets_one_decision_through(self):
        pol = BreakerGatedPolicy(
            _FlappyPolicy(),
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=1,
                                                 recovery_time=100.0)),
            flap_window=50.0)
        pol.desired(0.0, 100.0, 0.9, 10)    # sets direction
        pol.desired(10.0, 100.0, 0.9, 10)   # reversal inside window: trips
        held = pol.held_decisions
        assert held >= 1
        # past recovery_time the half-open probe admits a decision again
        # (it reverses again, so it re-trips, but it was *allowed* through)
        out = pol.desired(200.0, 100.0, 0.9, 10)
        assert out != 10 or pol.held_decisions == held

    def test_name_composes(self):
        pol = BreakerGatedPolicy(ThresholdPolicy())
        assert pol.name == "threshold+breaker"

    def test_gated_threshold_survives_full_simulation(self):
        rng = np.random.default_rng(5)
        load = np.clip(40.0 + 30.0 * np.sin(np.arange(600) / 40.0)
                       + rng.normal(0.0, 8.0, size=600), 0.0, None)
        kw = dict(mu=10.0, dt=1.0, control_period=30.0, boot_delay=60.0,
                  cooldown=60.0, min_instances=1, max_instances=50,
                  initial_instances=4)
        plain = simulate_autoscaling(
            ThresholdPolicy(high=0.75, low=0.3, step=3), load, **kw)
        gated = simulate_autoscaling(
            BreakerGatedPolicy(ThresholdPolicy(high=0.75, low=0.3, step=3),
                               flap_window=90.0), load, **kw)
        assert bool(np.all((gated.instances >= 1) & (gated.instances <= 50)))
        assert bool(np.all(gated.queue >= 0.0))
        # determinism of the gated run
        gated2 = simulate_autoscaling(
            BreakerGatedPolicy(ThresholdPolicy(high=0.75, low=0.3, step=3),
                               flap_window=90.0), load, **kw)
        assert gated.instances.tobytes() == gated2.instances.tobytes()
