"""End-to-end integration: whole-stack scenarios crossing subsystem seams."""

import operator

import numpy as np
import pytest

from repro.cluster import FailureInjector, make_cluster
from repro.common.units import MB, Gbit_per_s
from repro.dataflow import (
    CostModel,
    DataflowContext,
    EngineConfig,
    SimEngine,
)
from repro.graph import erdos_renyi, pagerank, pagerank_dataflow
from repro.simcore import Simulator
from repro.storage import DFSConfig, DistributedFS
from repro.workloads import zipf_text


class TestAnalyticsOnDFS:
    """Write data to the DFS, run a locality-aware job over its blocks."""

    def test_wordcount_over_dfs_blocks(self):
        sim = Simulator()
        cl = make_cluster(sim, n_racks=2, nodes_per_rack=4)
        fs = DistributedFS(cl, DFSConfig(block_size=MB(1)), seed=0)
        docs = zipf_text(200, 50, vocab_size=300, seed=1)
        blob = "\n".join(docs).encode()
        sim.run_until_done(fs.write("/corpus", data=blob, writer="h0_0"))

        # partition the documents like the DFS blocks and carry the block
        # locations as locality hints
        blocks = fs.blocks_of("/corpus")
        parts, locs = [], []
        for blk in blocks:
            start = blk.index * fs.config.block_size
            chunk = blob[start:start + blk.size].decode(errors="ignore")
            parts.append(chunk.split())
            locs.append(blk.nodes())
        ctx = DataflowContext()
        src = ctx.from_partitions(parts, locations=locs)
        wc = src.map(lambda w: (w, 1)).reduce_by_key(operator.add)

        eng = SimEngine(cl, EngineConfig(locality_wait=2.0))
        res = sim.run_until_done(eng.collect(wc))
        # distributed result matches a plain Python count
        from collections import Counter
        expect = Counter(w for p in parts for w in p)
        assert dict(res.value) == dict(expect)
        # locality hints honored for most tasks
        assert res.metrics.locality_fraction > 0.5


class TestChaosPipeline:
    """Run a multi-stage job while nodes randomly fail and recover."""

    def test_job_survives_churn(self):
        sim = Simulator()
        cl = make_cluster(sim, n_racks=2, nodes_per_rack=4)
        ctx = DataflowContext()
        eng = SimEngine(cl, cost_model=CostModel(cpu_per_record=1e-4))
        # keep one rack stable so progress is always possible
        churn_targets = [f"h1_{i}" for i in range(4)]
        fi = FailureInjector(cl, mtbf=3.0, mttr=1.0, targets=churn_targets,
                             seed=4)
        fi.start()
        ds = (ctx.range(30_000, 16)
              .map(lambda x: (x % 500, x))
              .reduce_by_key(operator.add, 12)
              .map(lambda kv: (kv[0] % 10, kv[1]))
              .reduce_by_key(operator.add, 8))
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(ds.collect())
        assert fi.failure_count() > 0


class TestGraphPipelineOnEngine:
    def test_pagerank_distributed_matches_direct(self):
        g = erdos_renyi(60, 300, seed=3)
        ctx = DataflowContext()
        sim = Simulator()
        cl = make_cluster(sim, 2, 4)
        eng = SimEngine(cl)
        plan_ranks = pagerank_dataflow(ctx, g, iterations=15)
        direct = pagerank(g, max_iter=15, tol=0.0)
        vec = np.array([plan_ranks[v] for v in range(g.n)])
        assert np.abs(vec - direct).max() < 1e-9


class TestHeterogeneousEndToEnd:
    def test_speculation_plus_locality_together(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 4,
                          speed_factors=[1, 1, 1, 1, 1, 1, 1, 0.15])
        ctx = DataflowContext()
        eng = SimEngine(cl, EngineConfig(speculation=True,
                                         locality_wait=0.5,
                                         check_interval=0.05),
                        cost_model=CostModel(cpu_per_record=2e-4))
        parts = [[i] * 2000 for i in range(16)]
        locs = [[f"h{i % 2}_{(i // 2) % 4}"] for i in range(16)]
        ds = (ctx.from_partitions(parts, locations=locs)
              .map(lambda x: (x, 1)).reduce_by_key(operator.add, 8))
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == [(i, 2000) for i in range(16)]


class TestStorageTrafficAccounting:
    def test_network_bytes_match_dfs_activity(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 3, host_bw=Gbit_per_s(10))
        fs = DistributedFS(cl, DFSConfig(block_size=MB(2),
                                         auto_repair=False), seed=2)
        before = cl.net.total_bytes
        sim.run_until_done(fs.write("/f", size=MB(2), writer="h0_0"))
        wrote = cl.net.total_bytes - before
        # replication pipeline: writer->r1 is a local copy (replica 1 sits
        # on the writer), so exactly two network hops carry the block
        assert wrote == pytest.approx(2 * MB(2), rel=0.01)
