"""Node model, cluster assembly, failure injection."""

import pytest

from repro.cluster import Cluster, FailureInjector, Node, NodeSpec, make_cluster
from repro.common.errors import ConfigError
from repro.simcore import Simulator


class TestNodeSpec:
    def test_defaults_valid(self):
        spec = NodeSpec()
        assert spec.cores >= 1 and spec.speed > 0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            NodeSpec(speed=0)

    def test_invalid_disk(self):
        with pytest.raises(ValueError):
            NodeSpec(disk_bw=0)


class TestNodeCompute:
    def test_compute_duration(self):
        sim = Simulator()
        n = Node(sim, "n0", NodeSpec(cores=1, speed=2.0))
        ev = n.compute(4.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert ev.triggered

    def test_cores_limit_concurrency(self):
        sim = Simulator()
        n = Node(sim, "n0", NodeSpec(cores=2, speed=1.0))
        for _ in range(4):
            n.compute(1.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_speed_factor(self):
        sim = Simulator()
        n = Node(sim, "n0", NodeSpec(cores=1, speed=1.0))
        n.set_speed_factor(0.5)
        n.compute(1.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_invalid_speed_factor(self):
        sim = Simulator()
        n = Node(sim, "n0", NodeSpec())
        with pytest.raises(ValueError):
            n.set_speed_factor(0)

    def test_disk_io(self):
        sim = Simulator()
        n = Node(sim, "n0", NodeSpec(disk_bw=100.0))
        n.disk_read(50.0)
        n.disk_write(50.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)   # shared bandwidth


class TestNodeLiveness:
    def test_fail_recover_listeners(self):
        sim = Simulator()
        n = Node(sim, "n0", NodeSpec())
        events = []
        n.listeners.append(lambda node, kind: events.append(kind))
        n.fail()
        n.fail()          # idempotent
        n.recover()
        n.recover()       # idempotent
        assert events == ["fail", "recover"]
        assert n.failures == 1


class TestMakeCluster:
    def test_shape(self):
        sim = Simulator()
        cl = make_cluster(sim, n_racks=3, nodes_per_rack=2)
        assert len(cl.nodes) == 6
        assert len(cl.racks) == 3
        assert cl.total_cores() == 6 * NodeSpec().cores

    def test_rack_membership(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 2)
        assert cl.same_rack("h0_0", "h0_1")
        assert not cl.same_rack("h0_0", "h1_0")

    def test_speed_factors(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 2, speed_factors=[1.0, 0.5])
        assert cl.nodes["h0_1"].effective_speed == pytest.approx(0.5)

    def test_duplicate_node_rejected(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 1)
        with pytest.raises(ConfigError):
            cl.add_node("h0_0", NodeSpec(), "rack0")

    def test_unknown_host_rejected(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 1)
        with pytest.raises(ConfigError):
            cl.add_node("ghost", NodeSpec(), "rack0")

    def test_live_nodes_tracks_failures(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 3)
        cl.nodes["h0_1"].fail()
        assert len(cl.live_nodes()) == 2

    def test_transfer_between_nodes(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 2)
        ev = cl.transfer("h0_0", "h1_1", 1000.0)
        stats = sim.run_until_done(ev)
        assert stats.nbytes == 1000


class TestFailureInjector:
    def test_deterministic(self):
        def run(seed):
            sim = Simulator()
            cl = make_cluster(sim, 1, 4)
            fi = FailureInjector(cl, mtbf=50, mttr=5, seed=seed)
            fi.start()
            sim.run(until=300)
            return fi.events
        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_fail_then_recover_alternates(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 1)
        fi = FailureInjector(cl, mtbf=10, mttr=1, seed=0)
        fi.start()
        sim.run(until=200)
        kinds = [k for _, n, k in fi.events]
        for i in range(0, len(kinds) - 1, 2):
            assert kinds[i] == "fail" and kinds[i + 1] == "recover"

    def test_scripted_failure(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 2)
        fi = FailureInjector(cl, mtbf=1e9, mttr=0, seed=0)
        fi.schedule_failure("h0_0", at=10.0, repair_after=5.0)
        sim.run(until=30)
        assert fi.events == [(10.0, "h0_0", "fail"), (15.0, "h0_0", "recover")]
        assert cl.nodes["h0_0"].alive

    def test_scripted_past_rejected(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 1)
        fi = FailureInjector(cl, mtbf=1, mttr=1, seed=0)
        sim.process((lambda s: (yield s.timeout(5)))(sim))
        sim.run()
        with pytest.raises(ValueError):
            fi.schedule_failure("h0_0", at=1.0)

    def test_invalid_params(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 1)
        with pytest.raises(ValueError):
            FailureInjector(cl, mtbf=0, mttr=1)

    def test_targets_limit_scope(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 3)
        fi = FailureInjector(cl, mtbf=5, mttr=1, targets=["h0_0"], seed=1)
        fi.start()
        sim.run(until=100)
        assert all(n == "h0_0" for _, n, _ in fi.events)
        assert fi.failure_count() > 0
