"""Processor-sharing fluid resource."""

import pytest

from repro.cluster import FluidResource
from repro.simcore import Simulator


def test_single_job_rate():
    sim = Simulator()
    f = FluidResource(sim, capacity=100.0)
    ev = f.submit(200.0)
    sim.run()
    assert ev.value == pytest.approx(2.0)


def test_equal_sharing():
    sim = Simulator()
    f = FluidResource(sim, capacity=100.0)
    a = f.submit(100.0)
    b = f.submit(100.0)
    sim.run()
    assert a.value == pytest.approx(2.0)
    assert b.value == pytest.approx(2.0)


def test_shorter_job_leaves_earlier_then_speedup():
    sim = Simulator()
    f = FluidResource(sim, capacity=100.0)
    short = f.submit(50.0)    # with sharing: 1s
    long = f.submit(150.0)    # 1s shared (50 done) + 1s alone (100) = 2s
    sim.run()
    assert short.value == pytest.approx(1.0)
    assert long.value == pytest.approx(2.0)


def test_weighted_sharing():
    sim = Simulator()
    f = FluidResource(sim, capacity=90.0)
    heavy = f.submit(120.0, weight=2.0)   # rate 60 -> 2s
    light = f.submit(60.0, weight=1.0)    # rate 30 -> 2s
    sim.run()
    assert heavy.value == pytest.approx(2.0)
    assert light.value == pytest.approx(2.0)


def test_late_arrival():
    sim = Simulator()
    f = FluidResource(sim, capacity=100.0)
    a = f.submit(100.0)
    out = {}

    def later(sim):
        yield sim.timeout(0.5)
        b = f.submit(100.0)
        dur = yield b
        out["b"] = (sim.now, dur)
    sim.process(later(sim))
    sim.run()
    # a: 0.5 alone (50) + 1.0 shared (50) = 1.5s
    assert a.value == pytest.approx(1.5)
    assert out["b"][0] == pytest.approx(2.0)


def test_zero_work_completes():
    sim = Simulator()
    f = FluidResource(sim, capacity=10.0)
    ev = f.submit(0.0)
    sim.run()
    assert ev.triggered and ev.value == 0.0


def test_capacity_change_mid_job():
    sim = Simulator()
    f = FluidResource(sim, capacity=100.0)
    ev = f.submit(100.0)

    def slower(sim):
        yield sim.timeout(0.5)
        f.set_capacity(50.0)
    sim.process(slower(sim))
    sim.run()
    # 0.5s at 100 (50 done) + 1.0s at 50 = 1.5s
    assert ev.value == pytest.approx(1.5)


def test_total_work_accounting():
    sim = Simulator()
    f = FluidResource(sim, capacity=10.0)
    f.submit(30.0)
    f.submit(20.0)
    sim.run()
    assert f.total_work == pytest.approx(50.0)
    assert f.active_jobs == 0


def test_invalid_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        FluidResource(sim, 0.0)
    f = FluidResource(sim, 1.0)
    with pytest.raises(ValueError):
        f.submit(-1.0)
    with pytest.raises(ValueError):
        f.submit(1.0, weight=0.0)
    with pytest.raises(ValueError):
        f.set_capacity(-5)


def test_tiny_residuals_terminate():
    """Regression: sub-ulp residual work must not stall the clock."""
    sim = Simulator(start_time=5.0)
    f = FluidResource(sim, capacity=200e6)
    evs = [f.submit(200e6 / 3 + 1e-7) for _ in range(3)]
    sim.run(max_events=100_000)
    assert all(e.triggered for e in evs)
