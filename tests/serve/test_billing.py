"""Per-tenant accounting under retries and hedging: bill exactly once.

A request that crashes and retries N times, or runs a hedged backup
attempt, must appear exactly once in its tenant's terminal counters
(`completed` or `failed`) — attempts are diagnostics, not billing.
The conservation identity ``submitted == rejected + completed + failed
+ inflight`` must hold exactly, with ``inflight == 0`` after drain,
across crash plans.
"""

import pickle

from repro.chaos.plan import FaultEvent, FaultPlan
from repro.resilience.hedge import HedgePolicy
from repro.resilience.policy import RetryPolicy
from repro.serve import ServeConfig, ServeGateway, TenantSpec


def _mix():
    return [
        TenantSpec(name="web", profile="web-sql", users=2_000_000,
                   arrival="poisson", slo_p99=30.0),
        TenantSpec(name="batch", profile="dataflow", users=400_000,
                   arrival="mmpp", slo_p99=90.0),
        TenantSpec(name="flow", profile="workflow", users=300_000,
                   arrival="poisson", slo_p99=120.0),
    ]


def _drained(report):
    for stats in report.tenants.values():
        assert stats.conservation_ok()
        assert stats.inflight == 0
        assert stats.completed + stats.failed == \
            stats.submitted - stats.rejected


class TestBillOnce:
    def test_retried_requests_bill_once(self):
        plan = FaultPlan.scripted(
            [FaultEvent(0.5, "task_crash", magnitude=40)], seed=11)
        cfg = ServeConfig(horizon=40.0, sample_frac=5e-3, seed=11,
                          retry=RetryPolicy(max_attempts=5, budget=None,
                                            base_delay=0.2, max_delay=2.0))
        report = ServeGateway(_mix(), cfg, plan=plan).run()
        _drained(report)
        total = report.tenants
        assert sum(t.retries for t in total.values()) > 0
        # attempts exceed terminal outcomes exactly by retries + hedges
        for t in total.values():
            assert t.attempts >= t.completed
        assert report.conservation_ok()

    def test_budget_exhaustion_bills_failed_exactly_once(self):
        # max_attempts=2: a request whose stage crashes twice gives up
        plan = FaultPlan.scripted(
            [FaultEvent(0.5, "task_crash", magnitude=500)], seed=5)
        cfg = ServeConfig(horizon=40.0, sample_frac=5e-3, seed=5,
                          retry=RetryPolicy(max_attempts=2, budget=2,
                                            base_delay=0.1, max_delay=1.0))
        report = ServeGateway(_mix(), cfg, plan=plan).run()
        _drained(report)
        assert sum(t.failed for t in report.tenants.values()) > 0
        assert report.conservation_ok()

    def test_hedged_requests_bill_once(self):
        # aggressive hedging: backup at the median after 3 samples
        cfg = ServeConfig(horizon=40.0, sample_frac=5e-3, seed=2,
                          hedge=HedgePolicy(quantile=0.5, multiplier=1.0,
                                            min_samples=3))
        report = ServeGateway(_mix(), cfg).run()
        _drained(report)
        assert sum(t.hedges for t in report.tenants.values()) > 0
        assert report.conservation_ok()

    def test_conservation_across_crash_plans(self):
        """Every seed's renewal crash plan holds conservation exactly."""
        for seed in range(5):
            plan = FaultPlan.renewal(
                seed=seed, horizon=40.0,
                rates={"task_crash": 0.2, "slow_node": 0.02,
                       "node_fail": 0.01, "load_burst": 0.02},
                mean_duration=8.0)
            cfg = ServeConfig(horizon=40.0, sample_frac=5e-3, seed=seed)
            report = ServeGateway(_mix(), cfg, plan=plan).run()
            _drained(report)
            assert report.conservation_ok()

    def test_faulted_run_is_deterministic(self):
        plan = FaultPlan.renewal(
            seed=9, horizon=30.0,
            rates={"task_crash": 0.1, "load_burst": 0.02},
            mean_duration=5.0)
        cfg = ServeConfig(horizon=30.0, sample_frac=5e-3, seed=9)
        a = ServeGateway(_mix(), cfg, plan=plan).run()
        b = ServeGateway(_mix(), cfg, plan=plan).run()
        assert pickle.dumps(a.snapshot()) == pickle.dumps(b.snapshot())
