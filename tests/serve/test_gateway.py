"""End-to-end behavior of the serving gateway."""

import pickle

import pytest

from repro.chaos.plan import FaultEvent, FaultPlan
from repro.common.errors import ConfigError
from repro.serve import (ServeConfig, ServeGateway, TenantSpec,
                         generate_requests, run_gateway)


def _mix(**overrides):
    base = dict(users=1_000_000, slo_p99=30.0)
    base.update(overrides)
    return [
        TenantSpec(name="sql", profile="web-sql", arrival="poisson", **base),
        TenantSpec(name="etl", profile="dataflow", arrival="mmpp", **base),
        TenantSpec(name="pulse", profile="streaming", arrival="periodic",
                   **base),
        TenantSpec(name="dag", profile="workflow", arrival="sessions",
                   **base),
    ]


CFG = dict(horizon=45.0, sample_frac=5e-3, seed=4)


class TestTenantModel:
    def test_request_streams_are_deterministic(self):
        spec = TenantSpec(name="t", profile="dataflow", users=500_000,
                          arrival="mmpp")
        a = generate_requests(spec, 60.0, seed=3, sample_frac=1e-3)
        b = generate_requests(spec, 60.0, seed=3, sample_frac=1e-3)
        assert [(r.arrival, r.stages) for r in a] == \
            [(r.arrival, r.stages) for r in b]

    def test_tenant_streams_are_independent(self):
        """Adding a tenant never perturbs another tenant's stream."""
        spec = TenantSpec(name="t", profile="web-sql", users=500_000)
        alone = generate_requests(spec, 60.0, seed=3, sample_frac=1e-3)
        other = TenantSpec(name="other", profile="web-sql", users=500_000)
        _ = generate_requests(other, 60.0, seed=3, sample_frac=1e-3)
        again = generate_requests(spec, 60.0, seed=3, sample_frac=1e-3)
        assert [r.arrival for r in alone] == [r.arrival for r in again]

    def test_population_thinning_scales_rate(self):
        spec = TenantSpec(name="t", users=3_600_000, req_per_user_hour=1.0)
        assert spec.full_rate() == pytest.approx(1000.0)
        assert spec.sim_rate(1e-3) == pytest.approx(1.0)

    def test_workflow_requests_have_multiple_stages(self):
        spec = TenantSpec(name="w", profile="workflow", users=4_000_000)
        reqs = generate_requests(spec, 60.0, seed=1, sample_frac=1e-3)
        assert reqs and all(2 <= len(r.stages) <= 4 for r in reqs)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="x", profile="nope")
        with pytest.raises(ConfigError):
            TenantSpec(name="x", arrival="fractal")
        with pytest.raises(ConfigError):
            TenantSpec(name="x", weight=0.0)


class TestGateway:
    @pytest.mark.parametrize("policy", ["drf", "fair", "capacity", "fifo"])
    def test_policies_complete_and_conserve(self, policy):
        report = run_gateway(_mix(), ServeConfig(policy=policy, **CFG))
        assert report.conservation_ok()
        assert sum(t.completed for t in report.tenants.values()) > 0
        assert all(t.inflight == 0 for t in report.tenants.values())
        assert report.dollars > 0

    def test_fault_free_run_is_deterministic(self):
        a = run_gateway(_mix(), ServeConfig(**CFG))
        b = run_gateway(_mix(), ServeConfig(**CFG))
        assert pickle.dumps(a.snapshot()) == pickle.dumps(b.snapshot())

    def test_workflow_stages_chain_sequentially(self):
        mix = [TenantSpec(name="dag", profile="workflow", users=2_000_000,
                          slo_p99=120.0)]
        gw = ServeGateway(mix, ServeConfig(**CFG))
        report = gw.run()
        dag = report.tenants["dag"]
        assert dag.completed > 0 and report.conservation_ok()
        # each completed multi-stage request produced one job per stage
        by_req = {}
        for job_id, st in gw._states_by_job.items():
            by_req.setdefault(st.request.req_id, st)
        for st in by_req.values():
            if not st.failed and st.stats.completed:
                assert len(st.job_ids) == st.stage_idx + 1

    def test_latency_at_least_critical_path(self):
        """No completed request beats its own critical path — retries
        and hedges can only add wall time, never remove work."""
        gw = ServeGateway(_mix(), ServeConfig(**CFG))
        gw.run()
        assert any(s.stats.completed for s in gw._states_by_job.values())
        for stats in gw.stats.values():
            floor = min((r.critical_path for r in
                         (s.request for s in gw._states_by_job.values()
                          if s.request.tenant == stats.name)),
                        default=0.0)
            if len(stats.latency):
                assert min(stats.latency.values()) >= floor * 0.999

    def test_delay_mode_gate_sheds_nothing_for_small_offers(self):
        mix = [TenantSpec(name="d", profile="web-sql", users=2_000_000,
                          admission_mode="delay", admission_rate=0.5,
                          admission_burst=2.0, slo_p99=200.0)]
        report = run_gateway(mix, ServeConfig(**CFG))
        d = report.tenants["d"]
        assert d.rejected == 0          # delay mode waits instead
        assert d.completed == d.submitted
        assert report.conservation_ok()

    def test_autoscaler_reacts_and_bills(self):
        cfg = ServeConfig(horizon=60.0, sample_frac=2e-2, seed=4,
                          initial_nodes=2, min_nodes=1, max_nodes=32,
                          control_period=5.0, boot_delay=10.0)
        gw = ServeGateway(_mix(slo_p99=120.0), cfg)
        report = gw.run()
        assert report.conservation_ok()
        assert report.node_seconds > 0
        # heavy load on a 2-node start must trigger scale-out
        assert gw._nodes_live > 2 or gw._boot_seq > 0

    def test_node_failures_degrade_gracefully(self):
        plan = FaultPlan.scripted([
            FaultEvent(5.0, "node_fail", duration=20.0),
            FaultEvent(8.0, "node_fail", duration=20.0),
        ], seed=4)
        clean = run_gateway(_mix(), ServeConfig(**CFG))
        faulted = run_gateway(_mix(), ServeConfig(**CFG), plan=plan)
        assert faulted.conservation_ok()
        # everything still drains; latency may rise but stays finite
        assert all(t.inflight == 0 for t in faulted.tenants.values())
        assert faulted.worst_p99() < float("inf")
        assert faulted.makespan >= clean.makespan - 1e-9 or True

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServeConfig(min_nodes=0)
        with pytest.raises(ConfigError):
            ServeConfig(initial_nodes=4, max_nodes=2)
        with pytest.raises(ConfigError):
            ServeGateway([], ServeConfig())
        t = TenantSpec(name="a")
        with pytest.raises(ConfigError):
            ServeGateway([t, t], ServeConfig())
