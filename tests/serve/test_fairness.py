"""Property tests for fairness indices and SLO accounting (ISSUE 9).

Jain's index over weight-normalized goodput must be exactly 1.0 when
tenants receive identical service, must degrade monotonically as one
tenant's share skews away, and per-tenant conservation must hold for
every chaos seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plan import FaultPlan
from repro.common.stats import jain_index
from repro.serve import ServeConfig, ServeGateway, TenantSpec, run_gateway
from repro.serve.report import ServeReport, TenantStats


def _stats(name, goodput, weight=1.0):
    t = TenantStats(name=name, weight=weight, slo_p99=60.0)
    t.submitted = t.completed = 1
    t.goodput_work = goodput
    t.work_completed = goodput
    return t


class TestJainIndexProperties:
    def test_identical_tenants_exactly_one(self):
        rep = ServeReport(tenants={
            n: _stats(n, 12.5) for n in ("a", "b", "c", "d")})
        assert rep.jain_fairness() == 1.0

    def test_weight_proportional_service_exactly_one(self):
        """Goodput proportional to weight is perfectly fair."""
        rep = ServeReport(tenants={
            "small": _stats("small", 10.0, weight=1.0),
            "large": _stats("large", 40.0, weight=4.0),
        })
        assert rep.jain_fairness() == 1.0

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(2, 16), k=st.floats(1.0, 100.0))
    def test_single_tenant_skew_degrades_monotonically(self, n, k):
        """jain([1]*n + [k]) is non-increasing in k for k >= 1."""
        base = jain_index([1.0] * n + [k])
        worse = jain_index([1.0] * n + [k * 1.5])
        assert worse <= base + 1e-12
        assert jain_index([1.0] * n + [1.0]) == 1.0

    def test_idle_tenants_excluded(self):
        """A tenant that submitted nothing is not 'treated unfairly'."""
        tenants = {n: _stats(n, 5.0) for n in ("a", "b")}
        idle = TenantStats(name="idle", weight=1.0)
        tenants["idle"] = idle
        assert ServeReport(tenants=tenants).jain_fairness() == 1.0


class TestEndToEndFairness:
    def _clones(self, n=4, demand_scales=None):
        scales = demand_scales or [1.0] * n
        return [
            TenantSpec(name=f"t{i}", profile="web-sql", users=1_500_000,
                       arrival="poisson", slo_p99=500.0,
                       demand_scale=scales[i])
            for i in range(n)
        ]

    def test_identical_tenants_near_perfect_fairness(self):
        """Statistically identical tenants on ample capacity: every
        request completes in SLO, so goodput tracks offered work and
        Jain stays near 1 (exact equality needs identical draws)."""
        cfg = ServeConfig(horizon=60.0, sample_frac=5e-3, seed=6,
                          min_nodes=8, initial_nodes=8, max_nodes=8)
        report = run_gateway(self._clones(), cfg)
        assert report.conservation_ok()
        assert report.jain_fairness() > 0.9

    def test_induced_skew_degrades_jain_monotonically(self):
        """Scaling one tenant's demand 1x -> 3x -> 9x on a fixed fleet
        with a generous SLO makes its weight-normalized goodput pull
        away monotonically; Jain must fall at every step."""
        jains = []
        for skew in (1.0, 3.0, 9.0):
            cfg = ServeConfig(horizon=60.0, sample_frac=5e-3, seed=6,
                              min_nodes=12, initial_nodes=12, max_nodes=12)
            report = run_gateway(
                self._clones(demand_scales=[skew, 1.0, 1.0, 1.0]), cfg)
            assert report.conservation_ok()
            jains.append(report.jain_fairness())
        assert jains[0] > jains[1] > jains[2]

    def test_conservation_for_every_chaos_seed(self):
        mix = [
            TenantSpec(name="sql", profile="web-sql", users=1_000_000,
                       arrival="poisson", slo_p99=30.0),
            TenantSpec(name="dag", profile="workflow", users=300_000,
                       arrival="sessions", slo_p99=120.0),
        ]
        for seed in range(8):
            plan = FaultPlan.renewal(
                seed=seed, horizon=30.0,
                rates={"task_crash": 0.15, "slow_node": 0.02,
                       "node_fail": 0.01, "load_burst": 0.02},
                mean_duration=6.0)
            cfg = ServeConfig(horizon=30.0, sample_frac=5e-3, seed=seed)
            report = ServeGateway(mix, cfg, plan=plan).run()
            for stats in report.tenants.values():
                assert stats.conservation_ok()
                assert stats.inflight == 0
                assert stats.submitted == (stats.rejected + stats.completed
                                           + stats.failed)
