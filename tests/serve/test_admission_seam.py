"""Admission↔scheduler seam: shed work must never create phantom demand.

Regressions from the ISSUE 9 bug audit: (1) the token bucket debited a
fractional token for offers it then shed, starving low-rate tenants;
(2) structurally, a rejected request must never reach the scheduler, so
it can never count against its tenant's fair share or DRF dominant
share.
"""

from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.serve import ServeConfig, ServeGateway, TenantSpec


class TestWholeTokenAdmission:
    def test_low_rate_tenant_not_starved_by_fractional_debits(self):
        """rate=0.6/s offered 1 rec/s must admit ~0.6/s, not ~0.

        The original implementation took ``bucket.take(now, 1)`` and
        floored: each *shed* offer still destroyed the 0.6-0.9 fractional
        tokens in the bucket, so the bucket never reached a whole token
        and the tenant was starved to ~1 admitted record total.
        """
        ctrl = AdmissionController(AdmissionConfig(rate=0.6, burst=1.0,
                                                   max_backlog=1000))
        admitted = 0
        for s in range(1, 201):
            got, _shed, _delay = ctrl.admit(float(s), 1, 0)
            admitted += got
        # a whole token accrues every ~2 s (burst=1.0 caps the bucket),
        # so ~100 admitted; the fractional-debit bug admitted exactly 1
        assert admitted >= 95
        assert ctrl.admitted == admitted

    def test_shed_offer_leaves_bucket_untouched(self):
        """Rejected work must not debit the tenant's future share."""
        ctrl = AdmissionController(AdmissionConfig(rate=1.0, burst=10.0,
                                                   max_backlog=1000))
        # drain to a known fractional level: 10 tokens, take 10, wait 0.7 s
        got, _, _ = ctrl.admit(0.0, 10, 0)
        assert got == 10
        before = ctrl.bucket.available(0.7)
        assert 0.6 < before < 0.8
        got, shed, _ = ctrl.admit(0.7, 5, 0)
        assert got == 0 and shed == 5
        # the shed offer consumed nothing
        assert ctrl.bucket.available(0.7) == before

    def test_whole_tokens_only(self):
        """A partial grant never exceeds the whole tokens available."""
        ctrl = AdmissionController(AdmissionConfig(rate=1.0, burst=8.0,
                                                   max_backlog=1000))
        got, shed, _ = ctrl.admit(0.0, 5, 0)     # 8 available, want 5
        assert (got, shed) == (5, 0)
        got, shed, _ = ctrl.admit(0.0, 5, 0)     # 3 left
        assert (got, shed) == (3, 2)


class TestNoPhantomDemand:
    def _mix(self):
        return [
            # alpha is throttled hard at the gate: most requests shed
            TenantSpec(name="alpha", profile="web-sql", users=2_000_000,
                       arrival="poisson", admission_rate=0.2,
                       admission_burst=1.0, slo_p99=30.0),
            TenantSpec(name="beta", profile="dataflow", users=400_000,
                       arrival="mmpp", slo_p99=60.0),
        ]

    def test_rejected_requests_never_reach_the_scheduler(self):
        """Every scheduler job maps to an *admitted* request — shed
        requests leave no trace in the job table, hence contribute
        nothing to fair-share or DRF dominant-share vectors."""
        gw = ServeGateway(self._mix(),
                          ServeConfig(policy="drf", horizon=60.0,
                                      sample_frac=5e-3, seed=3))
        report = gw.run()
        assert report.conservation_ok()
        alpha = report.tenants["alpha"]
        assert alpha.rejected > 0          # the gate actually shed work
        # distinct requests that reached the scheduler == admitted count
        for name, stats in report.tenants.items():
            admitted = stats.submitted - stats.rejected
            seen = {id(st.request) for st in gw._states_by_job.values()
                    if st.request.tenant == name}
            assert len(seen) == admitted
        # and every job the scheduler ever held belongs to some state
        assert all(j.spec.job_id in gw._states_by_job
                   for j in gw.sched.jobs)

    def test_shedding_tenant_does_not_perturb_neighbor(self):
        """Differential: making alpha's gate stricter (more shed) must
        not slow beta down — shed jobs exert no scheduling pressure."""
        def run(alpha_rate):
            mix = [
                TenantSpec(name="alpha", profile="web-sql", users=2_000_000,
                           arrival="poisson", admission_rate=alpha_rate,
                           admission_burst=1.0, slo_p99=30.0),
                TenantSpec(name="beta", profile="dataflow", users=400_000,
                           arrival="mmpp", slo_p99=60.0),
            ]
            cfg = ServeConfig(policy="fair", horizon=60.0, sample_frac=5e-3,
                              seed=3, min_nodes=4, initial_nodes=4,
                              max_nodes=4)      # static fleet: pure seam test
            return ServeGateway(mix, cfg).run()
        strict = run(0.05)   # alpha sheds nearly everything
        loose = run(0.5)
        assert strict.tenants["alpha"].rejected > \
            loose.tenants["alpha"].rejected
        # beta's p99 with a starved neighbor must be no worse than with
        # a served neighbor (less competition, never more)
        assert strict.tenants["beta"].p99 <= loose.tenants["beta"].p99 + 1e-9
