"""Sealed checkpoint snapshots: corruption fallback and accounting."""

import operator

import pytest

from repro.common.errors import StreamingError
from repro.streaming import (
    CheckpointConfig,
    WindowAgg,
    WindowSpec,
    run_stateful_stream,
    run_windowed_stream,
)

AGG = operator.add
INIT = lambda v: v


def make_events(n=300, keys=4):
    return [(float(i), i % keys, 1) for i in range(n)]


def crash_free_state(events):
    state = {}
    for _t, k, v in sorted(events):
        state[k] = state.get(k, 0) + v
    return state


def counters(run):
    reg = run.registry
    return tuple(int(reg.value(f"integrity.{k}"))
                 for k in ("injected", "detected", "latent"))


class TestValidation:
    def test_corrupt_times_require_integrity(self):
        with pytest.raises(StreamingError):
            run_stateful_stream(make_events(50), AGG, INIT,
                                CheckpointConfig(interval=10),
                                corrupt_times=[5.0])

    def test_windowed_corrupt_times_require_integrity(self):
        with pytest.raises(StreamingError):
            run_windowed_stream(
                [(0.0, 0.0, "k", 1)], WindowSpec.tumbling(2.0),
                WindowAgg.by_name("sum"), CheckpointConfig(interval=8),
                corrupt_times=[5.0])


class TestIntegrityFlagEquivalence:
    def test_sealed_run_matches_plain_run(self):
        # with no corruption, sealing is a pure representation change:
        # the pickle round-trip must behave exactly like the deepcopy
        events = make_events()
        plain = run_stateful_stream(events, AGG, INIT,
                                    CheckpointConfig(interval=20),
                                    crash_times=[55.5, 140.5])
        sealed = run_stateful_stream(
            events, AGG, INIT,
            CheckpointConfig(interval=20, integrity=True),
            crash_times=[55.5, 140.5])
        assert sealed.state == plain.state
        assert sealed.checkpoints_taken == plain.checkpoints_taken
        assert [(r.checkpoint_offset, r.replayed_events)
                for r in sealed.recoveries] == \
            [(r.checkpoint_offset, r.replayed_events)
             for r in plain.recoveries]


class TestCorruptionFallback:
    def test_crash_falls_back_past_rotten_snapshot(self):
        events = make_events(300)
        clean = run_stateful_stream(events, AGG, INIT,
                                    CheckpointConfig(interval=50),
                                    crash_times=[123.5])
        # rot the newest snapshot (t=100) before the crash reads it:
        # recovery must verify, skip it, and restart from t=50
        run = run_stateful_stream(
            events, AGG, INIT,
            CheckpointConfig(interval=50, integrity=True),
            crash_times=[123.5], corrupt_times=[110.0])
        assert run.state == crash_free_state(events)
        assert run.state == clean.state
        (r,) = run.recoveries
        assert r.checkpoint_offset == 50.0      # one checkpoint earlier
        assert r.replayed_events == 74          # events 50..123
        assert counters(run) == (1, 1, 0)

    def test_latent_corruption_audited(self):
        # corruption with no subsequent crash is never *read*; the
        # end-of-run audit must still close the books
        events = make_events(200)
        run = run_stateful_stream(
            events, AGG, INIT,
            CheckpointConfig(interval=40, integrity=True),
            corrupt_times=[90.0])
        assert run.state == crash_free_state(events)
        assert not run.recoveries
        assert counters(run) == (1, 0, 1)

    def test_genesis_never_corrupted(self):
        # every snapshot rots, yet recovery terminates at the pristine
        # genesis and replays the whole stream
        events = make_events(120)
        run = run_stateful_stream(
            events, AGG, INIT,
            CheckpointConfig(interval=30, integrity=True),
            crash_times=[95.5],
            corrupt_times=[91.0, 92.0, 93.0, 94.0, 95.0])
        assert run.state == crash_free_state(events)
        (r,) = run.recoveries
        assert r.checkpoint_offset == 0.0
        assert r.replayed_events == 96
        injected, detected, latent = counters(run)
        assert injected == detected + latent
        assert detected == 3                    # t=90, 60, 30 read and killed

    def test_corrupt_before_any_checkpoint_is_noop(self):
        events = make_events(100)
        run = run_stateful_stream(
            events, AGG, INIT,
            CheckpointConfig(interval=40, integrity=True),
            corrupt_times=[5.0])                # only genesis exists: exempt
        assert run.state == crash_free_state(events)
        assert counters(run) == (0, 0, 0)

    def test_accounting_identity_holds(self):
        events = make_events(400)
        run = run_stateful_stream(
            events, AGG, INIT,
            CheckpointConfig(interval=25, integrity=True),
            crash_times=[120.5, 290.5],
            corrupt_times=[60.0, 110.0, 200.0, 285.0])
        assert run.state == crash_free_state(events)
        injected, detected, latent = counters(run)
        assert injected == 4
        assert injected == detected + latent


class TestWindowedCorruption:
    def test_exactly_once_emissions_despite_rot(self):
        events = [(float(i), float(i), i % 3, 1) for i in range(100)]
        clean = run_windowed_stream(
            events, WindowSpec.tumbling(2.0), WindowAgg.by_name("sum"),
            CheckpointConfig(interval=8))
        run = run_windowed_stream(
            events, WindowSpec.tumbling(2.0), WindowAgg.by_name("sum"),
            CheckpointConfig(interval=8, integrity=True),
            crash_times=[37.5, 70.5], corrupt_times=[35.0, 66.0])
        assert run.emissions == clean.emissions
        assert run.processed_events == clean.processed_events
        assert run.window_in == clean.window_in
        injected, detected, latent = counters(run)
        assert injected == 2
        assert injected == detected + latent

    def test_windowed_sealed_equals_plain_when_clean(self):
        events = [(float(i), float(i), i % 5, i) for i in range(80)]
        kw = dict(watermark_delay=1.0, allowed_lateness=1.0)
        plain = run_windowed_stream(
            events, WindowSpec.tumbling(4.0), WindowAgg.by_name("max"),
            CheckpointConfig(interval=10), crash_times=[33.5], **kw)
        sealed = run_windowed_stream(
            events, WindowSpec.tumbling(4.0), WindowAgg.by_name("max"),
            CheckpointConfig(interval=10, integrity=True),
            crash_times=[33.5], **kw)
        assert sealed.emissions == plain.emissions
        assert sealed.late_dropped == plain.late_dropped


class TestDeterminism:
    def test_same_plan_same_books(self):
        events = make_events(250)
        runs = [run_stateful_stream(
            events, AGG, INIT,
            CheckpointConfig(interval=20, integrity=True),
            crash_times=[77.5, 180.5], corrupt_times=[70.0, 170.0])
            for _ in range(2)]
        assert runs[0].state == runs[1].state
        assert counters(runs[0]) == counters(runs[1])
        assert [r.checkpoint_offset for r in runs[0].recoveries] == \
            [r.checkpoint_offset for r in runs[1].recoveries]
