"""Credit-based backpressure: bounded interiors, lossless conservation.

The pipeline has three operating points under overload, and the tests
pin each one: backpressure *off* lets the interior queue grow with the
run (divergent in-pipeline latency), *on* bounds the interior to the
credit window and pushes the pressure back to the source (end-to-end
grows instead, nothing is lost), and *on + admission* sheds the excess
at the front door with exact accounting (everything bounded).
"""

import pickle

import numpy as np
import pytest

from repro.common.errors import StreamingError
from repro.resilience import AdmissionConfig
from repro.simcore import Simulator
from repro.obs.metrics import MetricsRegistry
from repro.streaming import (
    CreditLink,
    PipelineConfig,
    WindowSpec,
    run_event_pipeline,
)
from repro.workloads import event_stream

CAPACITY = 10_000.0   # parallelism / per_record_cost at the defaults


def _events(rate, duration=8.0, scenario="uniform", seed=42):
    return event_stream(scenario, rate, duration,
                        seed=np.random.default_rng(seed))


class TestCreditLink:
    def test_sender_blocks_without_credit(self):
        sim = Simulator()
        reg = MetricsRegistry()
        link = CreditLink(sim, 2, reg, "test")
        got = []

        def producer(sim):
            for i in range(5):
                yield from link.send(i)

        def consumer(sim):
            while len(got) < 5:
                item = yield from link.recv()
                yield sim.timeout(1.0)      # slow: forces sender to wait
                got.append(item)
                link.ack()

        sim.process(producer(sim), name="producer")
        done = sim.process(consumer(sim), name="consumer")
        sim.run_until_done(done)
        assert got == list(range(5))
        # 2 credits cover the first sends; the rest waited on acks
        assert reg.value("pipe.test.blocked_seconds") > 0
        assert reg.value("pipe.test.sends") == 5

    def test_unbounded_when_credits_none(self):
        sim = Simulator()
        reg = MetricsRegistry()
        link = CreditLink(sim, None, reg, "free")

        def producer(sim):
            for i in range(50):
                yield from link.send(i)

        p = sim.process(producer(sim), name="producer")
        sim.run_until_done(p)
        assert reg.value("pipe.free.blocked_seconds") == 0
        assert link.available() == 50

    def test_invalid_credits(self):
        sim = Simulator()
        with pytest.raises(StreamingError):
            CreditLink(sim, 0, MetricsRegistry(), "bad")


class TestPipelineConservation:
    @pytest.mark.parametrize("scenario", ["uniform", "bursty", "skewed"])
    def test_conserved_at_moderate_load(self, scenario):
        r = run_event_pipeline(_events(0.5 * CAPACITY, scenario=scenario),
                               PipelineConfig())
        assert r.conserved
        assert r.records_in == r.processed_records
        assert r.windows_fired > 0

    @pytest.mark.parametrize("backpressure", [False, True])
    def test_conserved_under_overload(self, backpressure):
        r = run_event_pipeline(
            _events(1.5 * CAPACITY),
            PipelineConfig(backpressure=backpressure))
        assert r.conserved
        assert r.shed_records == 0          # no admission: nothing dropped
        assert r.records_in == r.processed_records

    def test_conserved_with_admission(self):
        cfg = PipelineConfig(admission=AdmissionConfig(
            rate=0.8 * CAPACITY, burst=0.8 * CAPACITY, max_backlog=8))
        r = run_event_pipeline(_events(1.5 * CAPACITY), cfg)
        assert r.conserved
        assert r.shed_records > 0
        assert r.records_in == r.processed_records + r.shed_records


class TestOperatingPoints:
    def test_backpressure_bounds_the_interior(self):
        # long enough that the unbounded operator queue visibly outgrows
        # the credit window (the gap widens with duration)
        off = run_event_pipeline(_events(1.5 * CAPACITY, duration=20.0),
                                 PipelineConfig(backpressure=False))
        on = run_event_pipeline(_events(1.5 * CAPACITY, duration=20.0),
                                PipelineConfig(backpressure=True))
        # off: the batcher drains everything into the operator queue, so
        # in-pipeline latency grows with the backlog; on: the credit
        # window caps it
        assert on.pipeline_latency.p99 * 2 <= off.pipeline_latency.p99
        # the pressure lands on the source instead: blocked time is real
        assert on.throttled_seconds > 0
        assert off.throttled_seconds == 0
        assert on.max_source_backlog > 0

    def test_admission_bounds_end_to_end(self):
        overload = 1.5 * CAPACITY
        on = run_event_pipeline(_events(overload),
                                PipelineConfig(backpressure=True))
        shed = run_event_pipeline(
            _events(overload),
            PipelineConfig(backpressure=True, admission=AdmissionConfig(
                rate=0.8 * CAPACITY, burst=0.8 * CAPACITY, max_backlog=8)))
        assert shed.e2e_latency.p99 * 2 <= on.e2e_latency.p99
        assert shed.shed_records > 0

    def test_stable_load_not_throttled(self):
        r = run_event_pipeline(_events(0.3 * CAPACITY),
                               PipelineConfig(backpressure=True))
        assert r.e2e_latency.p99 < 2.0
        assert r.max_source_backlog < 2_000


class TestDeterminismAndWindows:
    def test_deterministic(self):
        ev = _events(0.8 * CAPACITY, scenario="bursty")
        a = run_event_pipeline(ev, PipelineConfig())
        b = run_event_pipeline(ev, PipelineConfig())
        assert pickle.dumps(a.emissions, 4) == pickle.dumps(b.emissions, 4)
        assert (a.processed_records, a.windows_fired, a.corrections,
                a.late_dropped_records, a.max_source_backlog) == \
            (b.processed_records, b.windows_fired, b.corrections,
             b.late_dropped_records, b.max_source_backlog)

    def test_scalar_vectorized_identical_end_to_end(self):
        ev = _events(0.3 * CAPACITY, duration=5.0)
        fast = run_event_pipeline(ev, PipelineConfig(vectorized=True))
        slow = run_event_pipeline(ev, PipelineConfig(vectorized=False))
        assert pickle.dumps(fast.emissions, 4) == \
            pickle.dumps(slow.emissions, 4)

    def test_window_accounting_balances(self):
        r = run_event_pipeline(
            _events(0.3 * CAPACITY, duration=5.0),
            PipelineConfig(watermark_delay=0.2, allowed_lateness=0.0))
        pairs_in = sum(r.window_in.values())
        pairs_late = sum(r.window_late.values())
        assert pairs_in + pairs_late == r.processed_records  # tumbling: 1 pair/rec
        assert r.late_dropped_pairs == pairs_late

    def test_sliding_windows_run(self):
        r = run_event_pipeline(
            _events(0.2 * CAPACITY, duration=4.0),
            PipelineConfig(window=WindowSpec.sliding(2.0, 1.0)))
        assert r.conserved and r.windows_fired > 0

    def test_session_windows_rejected(self):
        with pytest.raises(StreamingError):
            PipelineConfig(window=WindowSpec.session(1.0))
