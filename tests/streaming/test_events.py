"""Vectorized event-time machinery: byte-exactness against the scalar oracle.

The scalar :class:`WatermarkAggregator` fold defines the semantics; every
vectorized path in :mod:`repro.streaming.events` must reproduce it
byte-for-byte (``pickle``) — emissions, internal state, and the
per-window accounting ledgers — across arrival patterns, window kinds,
aggregates, value dtypes, and arbitrary batch boundaries.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StreamingError
from repro.streaming import (
    EventBatch,
    VectorizedWindowAggregator,
    WatermarkAggregator,
    WindowAgg,
    WindowSpec,
    aggregate_sessions,
    assign_sessions,
    assign_sliding,
    assign_tumbling,
    session_windows,
    sliding_windows,
    tumbling_window,
)


def _bytes(obj):
    return pickle.dumps(obj, protocol=4)


def _stream(rng, n, scenario="uniform", vals_kind="int"):
    if scenario == "bursty":
        ts = np.cumsum(np.where(rng.random(n) < 0.3,
                                rng.exponential(0.01, n),
                                rng.exponential(0.3, n)))
    else:
        ts = np.cumsum(rng.exponential(0.1, n))
    ts = ts + rng.normal(0, 0.5, n)          # out-of-order jitter
    keys = rng.integers(0, 5, n)
    if vals_kind == "int":
        vals = rng.integers(-100, 100, n)
    else:
        vals = rng.normal(0, 10, n)
    return ts, keys, vals


class TestEventBatch:
    def test_roundtrip(self):
        recs = [(1.0, "a", 2), (0.5, "b", 3)]
        b = EventBatch.from_records(recs)
        assert b.n == 2
        assert b.to_records() == recs

    def test_concat_and_take(self):
        a = EventBatch(np.array([1.0]), np.array([0]), np.array([5]))
        b = EventBatch(np.array([2.0]), np.array([1]), np.array([6]))
        c = EventBatch.concat([a, b])
        assert c.n == 2
        assert c.take(np.array([1])).to_records() == b.to_records()


class TestAssignment:
    @given(st.lists(st.floats(-1e5, 1e5), max_size=50),
           st.floats(0.1, 100.0), st.floats(-5.0, 5.0))
    @settings(max_examples=150, deadline=None)
    def test_tumbling_matches_scalar(self, ts, size, offset):
        starts = assign_tumbling(np.array(ts), size, offset)
        for t, s in zip(ts, starts):
            assert (s, s + size) == tumbling_window(t, size, offset)

    @given(st.lists(st.floats(-1e4, 1e4), max_size=40),
           st.floats(0.5, 50.0), st.integers(1, 5))
    @settings(max_examples=150, deadline=None)
    def test_sliding_matches_scalar(self, ts, size, divisor):
        slide = size / divisor
        rec, starts = assign_sliding(np.array(ts), size, slide)
        got = {}
        for r, s in zip(rec, starts):
            got.setdefault(int(r), []).append(float(s))
        for i, t in enumerate(ts):
            expect = [s for s, _e in sliding_windows(t, size, slide)]
            assert got.get(i, []) == expect

    def test_sliding_starts_ascend_within_record(self):
        rec, starts = assign_sliding(np.array([7.0, 3.2]), 3.0, 1.0)
        for r in (0, 1):
            ss = starts[rec == r]
            assert list(ss) == sorted(ss)


class TestSessions:
    """Satellite: session edge cases + vectorized-vs-scalar property."""

    def test_empty(self):
        windows, order, sid = assign_sessions(np.empty(0), 1.0)
        assert windows == [] and len(order) == 0 and len(sid) == 0

    def test_single_event(self):
        windows, order, sid = assign_sessions(np.array([3.0]), 2.0)
        assert windows == [(3.0, 5.0)]
        assert list(order) == [0] and list(sid) == [0]

    def test_exact_gap_splits(self):
        # a gap of exactly `gap` starts a new session (>= in the scalar)
        windows, _o, sid = assign_sessions(np.array([0.0, 1.0, 2.0]), 1.0)
        assert windows == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        assert list(sid) == [0, 1, 2]
        just_under = np.array([0.0, 0.999])
        windows, _o, sid = assign_sessions(just_under, 1.0)
        assert len(windows) == 1 and list(sid) == [0, 0]

    def test_unsorted_input(self):
        ts = np.array([5.0, 0.0, 5.5, 0.2])
        windows, order, sid = assign_sessions(ts, 2.0)
        assert windows == session_windows(ts.tolist(), 2.0)
        assert list(ts[order]) == sorted(ts)

    def test_invalid_gap(self):
        with pytest.raises(StreamingError):
            assign_sessions(np.array([1.0]), 0.0)

    @given(st.lists(st.floats(0, 1000), max_size=60), st.floats(0.1, 50))
    @settings(max_examples=150, deadline=None)
    def test_windows_match_scalar(self, ts, gap):
        windows, _o, _s = assign_sessions(np.array(ts), gap)
        assert windows == session_windows(ts, gap)

    @pytest.mark.parametrize("aggname", ["sum", "count", "min", "max"])
    def test_aggregate_matches_scalar(self, aggname):
        rng = np.random.default_rng(sum(ord(c) for c in aggname))
        for trial in range(30):
            n = int(rng.integers(0, 120))
            ts, keys, vals = _stream(rng, max(n, 1),
                                     vals_kind=["int", "float"][trial % 2])
            b = EventBatch(ts[:n], keys[:n], vals[:n])
            gap = float(rng.choice([0.2, 1.0, 5.0]))
            agg = WindowAgg.by_name(aggname)
            fast = aggregate_sessions(b, gap, agg, vectorized=True)
            ref = aggregate_sessions(b, gap, agg, vectorized=False)
            assert _bytes(fast) == _bytes(ref)


def _run_both(spec, aggname, ts, keys, vals, delay, lateness, rng):
    """Feed the same stream through scalar fold and vectorized batches."""
    wagg = WindowAgg.by_name(aggname)
    slide = spec.slide if spec.kind == "sliding" else None
    sc = WatermarkAggregator(spec.size, wagg.agg, wagg.init,
                             watermark_delay=delay,
                             allowed_lateness=lateness, slide=slide)
    vec = VectorizedWindowAggregator(spec, wagg, watermark_delay=delay,
                                     allowed_lateness=lateness)
    out_s, out_v = [], []
    i, n = 0, len(ts)
    while i < n:
        b = int(rng.integers(1, 50))
        for t, k, v in zip(ts[i:i + b].tolist(), keys[i:i + b].tolist(),
                           vals[i:i + b].tolist()):
            out_s.extend(sc.add(t, k, v))
        out_v.extend(vec.add_batch(
            EventBatch(ts[i:i + b], keys[i:i + b], vals[i:i + b])))
        i += b
    out_s.extend(sc.flush())
    out_v.extend(vec.flush())
    return sc, vec, out_s, out_v


def _assert_identical(sc, vec, out_s, out_v):
    assert _bytes(out_s) == _bytes(out_v)
    inner = vec._scalar
    assert _bytes((sc._state, sc._fired, sc._max_ts, sc.dropped,
                   sc.late_corrections)) == \
        _bytes((inner._state, inner._fired, inner._max_ts, inner.dropped,
                inner.late_corrections))
    assert _bytes((sorted(sc.window_in.items(), key=repr),
                   sorted(sc.window_late.items(), key=repr))) == \
        _bytes((sorted(vec.window_in.items(), key=repr),
                sorted(vec.window_late.items(), key=repr)))


class TestWindowedEquivalence:
    """The tentpole contract: vectorized == scalar, byte for byte."""

    @pytest.mark.parametrize("kind", ["tumbling", "sliding"])
    @pytest.mark.parametrize("aggname", ["sum", "count", "min", "max"])
    def test_randomized(self, kind, aggname):
        rng = np.random.default_rng(sum(ord(c) for c in kind + aggname))
        for trial in range(12):
            scenario = ["uniform", "bursty"][trial % 2]
            vals_kind = ["int", "float"][trial % 2]
            n = int(rng.integers(1, 200))
            ts, keys, vals = _stream(rng, n, scenario, vals_kind)
            delay = float(rng.choice([0.0, 0.5, 2.0]))
            lateness = float(rng.choice([0.0, 0.3, 1.0]))
            size = float(rng.choice([0.5, 1.0, 3.0]))
            if kind == "sliding":
                spec = WindowSpec.sliding(size,
                                          size / int(rng.choice([1, 2, 3])))
            else:
                spec = WindowSpec.tumbling(size)
            sc, vec, out_s, out_v = _run_both(
                spec, aggname, ts, keys, vals, delay, lateness, rng)
            _assert_identical(sc, vec, out_s, out_v)

    def test_fast_path_actually_taken(self):
        rng = np.random.default_rng(7)
        ts, keys, vals = _stream(rng, 500)
        spec = WindowSpec.tumbling(1.0)
        _sc, vec, _s, _v = _run_both(spec, "sum", ts, keys, vals,
                                     0.5, 0.5, rng)
        assert vec.fast_batches > 0
        assert vec.fallback_batches == 0

    def test_fallback_on_negative_zero_ts_still_identical(self):
        # -0.0 and 0.0 collide as dict keys but not as float64 bits, so
        # the fast path refuses the batch; the scalar fold handles it
        rng = np.random.default_rng(8)
        ts, keys, vals = _stream(rng, 80)
        ts[17] = -0.0
        spec = WindowSpec.tumbling(1.0)
        sc, vec, out_s, out_v = _run_both(spec, "sum", ts, keys, vals,
                                          0.5, 0.5, rng)
        assert vec.fallback_batches > 0
        assert _bytes(out_s) == _bytes(out_v)

    def test_fallback_on_object_values_still_identical(self):
        rng = np.random.default_rng(9)
        n = 60
        ts = np.sort(rng.uniform(0, 10, n))
        keys = rng.integers(0, 3, n)
        vals = np.empty(n, dtype=object)
        for i in range(n):
            vals[i] = (i,)
        spec = WindowSpec.tumbling(2.0)
        wagg = WindowAgg.custom(lambda s, v: s + (v,), lambda v: (v,))
        sc = WatermarkAggregator(2.0, wagg.agg, wagg.init,
                                 watermark_delay=0.5, allowed_lateness=0.5)
        vec = VectorizedWindowAggregator(spec, wagg, watermark_delay=0.5,
                                         allowed_lateness=0.5)
        out_s, out_v = [], []
        for t, k, v in zip(ts.tolist(), keys.tolist(), list(vals)):
            out_s.extend(sc.add(t, k, v))
        out_v.extend(vec.add_batch(EventBatch(ts, keys, vals)))
        out_s.extend(sc.flush())
        out_v.extend(vec.flush())
        assert vec.fallback_batches == 1
        assert _bytes(out_s) == _bytes(out_v)

    def test_snapshot_restore_roundtrip(self):
        rng = np.random.default_rng(10)
        ts, keys, vals = _stream(rng, 200)
        spec = WindowSpec.tumbling(1.0)
        vec = VectorizedWindowAggregator(spec, WindowAgg.by_name("sum"),
                                         watermark_delay=0.5,
                                         allowed_lateness=0.5)
        out = list(vec.add_batch(EventBatch(ts[:100], keys[:100],
                                            vals[:100])))
        snap = vec.snapshot()
        cont_a = list(vec.add_batch(EventBatch(ts[100:], keys[100:],
                                               vals[100:])))
        cont_a.extend(vec.flush())
        vec.restore(snap)
        cont_b = list(vec.add_batch(EventBatch(ts[100:], keys[100:],
                                               vals[100:])))
        cont_b.extend(vec.flush())
        assert _bytes(cont_a) == _bytes(cont_b)
        assert out is not None


class TestWindowSpec:
    def test_validation(self):
        with pytest.raises(StreamingError):
            WindowSpec.tumbling(0.0)
        with pytest.raises(StreamingError):
            WindowSpec.sliding(1.0, 2.0)
        with pytest.raises(StreamingError):
            WindowSpec.session(0.0)

    def test_agg_by_name(self):
        with pytest.raises(StreamingError):
            WindowAgg.by_name("median")
        assert WindowAgg.by_name("count").kind == "count"
