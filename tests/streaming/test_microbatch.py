"""Micro-batch engine: stability knee, latency model, backpressure."""

import pytest

from repro.common.errors import StreamingError
from repro.streaming import MicroBatchConfig, run_microbatch


class TestConfig:
    def test_batch_time_model(self):
        cfg = MicroBatchConfig(per_record_cost=1e-3, parallelism=4,
                               scheduling_overhead=0.1)
        assert cfg.batch_time(4000) == pytest.approx(0.1 + 1.0)

    def test_validation(self):
        with pytest.raises(StreamingError):
            MicroBatchConfig(batch_interval=0)
        with pytest.raises(StreamingError):
            MicroBatchConfig(throttle_factor=0)


class TestStableRegime:
    def test_latency_about_half_interval_plus_processing(self):
        cfg = MicroBatchConfig(batch_interval=2.0, per_record_cost=1e-5,
                               parallelism=4, scheduling_overhead=0.05)
        r = run_microbatch(lambda t: 1000, cfg, duration=200)
        # interval/2 + batch time ≈ 1.0 + 0.0525
        assert r.latency.p50 == pytest.approx(1.05, rel=0.1)
        assert r.stable

    def test_throughput_matches_offered(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=4)
        r = run_microbatch(lambda t: 5000, cfg, duration=100)
        assert r.throughput == pytest.approx(5000, rel=0.1)

    def test_zero_rate(self):
        cfg = MicroBatchConfig()
        r = run_microbatch(lambda t: 0, cfg, duration=20)
        assert r.processed_records == 0


class TestUnstableRegime:
    def test_overload_grows_backlog(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-4,
                               parallelism=4)
        # batch time = 0.05 + 50000*1e-4/4 = 1.3 > 1.0 -> unstable
        r = run_microbatch(lambda t: 50_000, cfg, duration=120)
        assert not r.stable
        assert r.max_backlog > 10
        assert r.latency.p95 > 10.0

    def test_knee_location(self):
        """Stability flips where batch processing time crosses the interval."""
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-4,
                               parallelism=4, scheduling_overhead=0.05)
        critical = (1.0 - 0.05) * 4 / 1e-4   # 38_000 rec/s
        below = run_microbatch(lambda t: critical * 0.8, cfg, 150)
        above = run_microbatch(lambda t: critical * 1.3, cfg, 150)
        assert below.stable and not above.stable


class TestBackpressure:
    def test_bounds_latency_by_shedding(self):
        over = 50_000
        base = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-4,
                                parallelism=4)
        bp = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-4,
                              parallelism=4, backpressure=True)
        r_no = run_microbatch(lambda t: over, base, 120)
        r_bp = run_microbatch(lambda t: over, bp, 120)
        assert r_bp.latency.p95 < r_no.latency.p95 / 3
        assert r_bp.dropped_records > 0

    def test_no_shedding_when_stable(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=4, backpressure=True)
        r = run_microbatch(lambda t: 1000, cfg, 60)
        assert r.dropped_records == 0

    def test_time_varying_rate(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=4)
        r = run_microbatch(lambda t: 1000 if t < 50 else 3000, cfg, 100)
        assert r.processed_records == pytest.approx(
            50 * 1000 + 50 * 3000, rel=0.05)


class TestEmptyBatches:
    """Zero-record intervals must not enqueue batches that pay overhead."""

    def test_idle_source_enqueues_no_batches(self):
        cfg = MicroBatchConfig(scheduling_overhead=0.05)
        r = run_microbatch(lambda t: 0, cfg, duration=30)
        assert r.processed_records == 0
        assert r.max_backlog == 0
        assert r.batch_times == []

    def test_fully_throttled_interval_skips_batch(self):
        # burst builds a backlog, then a trickle (1 rec/s) is fully
        # throttled away (int(1 * 0.5) == 0): those intervals must not
        # enqueue empty batches that pay scheduling_overhead and inflate
        # the backlog
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-3,
                               parallelism=1, backpressure=True,
                               backlog_threshold=1, throttle_factor=0.5)
        r = run_microbatch(lambda t: 10_000 if t < 5 else 1, cfg,
                           duration=40)
        assert r.dropped_records > 0
        # every scheduled batch carried records: none costs bare overhead
        assert r.batch_times
        assert min(r.batch_times) > cfg.scheduling_overhead
        # latency is batch-size weighted: one observation per record
        assert r.latency.count == r.processed_records

    def test_sentinel_shutdown_still_clean(self):
        # skipping empty batches must not break the sentinel drain path
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=2)
        r = run_microbatch(lambda t: 100 if int(t) % 2 == 0 else 0, cfg,
                           duration=20)
        assert r.processed_records == 10 * 100
        assert r.max_backlog >= 1


class TestAdmissionControl:
    """Token-bucket admission: stable degraded overload, exact accounting."""

    def _overload(self, mode="shed", duration=30.0):
        from repro.resilience import AdmissionConfig
        adm = AdmissionConfig(rate=800.0, burst=1200.0, max_backlog=4,
                              mode=mode)
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=2e-3,
                               parallelism=2, admission=adm)
        return run_microbatch(lambda t: 3000.0, cfg, duration), adm

    def test_overload_is_stable_with_bounded_backlog(self):
        r, adm = self._overload()
        assert r.stable
        assert r.shed_records > 0
        assert r.max_backlog <= adm.max_backlog
        assert r.processed_records > 0

    def test_exact_conservation_in_out_inflight_shed(self):
        r, _adm = self._overload()
        reg = r.registry
        assert reg.value("stream.records_inflight") == 0
        assert reg.value("stream.records_in") == (
            reg.value("stream.records_out")
            + reg.value("stream.records_shed"))
        assert reg.value("stream.records_shed") == r.shed_records

    def test_delay_mode_conserves_and_sheds_less(self):
        shed_r, _ = self._overload(mode="shed")
        delay_r, _ = self._overload(mode="delay")
        for r in (shed_r, delay_r):
            reg = r.registry
            assert reg.value("stream.records_in") == (
                reg.value("stream.records_out")
                + reg.value("stream.records_shed"))
        # delay mode trades latency for completeness: fewer records shed
        assert delay_r.shed_records < shed_r.shed_records

    def test_determinism(self):
        r1, _ = self._overload()
        r2, _ = self._overload()
        assert (r1.processed_records, r1.shed_records, r1.max_backlog,
                r1.batch_times) == (r2.processed_records, r2.shed_records,
                                    r2.max_backlog, r2.batch_times)

    def test_admission_off_keeps_legacy_conservation(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=2)
        r = run_microbatch(lambda t: 500, cfg, duration=20)
        assert r.shed_records == 0
        reg = r.registry
        assert reg.value("stream.records_in") == reg.value(
            "stream.records_out")

    def test_underload_sheds_nothing(self):
        from repro.resilience import AdmissionConfig
        adm = AdmissionConfig(rate=2000.0, burst=4000.0, max_backlog=8)
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=2, admission=adm)
        r = run_microbatch(lambda t: 500, cfg, duration=20)
        assert r.shed_records == 0
        assert r.processed_records == 500 * 20


class TestLegacyThrottleDeprecation:
    """Satellite: admission takes precedence over the legacy throttle,
    and every legacy engagement is visible in an obs counter."""

    def test_legacy_throttle_engagement_counted(self):
        cfg = MicroBatchConfig(batch_interval=0.5, per_record_cost=2e-3,
                               parallelism=1, backpressure=True)
        r = run_microbatch(lambda t: 3000.0, cfg, duration=20)
        assert r.dropped_records > 0
        assert r.registry.value("stream.legacy_throttle_engaged") > 0

    def test_admission_takes_precedence_over_legacy_throttle(self):
        from repro.resilience import AdmissionConfig
        # both knobs armed: admission must win — exact shed accounting,
        # zero lossy throttle drops, and the legacy counter never ticks
        cfg = MicroBatchConfig(batch_interval=0.5, per_record_cost=2e-3,
                               parallelism=1, backpressure=True,
                               admission=AdmissionConfig(
                                   rate=500.0, burst=500.0, max_backlog=4))
        r = run_microbatch(lambda t: 3000.0, cfg, duration=20)
        assert r.shed_records > 0
        assert r.dropped_records == 0
        assert r.registry.value("stream.legacy_throttle_engaged") == 0

    def test_legacy_counter_idle_when_stable(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=2, backpressure=True)
        r = run_microbatch(lambda t: 500, cfg, duration=20)
        assert r.registry.value("stream.legacy_throttle_engaged") == 0


class TestEventTimeWindowing:
    """Satellite: the micro-batch engine carries real event columns and
    runs watermark-driven windowed aggregation when config.window is set."""

    def _windowed(self, **kw):
        from repro.streaming import WindowSpec
        base = dict(batch_interval=0.5, per_record_cost=2e-4, parallelism=2,
                    window=WindowSpec.tumbling(1.0), watermark_delay=0.5,
                    allowed_lateness=0.5, n_keys=8)
        base.update(kw)
        return MicroBatchConfig(**base)

    def test_windows_fire_and_conserve(self):
        r = run_microbatch(lambda t: 800.0, self._windowed(), duration=20)
        assert r.windows_fired > 0
        reg = r.registry
        assert reg.value("stream.records_out") == (
            reg.value("stream.records_windowed")
            + reg.value("stream.records_late_dropped"))
        assert r.late_dropped_records == \
            reg.value("stream.records_late_dropped")

    def test_default_events_are_in_order_no_drops(self):
        # synthesized timestamps are in-interval and monotone, so with a
        # watermark delay nothing can be late-dropped
        r = run_microbatch(lambda t: 800.0, self._windowed(), duration=20)
        assert r.late_dropped_records == 0

    def test_custom_events_fn(self):
        import numpy as np
        from repro.streaming import EventBatch

        def mostly_live_events(t0, n):
            idx = np.arange(n, dtype=np.int64)
            ts = t0 + (idx + 0.5) * (0.5 / n)
            if 4.0 <= t0 and int(t0) % 4 == 0:
                # stale burst: far behind the watermark -> late-dropped
                ts = np.zeros(n)
            return EventBatch(ts, np.zeros(n, dtype=np.int64),
                              np.ones(n, dtype=np.int64))

        r = run_microbatch(lambda t: 400.0, self._windowed(), duration=20,
                           events_fn=mostly_live_events)
        assert r.late_dropped_records > 0
        reg = r.registry
        assert reg.value("stream.records_out") == (
            reg.value("stream.records_windowed")
            + reg.value("stream.records_late_dropped"))

    def test_no_window_means_no_event_path(self):
        cfg = MicroBatchConfig(batch_interval=0.5, per_record_cost=2e-4,
                               parallelism=2)
        r = run_microbatch(lambda t: 800.0, cfg, duration=10)
        assert r.windows_fired == 0
        assert r.registry.value("stream.records_windowed") == 0

    def test_session_window_rejected(self):
        from repro.streaming import WindowSpec
        with pytest.raises(StreamingError):
            MicroBatchConfig(window=WindowSpec.session(1.0))

    def test_deterministic(self):
        a = run_microbatch(lambda t: 800.0, self._windowed(), duration=15)
        b = run_microbatch(lambda t: 800.0, self._windowed(), duration=15)
        assert (a.windows_fired, a.late_corrections,
                a.late_dropped_records, a.processed_records) == \
            (b.windows_fired, b.late_corrections,
             b.late_dropped_records, b.processed_records)
