"""Window assignment and watermark aggregation semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StreamingError
from repro.streaming import (
    WatermarkAggregator,
    session_windows,
    sliding_windows,
    tumbling_window,
)


class TestTumbling:
    def test_basic(self):
        assert tumbling_window(12.3, 5) == (10.0, 15.0)

    def test_boundary_belongs_to_next(self):
        assert tumbling_window(10.0, 5) == (10.0, 15.0)

    def test_negative_time(self):
        assert tumbling_window(-0.5, 5) == (-5.0, 0.0)

    def test_offset(self):
        assert tumbling_window(12.0, 5, offset=2) == (12.0, 17.0)

    def test_invalid_size(self):
        with pytest.raises(StreamingError):
            tumbling_window(1, 0)

    @given(st.floats(-1e6, 1e6), st.floats(0.1, 1e4))
    @settings(max_examples=100, deadline=None)
    def test_contains_ts(self, ts, size):
        s, e = tumbling_window(ts, size)
        assert s <= ts < e + 1e-6
        assert e - s == pytest.approx(size)


class TestSliding:
    def test_count(self):
        assert len(sliding_windows(7.0, 10, 5)) == 2
        assert len(sliding_windows(7.0, 9, 3)) == 3

    def test_all_contain_ts(self):
        for s, e in sliding_windows(12.3, 10, 3):
            assert s <= 12.3 < e

    def test_slide_exceeding_size_rejected(self):
        with pytest.raises(StreamingError):
            sliding_windows(1.0, 5, 10)

    def test_slide_equals_size_is_tumbling(self):
        ws = sliding_windows(12.3, 5, 5)
        assert ws == [tumbling_window(12.3, 5)]

    @given(st.floats(0, 1e5), st.floats(1, 100), st.floats(0.5, 100))
    @settings(max_examples=100, deadline=None)
    def test_window_alignment(self, ts, size, slide):
        if slide > size:
            return
        ws = sliding_windows(ts, size, slide)
        assert ws == sorted(ws)
        for s, e in ws:
            assert s <= ts < e
            assert e - s == pytest.approx(size)


class TestSessions:
    def test_gap_splits(self):
        assert session_windows([1, 2, 3, 10, 11, 30], gap=5) == \
            [(1, 8), (10, 16), (30, 35)]

    def test_single_event(self):
        assert session_windows([5], gap=2) == [(5, 7)]

    def test_unsorted_input(self):
        assert session_windows([30, 1, 10], gap=5) == \
            [(1, 6), (10, 15), (30, 35)]

    def test_empty(self):
        assert session_windows([], gap=5) == []

    def test_invalid_gap(self):
        with pytest.raises(StreamingError):
            session_windows([1], gap=0)

    @given(st.lists(st.floats(0, 1e4), max_size=200), st.floats(0.1, 100))
    @settings(max_examples=80, deadline=None)
    def test_sessions_partition_events(self, ts, gap):
        sessions = session_windows(ts, gap)
        # non-overlapping, ordered, and every event inside some session
        for (s1, e1), (s2, e2) in zip(sessions, sessions[1:]):
            assert e1 <= s2
        for t in ts:
            assert any(s <= t < e for s, e in sessions)


class TestWatermarkAggregator:
    def test_window_fires_when_watermark_passes(self):
        agg = WatermarkAggregator(10.0, lambda a, b: a + b)
        out = []
        out += agg.add(1, "k", 5)
        out += agg.add(5, "k", 5)
        assert out == []                   # watermark at 5 < window end 10
        out += agg.add(11, "k", 1)
        assert len(out) == 1
        assert out[0].value == 10 and out[0].window == (0.0, 10.0)

    def test_watermark_delay_postpones_firing(self):
        agg = WatermarkAggregator(10.0, lambda a, b: a + b,
                                  watermark_delay=5.0)
        assert agg.add(1, "k", 1) == []
        assert agg.add(11, "k", 1) == []   # watermark only 6
        fired = agg.add(16, "k", 1)
        assert len(fired) == 1

    def test_late_record_within_lateness_corrects(self):
        agg = WatermarkAggregator(10.0, lambda a, b: a + b,
                                  allowed_lateness=20.0)
        agg.add(1, "k", 1)
        agg.add(12, "k", 1)                # fires (0,10) with value 1
        out = agg.add(5, "k", 100)         # late but allowed
        assert any(r.correction and r.value == 101 for r in out)
        assert agg.late_corrections == 1

    def test_too_late_record_dropped(self):
        agg = WatermarkAggregator(10.0, lambda a, b: a + b,
                                  allowed_lateness=0.0)
        agg.add(1, "k", 1)
        agg.add(50, "k", 1)
        agg.add(2, "k", 100)               # way past lateness
        assert agg.dropped == 1

    def test_per_key_isolation(self):
        agg = WatermarkAggregator(10.0, lambda a, b: a + b)
        agg.add(1, "a", 1)
        agg.add(2, "b", 10)
        fired = agg.add(15, "c", 0)
        got = {r.key: r.value for r in fired}
        assert got == {"a": 1, "b": 10}

    def test_flush_emits_remaining(self):
        agg = WatermarkAggregator(10.0, lambda a, b: a + b)
        agg.add(3, "k", 7)
        out = agg.flush()
        assert len(out) == 1 and out[0].value == 7

    def test_init_transform_count_semantics(self):
        agg = WatermarkAggregator(10.0, lambda acc, v: acc + 1,
                                  init=lambda v: 1)
        agg.add(1, "k", "x")
        agg.add(2, "k", "y")
        out = agg.flush()
        assert out[0].value == 2    # count semantics via init/agg

    def test_validation(self):
        with pytest.raises(StreamingError):
            WatermarkAggregator(0, lambda a, b: a)
        with pytest.raises(StreamingError):
            WatermarkAggregator(1, lambda a, b: a, watermark_delay=-1)

    @given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 3),
                              st.integers(1, 5)), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_no_lateness_totals_match(self, events):
        """With unlimited lateness, firing + flush account for every record."""
        agg = WatermarkAggregator(10.0, lambda a, b: a + b,
                                  allowed_lateness=1e9)
        emitted = {}
        for ts, key, v in events:
            for r in agg.add(ts, key, v):
                emitted[(r.key, r.window)] = r.value
        for r in agg.flush():
            emitted[(r.key, r.window)] = r.value
        expected = {}
        for ts, key, v in events:
            w = tumbling_window(ts, 10.0)
            expected[(key, w)] = expected.get((key, w), 0) + v
        assert emitted == expected
