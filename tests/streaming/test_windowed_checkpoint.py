"""Exactly-once *windowed* streaming: emissions survive crashes intact.

:func:`run_windowed_stream` checkpoints the aggregator together with the
emission-log length; a crash truncates emissions past the checkpoint and
re-emits them during replay.  The contract is stronger than state
equality: the full ordered emission log must be byte-identical to a
crash-free run, for any crash plan, and the per-window accounting ledger
must balance against an independent recount.
"""

import pickle

import numpy as np
import pytest

from repro.common.errors import StreamingError
from repro.streaming import (
    CheckpointConfig,
    WindowAgg,
    WindowSpec,
    assign_tumbling,
    run_windowed_stream,
)


def _bytes(obj):
    return pickle.dumps(obj, protocol=4)


def make_events(n=600, span=60.0, keys=6, seed=0):
    rng = np.random.default_rng(seed)
    arrival = np.sort(rng.uniform(0.0, span, n))
    ts = np.maximum(arrival - rng.exponential(0.4, n), 0.0)
    k = rng.integers(0, keys, n)
    v = rng.integers(1, 40, n)
    return [(float(a), float(t), int(kk), int(vv))
            for a, t, kk, vv in zip(arrival, ts, k, v)]


WINDOW = WindowSpec.tumbling(2.0)
AGG = WindowAgg.by_name("sum")
CFG = CheckpointConfig(interval=8.0)
KW = dict(watermark_delay=1.0, allowed_lateness=1.0)


class TestExactlyOnce:
    def test_no_crash_baseline(self):
        run = run_windowed_stream(make_events(), WINDOW, AGG, CFG, **KW)
        assert run.processed_events == 600
        assert run.emissions and run.recoveries == []
        assert run.checkpoints_taken > 0

    @pytest.mark.parametrize("crashes", [
        (7.3,), (7.3, 12.1, 29.9), (55.0, 59.5, 70.0),   # incl. trailing
    ])
    def test_emissions_byte_equal_after_crashes(self, crashes):
        events = make_events()
        free = run_windowed_stream(events, WINDOW, AGG, CFG, **KW)
        crashed = run_windowed_stream(events, WINDOW, AGG, CFG,
                                      crash_times=crashes, **KW)
        assert _bytes(crashed.emissions) == _bytes(free.emissions)
        assert len(crashed.recoveries) == len(crashes)
        assert crashed.processed_events == free.processed_events
        assert crashed.total_recovery_time > 0

    def test_emissions_truncated_and_replayed(self):
        events = make_events()
        crashed = run_windowed_stream(events, WINDOW, AGG, CFG,
                                      crash_times=(20.0,), **KW)
        reg = crashed.registry
        assert reg.value("ckpt.emissions_truncated") > 0
        assert reg.value("ckpt.events_replayed") > 0

    def test_scalar_path_identical(self):
        events = make_events(seed=3)
        fast = run_windowed_stream(events, WINDOW, AGG, CFG,
                                   crash_times=(11.0, 31.0), **KW)
        slow = run_windowed_stream(events, WINDOW, AGG, CFG,
                                   crash_times=(11.0, 31.0),
                                   vectorized=False, **KW)
        assert _bytes(fast.emissions) == _bytes(slow.emissions)

    def test_batch_partitioning_invariant(self):
        events = make_events(seed=4)
        a = run_windowed_stream(events, WINDOW, AGG, CFG,
                                batch_records=32, **KW)
        b = run_windowed_stream(events, WINDOW, AGG, CFG,
                                batch_records=512, **KW)
        assert _bytes(a.emissions) == _bytes(b.emissions)


class TestPerWindowConservation:
    @pytest.mark.parametrize("crashes", [(), (9.0, 33.3)])
    def test_ledger_balances(self, crashes):
        events = make_events(seed=5)
        run = run_windowed_stream(events, WINDOW, AGG, CFG,
                                  crash_times=crashes, **KW)
        starts = assign_tumbling(np.array([e[1] for e in events]),
                                 WINDOW.size)
        assigned = {}
        for (_a, _t, k, _v), s in zip(events, starts):
            w = (k, float(s))
            assigned[w] = assigned.get(w, 0) + 1
        for w, count in assigned.items():
            got = run.window_in.get(w, 0) + run.window_late.get(w, 0)
            assert got == count, f"window {w}: {got} != {count}"
        assert sum(run.window_in.values()) + sum(run.window_late.values()) \
            == len(events)

    def test_late_drops_counted(self):
        # tight lateness forces drops; they land in the ledger, not limbo
        events = make_events(seed=6)
        run = run_windowed_stream(events, WINDOW, AGG, CFG,
                                  watermark_delay=0.0, allowed_lateness=0.0)
        assert run.late_dropped > 0
        assert sum(run.window_in.values()) + sum(run.window_late.values()) \
            == len(events)


class TestValidation:
    def test_bad_batch_records(self):
        with pytest.raises(StreamingError):
            run_windowed_stream([], WINDOW, AGG, CFG, batch_records=0)

    def test_empty_stream(self):
        run = run_windowed_stream([], WINDOW, AGG, CFG)
        assert run.emissions == [] and run.processed_events == 0
