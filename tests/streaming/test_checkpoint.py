"""Stateful streaming with checkpoint/replay recovery."""

import operator

import pytest

from repro.common.errors import StreamingError
from repro.streaming import CheckpointConfig, run_stateful_stream


def make_events(n=200, keys=4):
    return [(float(i), i % keys, 1) for i in range(n)]


def crash_free_state(events):
    state = {}
    for _t, k, v in sorted(events):
        state[k] = state.get(k, 0) + v
    return state


AGG = operator.add
INIT = lambda v: v


class TestNoFailure:
    def test_state_matches_reference(self):
        events = make_events()
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=10))
        assert run.state == crash_free_state(events)
        assert run.processed_events == len(events)
        assert not run.recoveries

    def test_checkpoint_count(self):
        events = make_events(100)           # event times 0..99
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=25))
        assert run.checkpoints_taken == 3   # t=25, 50, 75
        assert run.checkpoint_overhead == pytest.approx(3 * 0.2)

    def test_shorter_interval_higher_overhead(self):
        events = make_events(400)
        short = run_stateful_stream(events, AGG, INIT,
                                    CheckpointConfig(interval=5))
        long = run_stateful_stream(events, AGG, INIT,
                                   CheckpointConfig(interval=100))
        assert short.checkpoint_overhead > 5 * long.checkpoint_overhead


class TestRecovery:
    def test_state_exact_after_crash(self):
        events = make_events(300)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=50),
                                  crash_times=[123.5])
        assert run.state == crash_free_state(events)
        assert len(run.recoveries) == 1
        r = run.recoveries[0]
        assert r.checkpoint_offset == 100.0
        assert r.replayed_events == 24      # events 100..123

    def test_multiple_crashes(self):
        events = make_events(300)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=30),
                                  crash_times=[50.5, 200.5])
        assert run.state == crash_free_state(events)
        assert len(run.recoveries) == 2

    def test_crash_before_first_checkpoint_replays_from_zero(self):
        events = make_events(100)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=1000),
                                  crash_times=[60.5])
        r = run.recoveries[0]
        assert r.checkpoint_offset == 0.0
        assert r.replayed_events == 61
        assert run.state == crash_free_state(events)

    def test_recovery_time_tradeoff(self):
        """The A4 tradeoff: longer intervals -> cheaper steady state but
        costlier recovery."""
        events = make_events(1000)
        crash = [799.5]
        short = run_stateful_stream(events, AGG, INIT,
                                    CheckpointConfig(interval=10),
                                    crash_times=crash)
        long = run_stateful_stream(events, AGG, INIT,
                                   CheckpointConfig(interval=300),
                                   crash_times=crash)
        assert short.checkpoint_overhead > long.checkpoint_overhead
        assert short.total_recovery_time < long.total_recovery_time
        assert short.state == long.state == crash_free_state(events)

    def test_unsorted_events_accepted(self):
        events = [(3.0, "a", 1), (1.0, "a", 1), (2.0, "b", 5)]
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=10))
        assert run.state == {"a": 2, "b": 5}


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(StreamingError):
            CheckpointConfig(interval=0)
        with pytest.raises(StreamingError):
            CheckpointConfig(replay_speedup=0)
