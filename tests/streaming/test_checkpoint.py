"""Stateful streaming with checkpoint/replay recovery."""

import operator

import pytest

from repro.common.errors import StreamingError
from repro.streaming import CheckpointConfig, run_stateful_stream


def make_events(n=200, keys=4):
    return [(float(i), i % keys, 1) for i in range(n)]


def crash_free_state(events):
    state = {}
    for _t, k, v in sorted(events):
        state[k] = state.get(k, 0) + v
    return state


AGG = operator.add
INIT = lambda v: v


class TestNoFailure:
    def test_state_matches_reference(self):
        events = make_events()
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=10))
        assert run.state == crash_free_state(events)
        assert run.processed_events == len(events)
        assert not run.recoveries

    def test_checkpoint_count(self):
        events = make_events(100)           # event times 0..99
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=25))
        assert run.checkpoints_taken == 3   # t=25, 50, 75
        assert run.checkpoint_overhead == pytest.approx(3 * 0.2)

    def test_shorter_interval_higher_overhead(self):
        events = make_events(400)
        short = run_stateful_stream(events, AGG, INIT,
                                    CheckpointConfig(interval=5))
        long = run_stateful_stream(events, AGG, INIT,
                                   CheckpointConfig(interval=100))
        assert short.checkpoint_overhead > 5 * long.checkpoint_overhead


class TestRecovery:
    def test_state_exact_after_crash(self):
        events = make_events(300)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=50),
                                  crash_times=[123.5])
        assert run.state == crash_free_state(events)
        assert len(run.recoveries) == 1
        r = run.recoveries[0]
        assert r.checkpoint_offset == 100.0
        assert r.replayed_events == 24      # events 100..123

    def test_multiple_crashes(self):
        events = make_events(300)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=30),
                                  crash_times=[50.5, 200.5])
        assert run.state == crash_free_state(events)
        assert len(run.recoveries) == 2

    def test_crash_before_first_checkpoint_replays_from_zero(self):
        events = make_events(100)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=1000),
                                  crash_times=[60.5])
        r = run.recoveries[0]
        assert r.checkpoint_offset == 0.0
        assert r.replayed_events == 61
        assert run.state == crash_free_state(events)

    def test_recovery_time_tradeoff(self):
        """The A4 tradeoff: longer intervals -> cheaper steady state but
        costlier recovery."""
        events = make_events(1000)
        crash = [799.5]
        short = run_stateful_stream(events, AGG, INIT,
                                    CheckpointConfig(interval=10),
                                    crash_times=crash)
        long = run_stateful_stream(events, AGG, INIT,
                                   CheckpointConfig(interval=300),
                                   crash_times=crash)
        assert short.checkpoint_overhead > long.checkpoint_overhead
        assert short.total_recovery_time < long.total_recovery_time
        assert short.state == long.state == crash_free_state(events)

    def test_unsorted_events_accepted(self):
        events = [(3.0, "a", 1), (1.0, "a", 1), (2.0, "b", 5)]
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=10))
        assert run.state == {"a": 2, "b": 5}


class TestTrailingCrash:
    """Crashes after the last event must still be recovered and accounted."""

    def test_crash_after_last_event_recorded(self):
        events = make_events(100)           # event times 0..99
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=25),
                                  crash_times=[150.0])
        assert len(run.recoveries) == 1
        r = run.recoveries[0]
        assert r.checkpoint_offset == 75.0
        assert r.replayed_events == 25      # events 75..99
        assert run.total_recovery_time > 0
        assert run.state == crash_free_state(events)

    def test_crash_just_past_last_event(self):
        events = make_events(100)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=25),
                                  crash_times=[99.5])
        assert len(run.recoveries) == 1
        assert run.state == crash_free_state(events)

    def test_mixed_mid_and_trailing_crashes(self):
        events = make_events(60)
        run = run_stateful_stream(events, AGG, INIT,
                                  CheckpointConfig(interval=20),
                                  crash_times=[30.5, 70.0, 200.0])
        assert len(run.recoveries) == 3
        assert run.state == crash_free_state(events)


class TestMutatingAggregator:
    """Snapshots must be deep copies: in-place aggs must not corrupt them."""

    @staticmethod
    def _agg(acc, v):
        acc.append(v)
        return acc

    @staticmethod
    def _init(v):
        return [v]

    def test_in_place_agg_state_survives_crash(self):
        events = [(float(i), i % 3, i) for i in range(100)]
        free = run_stateful_stream(events, self._agg, self._init,
                                   CheckpointConfig(interval=10))
        crashed = run_stateful_stream(events, self._agg, self._init,
                                      CheckpointConfig(interval=10),
                                      crash_times=[55.5])
        assert crashed.state == free.state

    def test_in_place_agg_repeated_crashes_same_checkpoint(self):
        # two crashes that both roll back to the same snapshot: the first
        # replay must not have mutated what the second replay starts from
        events = [(float(i), i % 2, i) for i in range(40)]
        free = run_stateful_stream(events, self._agg, self._init,
                                   CheckpointConfig(interval=15))
        crashed = run_stateful_stream(events, self._agg, self._init,
                                      CheckpointConfig(interval=15),
                                      crash_times=[20.5, 25.5])
        assert len(crashed.recoveries) == 2
        assert crashed.state == free.state


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(StreamingError):
            CheckpointConfig(interval=0)
        with pytest.raises(StreamingError):
            CheckpointConfig(replay_speedup=0)
