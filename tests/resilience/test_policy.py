"""Deadlines and retry sessions: budgets, backoff, jitter, typed errors."""

import pytest

from repro.common.errors import DeadlineExceededError, RetryBudgetExhaustedError
from repro.resilience import Attempt, Deadline, RetryPolicy


class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(10.0, 5.0)
        assert d.expires_at == 15.0
        assert d.remaining(12.0) == pytest.approx(3.0)
        assert d.remaining(20.0) == 0.0

    def test_expired_is_strict(self):
        d = Deadline(expires_at=4.0)
        assert not d.expired(4.0)
        assert d.expired(4.0 + 1e-9)

    def test_check_raises_typed_with_context(self):
        d = Deadline(expires_at=1.0)
        d.check(0.5)  # fine
        with pytest.raises(DeadlineExceededError) as ei:
            d.check(2.0, op="collect")
        assert ei.value.deadline == 1.0
        assert ei.value.now == 2.0
        assert ei.value.op == "collect"


class TestRetrySession:
    def test_zero_base_delay_means_immediate_retries(self):
        s = RetryPolicy(max_attempts=4, base_delay=0.0).session("k")
        assert s.record_failure("op", "boom", 1.0) == 0.0
        assert s.record_failure("op", "boom", 2.0) == 0.0
        assert s.attempts_for("op") == 2

    def test_max_attempts_raises_with_history(self):
        s = RetryPolicy(max_attempts=3).session("k", job="j1", stage=7)
        s.record_failure("op", "e1", 1.0)
        s.record_failure("op", "e2", 2.0)
        with pytest.raises(RetryBudgetExhaustedError) as ei:
            s.record_failure("op", "e3", 3.0)
        exc = ei.value
        assert exc.op == "op"
        assert exc.job == "j1"
        assert exc.stage == 7
        assert [a.error for a in exc.attempts] == ["e1", "e2", "e3"]
        assert all(isinstance(a, Attempt) for a in exc.attempts)
        assert "e3" in exc.describe()

    def test_success_resets_per_op_count(self):
        s = RetryPolicy(max_attempts=2).session("k")
        s.record_failure("op", "e", 1.0)
        s.record_success("op", 1.5)
        # counter reset: one more failure does not exhaust
        s.record_failure("op", "e", 2.0)
        assert s.attempts_for("op") == 1

    def test_ops_are_independent(self):
        s = RetryPolicy(max_attempts=2).session("k")
        s.record_failure("a", "e", 1.0)
        s.record_failure("b", "e", 1.0)
        assert s.attempts_for("a") == 1
        assert s.attempts_for("b") == 1

    def test_session_budget_spans_ops(self):
        s = RetryPolicy(max_attempts=100, budget=3).session("k")
        s.record_failure("a", "e", 1.0)
        s.record_failure("b", "e", 2.0)
        s.record_failure("c", "e", 3.0)
        assert s.budget_left == 0
        with pytest.raises(RetryBudgetExhaustedError) as ei:
            s.record_failure("d", "e", 4.0)
        assert ei.value.budget == 3
        assert len(ei.value.attempts) == 4

    def test_unlimited_budget(self):
        s = RetryPolicy(max_attempts=1000, budget=None).session("k")
        for i in range(50):
            s.record_failure(f"op{i}", "e", float(i))
        assert s.budget_left is None

    def test_exponential_backoff_without_jitter(self):
        pol = RetryPolicy(max_attempts=10, base_delay=0.5, multiplier=2.0,
                          max_delay=3.0, jitter="none")
        s = pol.session("k")
        delays = [s.record_failure("op", "e", float(i)) for i in range(4)]
        assert delays == [0.5, 1.0, 2.0, 3.0]   # capped at max_delay

    def test_decorrelated_jitter_within_bounds_and_capped(self):
        pol = RetryPolicy(max_attempts=50, base_delay=0.1, max_delay=2.0,
                          jitter="decorrelated", seed=5)
        s = pol.session("k")
        prev = pol.base_delay
        for i in range(20):
            d = s.record_failure("op", "e", float(i))
            assert pol.base_delay <= d <= min(pol.max_delay,
                                              max(pol.base_delay, prev * 3.0))
            prev = d

    def test_jitter_streams_differ_by_session_key(self):
        pol = RetryPolicy(max_attempts=50, base_delay=0.1, seed=1)
        a = pol.session("jobA")
        b = pol.session("jobB")
        da = [a.record_failure("op", "e", float(i)) for i in range(8)]
        db = [b.record_failure("op", "e", float(i)) for i in range(8)]
        assert da != db

    def test_exhausted_failure_records_zero_delay(self):
        s = RetryPolicy(max_attempts=2, base_delay=1.0).session("k")
        s.record_failure("op", "e", 1.0)
        with pytest.raises(RetryBudgetExhaustedError) as ei:
            s.record_failure("op", "e", 2.0)
        assert ei.value.attempts[-1].delay == 0.0
