"""Circuit breaker state machine: closed -> open -> half-open -> closed."""

from repro.resilience import BreakerConfig, CircuitBreaker


def _breaker(**kw):
    return CircuitBreaker(BreakerConfig(**kw))


class TestCircuitBreaker:
    def test_closed_allows(self):
        b = _breaker()
        assert b.state("n", 0.0) == "closed"
        assert b.allow("n", 0.0)

    def test_opens_after_consecutive_failures(self):
        b = _breaker(failure_threshold=3)
        b.record_failure("n", 1.0)
        b.record_failure("n", 2.0)
        assert b.state("n", 2.0) == "closed"
        b.record_failure("n", 3.0)
        assert b.state("n", 3.0) == "open"
        assert not b.allow("n", 3.5)
        assert b.trips == 1

    def test_success_resets_failure_run(self):
        b = _breaker(failure_threshold=3)
        b.record_failure("n", 1.0)
        b.record_failure("n", 2.0)
        b.record_success("n", 2.5)
        b.record_failure("n", 3.0)
        b.record_failure("n", 4.0)
        assert b.state("n", 4.0) == "closed"

    def test_half_open_after_recovery_time(self):
        b = _breaker(failure_threshold=1, recovery_time=10.0)
        b.record_failure("n", 0.0)
        assert b.state("n", 9.9) == "open"
        assert b.state("n", 10.0) == "half_open"

    def test_half_open_admits_single_probe(self):
        b = _breaker(failure_threshold=1, recovery_time=10.0)
        b.record_failure("n", 0.0)
        assert b.allow("n", 10.0)        # the probe
        assert not b.allow("n", 10.1)    # probe already out

    def test_probe_success_closes(self):
        b = _breaker(failure_threshold=1, recovery_time=10.0,
                     half_open_successes=1)
        b.record_failure("n", 0.0)
        assert b.allow("n", 11.0)
        b.record_success("n", 12.0)
        assert b.state("n", 12.0) == "closed"
        assert b.allow("n", 12.0)

    def test_probe_failure_reopens(self):
        b = _breaker(failure_threshold=1, recovery_time=10.0)
        b.record_failure("n", 0.0)
        assert b.allow("n", 11.0)
        b.record_failure("n", 12.0)
        assert b.state("n", 12.0) == "open"
        assert b.trips == 2
        # the clock restarts from the re-trip
        assert b.state("n", 21.9) == "open"
        assert b.state("n", 22.0) == "half_open"

    def test_multi_probe_close(self):
        b = _breaker(failure_threshold=1, recovery_time=5.0,
                     half_open_successes=2)
        b.record_failure("n", 0.0)
        assert b.allow("n", 6.0)
        b.record_success("n", 6.5)
        assert b.state("n", 6.5) == "half_open"   # one more success needed
        assert b.allow("n", 7.0)
        b.record_success("n", 7.5)
        assert b.state("n", 7.5) == "closed"

    def test_trip_is_definitive(self):
        b = _breaker(failure_threshold=100)
        b.trip("n", 5.0)
        assert b.state("n", 5.0) == "open"
        assert not b.allow("n", 6.0)

    def test_reset_is_definitive(self):
        b = _breaker(failure_threshold=1)
        b.record_failure("n", 0.0)
        b.reset("n")
        assert b.state("n", 0.1) == "closed"
        assert b.allow("n", 0.1)

    def test_targets_are_independent(self):
        b = _breaker(failure_threshold=1)
        b.record_failure("a", 0.0)
        assert not b.allow("a", 0.1)
        assert b.allow("b", 0.1)

    def test_failures_while_open_are_ignored(self):
        b = _breaker(failure_threshold=1, recovery_time=10.0)
        b.record_failure("n", 0.0)
        b.record_failure("n", 1.0)   # no re-trip, no clock restart
        assert b.trips == 1
        assert b.state("n", 10.0) == "half_open"
