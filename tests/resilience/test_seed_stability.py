"""Seed stability: same seeds => same fault plans, traces, retry schedules.

The determinism contract spans both randomized subsystems this PR ties
together: the chaos planner's Poisson renewal process and the retry
policy's decorrelated jitter.  Identical seeds must reproduce the
injection trace and the backoff schedule bit-for-bit; different seeds
must diverge.
"""

from operator import add

from repro.chaos import ClusterChaos, EngineChaos, FaultPlan, InjectionTrace
from repro.cluster import make_cluster
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.resilience import ResiliencePolicies, RetryPolicy
from repro.simcore import Simulator

RATES = {"node_fail": 2.0, "slow_node": 4.0, "task_crash": 12.0}
TARGETS = [f"h{r}_{i}" for r in range(2) for i in range(4)]


def _plan(seed):
    return FaultPlan.renewal(seed, horizon=0.4, rates=RATES,
                             targets=TARGETS, mean_duration=0.1)


class TestPlanSeedStability:
    def test_same_seed_same_events(self):
        a, b = _plan(3), _plan(3)
        assert tuple(e.key() for e in a) == tuple(e.key() for e in b)

    def test_different_seed_different_events(self):
        a, b = _plan(3), _plan(4)
        assert tuple(e.key() for e in a) != tuple(e.key() for e in b)


class TestJitterSeedStability:
    def _schedule(self, seed, key="job"):
        s = RetryPolicy(max_attempts=100, base_delay=0.05,
                        seed=seed).session(key)
        return [s.record_failure("op", "e", float(i)) for i in range(12)]

    def test_same_seed_same_schedule(self):
        assert self._schedule(7) == self._schedule(7)

    def test_different_seed_different_schedule(self):
        assert self._schedule(7) != self._schedule(8)


class TestEndToEndSeedStability:
    """One faulted, policy-enabled run replayed: trace + retry history."""

    def _run(self, seed):
        sim = Simulator()
        cluster = make_cluster(sim, n_racks=2, nodes_per_rack=4)
        ctx = DataflowContext(default_parallelism=8)
        policies = ResiliencePolicies(
            retry=RetryPolicy(max_attempts=20, base_delay=0.005, seed=seed))
        engine = SimEngine(cluster,
                           config=EngineConfig(max_task_retries=20,
                                               resilience=policies),
                           cost_model=CostModel(cpu_per_record=2e-4))
        words = ["a", "b", "c", "d"] * 600
        ds = (ctx.parallelize(words, 8).map(lambda w: (w, 1))
              .reduce_by_key(add, 4))
        trace = InjectionTrace()
        plan = _plan(seed)
        ClusterChaos(cluster, plan, trace).start()
        chaos = EngineChaos(engine, plan, trace)
        chaos.start()
        res = sim.run_until_done(engine.collect(ds))
        return sorted(res.value), trace.signature(), sim.now

    def test_identical_seeds_identical_runs(self):
        r1 = self._run(2)
        r2 = self._run(2)
        assert r1 == r2   # results, injection trace, and end time

    def test_results_survive_faults(self):
        result, sig, _now = self._run(2)
        assert sum(c for _w, c in result) == 2400
