"""Hedged requests: quantile delays, first-wins racing, loser cancellation."""

import pytest

from repro.resilience import HedgePolicy, quantile, run_hedged
from repro.simcore import Simulator
from repro.simcore.resources import Store


class TestQuantile:
    def test_nearest_rank(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantile(xs, 0.5) == 3.0
        assert quantile(xs, 0.95) == 5.0
        assert quantile(xs, 0.0) == 1.0
        assert quantile([7.0], 0.5) == 7.0

    def test_unsorted_input(self):
        assert quantile([5.0, 1.0, 3.0], 0.5) == 3.0


class TestHedgePolicy:
    def test_unestimable_below_min_samples(self):
        pol = HedgePolicy(min_samples=3)
        assert pol.delay([1.0, 2.0]) is None

    def test_delay_is_multiplier_times_quantile(self):
        pol = HedgePolicy(quantile=0.5, multiplier=2.0, min_samples=3)
        assert pol.delay([1.0, 2.0, 3.0]) == pytest.approx(4.0)

    def test_min_delay_floor(self):
        pol = HedgePolicy(quantile=0.5, multiplier=1.0, min_delay=10.0,
                          min_samples=1)
        assert pol.delay([0.5]) == 10.0


def _timed_launch(sim, durations, cancels=None, fail=()):
    """launch(i) -> event succeeding with f"r{i}" after durations[i]."""
    def launch(i):
        ev = sim.event()

        def _run():
            yield sim.timeout(durations[i])
            if not ev.triggered:
                if i in fail:
                    ev.fail(RuntimeError(f"err{i}"))
                else:
                    ev.succeed(f"r{i}")
        sim.process(_run(), name=f"attempt{i}")
        cancel = None
        if cancels is not None:
            cancel = lambda i=i: cancels.append(i)
        return ev, cancel
    return launch


class TestRunHedged:
    def test_fast_primary_wins_without_hedging(self):
        sim = Simulator()
        cancels = []
        done = run_hedged(sim, _timed_launch(sim, [1.0, 1.0], cancels),
                          delay=5.0)
        value, idx = sim.run_until_done(done)
        assert (value, idx) == ("r0", 0)
        assert cancels == []        # no hedge, nothing to cancel
        assert sim.now == pytest.approx(1.0)

    def test_slow_primary_loses_to_hedge(self):
        sim = Simulator()
        cancels = []
        done = run_hedged(sim, _timed_launch(sim, [10.0, 1.0], cancels),
                          delay=2.0)
        value, idx = sim.run_until_done(done)
        assert (value, idx) == ("r1", 1)
        assert cancels == [0]       # the primary was withdrawn
        assert sim.now == pytest.approx(3.0)   # 2.0 delay + 1.0 hedge

    def test_primary_win_after_hedge_launch(self):
        sim = Simulator()
        cancels = []
        done = run_hedged(sim, _timed_launch(sim, [3.0, 5.0], cancels),
                          delay=2.0)
        value, idx = sim.run_until_done(done)
        assert (value, idx) == ("r0", 0)
        assert cancels == [1]

    def test_tie_goes_to_primary(self):
        sim = Simulator()
        done = run_hedged(sim, _timed_launch(sim, [3.0, 1.0]), delay=2.0)
        value, idx = sim.run_until_done(done)
        assert idx == 0             # both complete at t=3.0; primary wins

    def test_primary_failure_before_delay_passes_through(self):
        sim = Simulator()
        done = run_hedged(sim, _timed_launch(sim, [1.0, 1.0], fail={0}),
                          delay=5.0)
        with pytest.raises(RuntimeError, match="err0"):
            sim.run_until_done(done)

    def test_failed_primary_falls_back_to_hedge(self):
        sim = Simulator()
        done = run_hedged(sim, _timed_launch(sim, [3.0, 2.0], fail={0}),
                          delay=1.0)
        value, idx = sim.run_until_done(done)
        assert (value, idx) == ("r1", 1)

    def test_failed_hedge_waits_for_primary(self):
        sim = Simulator()
        done = run_hedged(sim, _timed_launch(sim, [6.0, 1.0], fail={1}),
                          delay=2.0)
        value, idx = sim.run_until_done(done)
        assert (value, idx) == ("r0", 0)

    def test_both_fail_reports_primary_error(self):
        sim = Simulator()
        done = run_hedged(sim, _timed_launch(sim, [4.0, 1.0], fail={0, 1}),
                          delay=2.0)
        with pytest.raises(RuntimeError, match="err0"):
            sim.run_until_done(done)

    def test_store_cancel_get_plumbing(self):
        # the documented cancellation style: a loser's pending Store.get
        # is withdrawn so a later put stays in the queue
        sim = Simulator()
        fast, slow = Store(sim), Store(sim)

        def launch(i):
            store = slow if i == 0 else fast
            ev = store.get()
            return ev, (lambda: store.cancel_get(ev))

        done = run_hedged(sim, launch, delay=1.0)

        def _feed():
            yield sim.timeout(2.0)
            yield fast.put("hedge-item")
            yield sim.timeout(1.0)
            yield slow.put("late-item")
        sim.process(_feed(), name="feeder")
        value, idx = sim.run_until_done(done)
        assert (value, idx) == ("hedge-item", 1)
        sim.run()
        # the cancelled primary getter never consumed the late put
        assert list(slow.items) == ["late-item"]
