"""Token bucket and admission controller: shed/delay modes, conservation."""

import pytest

from repro.common.errors import ConfigError
from repro.resilience import AdmissionConfig, AdmissionController, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        b = TokenBucket(rate=10.0, burst=50.0)
        assert b.available(0.0) == 50.0

    def test_take_and_lazy_refill(self):
        b = TokenBucket(rate=10.0, burst=50.0)
        assert b.take(0.0, 30.0) == 30.0
        assert b.available(0.0) == pytest.approx(20.0)
        assert b.available(2.0) == pytest.approx(40.0)   # +10/s for 2s
        assert b.available(100.0) == 50.0                # capped at burst

    def test_partial_grant(self):
        b = TokenBucket(rate=1.0, burst=10.0)
        assert b.take(0.0, 25.0) == 10.0
        assert b.take(0.0, 5.0) == 0.0

    def test_time_until(self):
        b = TokenBucket(rate=10.0, burst=100.0)
        b.take(0.0, 100.0)
        assert b.time_until(0.0, 40.0) == pytest.approx(4.0)
        assert b.time_until(4.0, 40.0) == pytest.approx(0.0)
        # asking beyond burst is clamped to the achievable amount
        b2 = TokenBucket(rate=1.0, burst=5.0)
        b2.take(0.0, 5.0)
        assert b2.time_until(0.0, 1000.0) == pytest.approx(5.0)


class TestAdmissionConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(rate=0.0, burst=1.0)
        with pytest.raises(ConfigError):
            AdmissionConfig(rate=1.0, burst=-1.0)
        with pytest.raises(ConfigError):
            AdmissionConfig(rate=1.0, burst=1.0, mode="bogus")


class TestAdmissionController:
    def test_shed_mode_grants_then_drops(self):
        ctrl = AdmissionController(
            AdmissionConfig(rate=10.0, burst=100.0, mode="shed"))
        admitted, shed, delay = ctrl.admit(0.0, 150, backlog=0)
        assert (admitted, shed, delay) == (100, 50, 0.0)
        assert ctrl.admitted == 100 and ctrl.shed == 50

    def test_shed_mode_backlog_bound_sheds_all(self):
        ctrl = AdmissionController(
            AdmissionConfig(rate=10.0, burst=100.0, max_backlog=2,
                            mode="shed"))
        admitted, shed, delay = ctrl.admit(0.0, 30, backlog=2)
        assert (admitted, shed, delay) == (0, 30, 0.0)

    def test_delay_mode_waits_for_tokens(self):
        ctrl = AdmissionController(
            AdmissionConfig(rate=10.0, burst=100.0, mode="delay"))
        a1, s1, d1 = ctrl.admit(0.0, 100, backlog=0)
        assert (a1, s1, d1) == (100, 0, 0.0)
        # bucket now empty; a second offer must wait, shedding nothing
        a2, s2, d2 = ctrl.admit(0.0, 50, backlog=0)
        assert a2 == 0 and s2 == 0
        assert d2 == pytest.approx(5.0)
        # after the wait the remainder is granted
        a3, s3, d3 = ctrl.admit(5.0, 50, backlog=0)
        assert (a3, s3, d3) == (50, 0, 0.0)

    def test_delay_mode_sheds_only_impossible_excess(self):
        ctrl = AdmissionController(
            AdmissionConfig(rate=10.0, burst=40.0, mode="delay"))
        admitted, shed, delay = ctrl.admit(0.0, 100, backlog=0)
        # over-burst excess (60) can never fit in one offer: shed it
        assert admitted == 40 and shed == 60 and delay == 0.0

    def test_delay_mode_backlog_bound_delays(self):
        ctrl = AdmissionController(
            AdmissionConfig(rate=10.0, burst=40.0, max_backlog=3,
                            mode="delay", delay_quantum=0.25))
        admitted, shed, delay = ctrl.admit(0.0, 10, backlog=3)
        assert (admitted, shed) == (0, 0)
        assert delay == 0.25

    def test_totals_conserve_offered(self):
        ctrl = AdmissionController(
            AdmissionConfig(rate=100.0, burst=200.0, mode="shed"))
        offered_total = 0
        for t in range(20):
            offered = 137
            offered_total += offered
            admitted, shed, _ = ctrl.admit(float(t), offered, backlog=0)
            assert admitted + shed == offered
        assert ctrl.admitted + ctrl.shed == offered_total

    def test_determinism(self):
        def run():
            ctrl = AdmissionController(
                AdmissionConfig(rate=33.0, burst=70.0, mode="shed"))
            out = []
            for t in range(30):
                out.append(ctrl.admit(t * 0.7, 41, backlog=t % 5))
            return out
        assert run() == run()
