"""Indexed heap: ordering, update, removal, and a hypothesis model test."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.pqueue import IndexedHeap


class TestBasics:
    def test_push_pop_order(self):
        h = IndexedHeap()
        for k, p in [("a", 3), ("b", 1), ("c", 2)]:
            h.push(k, p)
        assert [h.pop()[0] for _ in range(3)] == ["b", "c", "a"]

    def test_peek_does_not_remove(self):
        h = IndexedHeap()
        h.push("x", 1)
        assert h.peek() == ("x", 1)
        assert len(h) == 1

    def test_duplicate_key_rejected(self):
        h = IndexedHeap()
        h.push("x", 1)
        with pytest.raises(KeyError):
            h.push("x", 2)

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().pop()
        with pytest.raises(IndexError):
            IndexedHeap().peek()

    def test_contains_and_bool(self):
        h = IndexedHeap()
        assert not h
        h.push(1, 1)
        assert h and 1 in h and 2 not in h


class TestUpdateRemove:
    def test_decrease_key(self):
        h = IndexedHeap()
        h.push("a", 10)
        h.push("b", 5)
        h.update("a", 1)
        assert h.pop()[0] == "a"

    def test_increase_key(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 5)
        h.update("a", 10)
        assert h.pop()[0] == "b"

    def test_remove_middle(self):
        h = IndexedHeap()
        for i in range(10):
            h.push(i, i)
        h.remove(5)
        assert 5 not in h
        out = [h.pop()[0] for _ in range(len(h))]
        assert out == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().remove("nope")

    def test_push_or_update(self):
        h = IndexedHeap()
        h.push_or_update("a", 5)
        h.push_or_update("a", 1)
        assert h.priority("a") == 1

    def test_get_priority_default(self):
        h = IndexedHeap()
        assert h.get_priority("missing", default=-1) == -1

    def test_remove_returns_priority(self):
        h = IndexedHeap()
        h.push("a", 42)
        assert h.remove("a") == 42


@st.composite
def operations(draw):
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["push", "pop", "update", "remove"]),
        st.integers(0, 20),
        st.integers(-100, 100)), max_size=80))
    return ops


class TestModelBased:
    @given(operations())
    @settings(max_examples=100, deadline=None)
    def test_against_reference_model(self, ops):
        """Replay random op sequences against a dict+sort reference."""
        h = IndexedHeap()
        model = {}
        for op, key, prio in ops:
            if op == "push" and key not in model:
                h.push(key, prio)
                model[key] = prio
            elif op == "pop" and model:
                k, p = h.pop()
                best = min(model.items(), key=lambda kv: (kv[1], 0))
                assert p == best[1]       # may differ in key on ties
                assert model.pop(k) == p
            elif op == "update" and key in model:
                h.update(key, prio)
                model[key] = prio
            elif op == "remove" and key in model:
                h.remove(key)
                del model[key]
            h.check_invariants()
        # drain: priorities must come out sorted
        drained = [h.pop()[1] for _ in range(len(h))]
        assert drained == sorted(drained)
