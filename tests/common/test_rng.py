"""Deterministic RNG plumbing and Zipf sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import ensure_rng, spawn, zipf_pmf, zipf_sample


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_independent_of_consumption(self):
        # consuming the parent between spawns must not change children
        r1 = ensure_rng(7)
        kids1 = spawn(r1, 2)
        r2 = ensure_rng(7)
        _ = r2.random(100)          # consume parent
        kids2 = spawn(r2, 2)
        assert np.array_equal(kids1[0].random(4), kids2[0].random(4))

    def test_children_mutually_distinct(self):
        kids = spawn(ensure_rng(3), 2)
        assert not np.array_equal(kids[0].random(8), kids[1].random(8))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []


class TestZipfPmf:
    def test_sums_to_one(self):
        assert zipf_pmf(100, 1.2).sum() == pytest.approx(1.0)

    def test_zero_skew_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(50, 1.0)
        assert (np.diff(pmf) <= 1e-15).all()

    def test_higher_skew_more_head_mass(self):
        assert zipf_pmf(100, 1.5)[0] > zipf_pmf(100, 0.5)[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(10, -0.5)

    @given(st.integers(1, 200), st.floats(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_pmf_is_distribution(self, n, s):
        pmf = zipf_pmf(n, s)
        assert pmf.shape == (n,)
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf >= 0).all()


class TestZipfSample:
    def test_range(self):
        xs = zipf_sample(ensure_rng(0), 10, 1.0, 1000)
        assert xs.min() >= 0 and xs.max() < 10

    def test_items_mapping(self):
        items = ["a", "b", "c"]
        xs = zipf_sample(ensure_rng(0), 3, 0.0, 50, items=items)
        assert set(xs) <= set(items)

    def test_items_length_mismatch(self):
        with pytest.raises(ValueError):
            zipf_sample(ensure_rng(0), 3, 1.0, 10, items=["a"])

    def test_deterministic(self):
        a = zipf_sample(ensure_rng(5), 20, 1.0, 100)
        b = zipf_sample(ensure_rng(5), 20, 1.0, 100)
        assert np.array_equal(a, b)

    def test_skew_concentrates_on_head(self):
        xs = zipf_sample(ensure_rng(1), 100, 2.0, 5000)
        assert np.mean(xs == 0) > 0.5
