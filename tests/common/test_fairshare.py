"""Max-min fair sharing: exact cases and property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.fairshare import max_min_fair_share, weighted_max_min


class TestExactCases:
    def test_all_satisfiable(self):
        alloc = max_min_fair_share(100, [10, 20, 30])
        assert np.allclose(alloc, [10, 20, 30])

    def test_equal_split_when_scarce(self):
        alloc = max_min_fair_share(30, [100, 100, 100])
        assert np.allclose(alloc, [10, 10, 10])

    def test_classic_waterfill(self):
        # capacity 10 among demands 2, 2.6, 4, 5 -> 2, 2.6, 2.7, 2.7
        alloc = max_min_fair_share(10, [2, 2.6, 4, 5])
        assert np.allclose(alloc, [2, 2.6, 2.7, 2.7])

    def test_empty(self):
        assert max_min_fair_share(10, []).size == 0

    def test_zero_capacity(self):
        assert np.allclose(max_min_fair_share(0, [1, 2]), [0, 0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair_share(10, [-1])
        with pytest.raises(ValueError):
            max_min_fair_share(-1, [1])


class TestWeighted:
    def test_weights_proportional_when_scarce(self):
        alloc = weighted_max_min(30, [100, 100], [1, 2])
        assert np.allclose(alloc, [10, 20])

    def test_weight_capped_by_demand(self):
        alloc = weighted_max_min(30, [5, 100], [1, 1])
        assert np.allclose(alloc, [5, 25])

    def test_zero_weight_gets_leftovers_only(self):
        alloc = weighted_max_min(30, [10, 100], [1, 0])
        assert alloc[0] == pytest.approx(10)
        assert alloc[1] == pytest.approx(20)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_max_min(10, [1, 2], [1])


demands = st.lists(st.floats(0, 1000), min_size=1, max_size=20)


class TestProperties:
    @given(st.floats(0, 5000), demands)
    @settings(max_examples=100, deadline=None)
    def test_feasible_and_demand_capped(self, cap, ds):
        alloc = max_min_fair_share(cap, ds)
        assert (alloc <= np.asarray(ds) + 1e-6).all()
        assert alloc.sum() <= cap + 1e-6

    @given(st.floats(0, 5000), demands)
    @settings(max_examples=100, deadline=None)
    def test_work_conserving(self, cap, ds):
        alloc = max_min_fair_share(cap, ds)
        expected = min(cap, float(sum(ds)))
        assert alloc.sum() == pytest.approx(expected, abs=1e-5 * max(expected, 1))

    @given(st.floats(1, 5000), demands)
    @settings(max_examples=100, deadline=None)
    def test_max_min_optimality(self, cap, ds):
        """Any unsatisfied flow gets >= every other flow's allocation."""
        alloc = max_min_fair_share(cap, ds)
        d = np.asarray(ds)
        unsat = alloc < d - 1e-6
        if unsat.any():
            min_unsat = alloc[unsat].min()
            assert (alloc <= min_unsat + 1e-6).all()
