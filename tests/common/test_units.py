"""Units and formatting helpers."""

import pytest

from repro.common import units as u


class TestDecimalSizes:
    def test_kb(self):
        assert u.KB(1) == 1000

    def test_mb(self):
        assert u.MB(2) == 2_000_000

    def test_gb(self):
        assert u.GB(1) == 10 ** 9

    def test_tb(self):
        assert u.TB(0.5) == 5 * 10 ** 11

    def test_fractional(self):
        assert u.MB(1.5) == 1_500_000


class TestBinarySizes:
    def test_kib(self):
        assert u.KiB(1) == 1024

    def test_mib(self):
        assert u.MiB(1) == 1024 ** 2

    def test_gib(self):
        assert u.GiB(3) == 3 * 1024 ** 3

    def test_tib(self):
        assert u.TiB(1) == 1024 ** 4


class TestRates:
    def test_gbit(self):
        assert u.Gbit_per_s(8) == 10 ** 9   # 8 gigabit = 1 GB/s

    def test_mbit(self):
        assert u.Mbit_per_s(8) == 10 ** 6

    def test_kbit(self):
        assert u.Kbit_per_s(8) == 1000


class TestTimes:
    def test_ms(self):
        assert u.ms(250) == pytest.approx(0.25)

    def test_us(self):
        assert u.us(5) == pytest.approx(5e-6)

    def test_minutes(self):
        assert u.minutes(2) == 120.0

    def test_hours(self):
        assert u.hours(1.5) == 5400.0


class TestFormatting:
    def test_fmt_bytes_small(self):
        assert u.fmt_bytes(512) == "512 B"

    def test_fmt_bytes_kib(self):
        assert u.fmt_bytes(2048) == "2.00 KiB"

    def test_fmt_bytes_large(self):
        assert "TiB" in u.fmt_bytes(3 * 1024 ** 4)

    def test_fmt_rate(self):
        assert u.fmt_rate(u.Gbit_per_s(10)) == "10.00 Gbit/s"

    def test_fmt_time_us(self):
        assert "us" in u.fmt_time(5e-5)

    def test_fmt_time_ms(self):
        assert "ms" in u.fmt_time(0.05)

    def test_fmt_time_s(self):
        assert u.fmt_time(42.0) == "42.00 s"

    def test_fmt_time_min(self):
        assert "min" in u.fmt_time(600)

    def test_fmt_time_hours(self):
        assert "h" in u.fmt_time(7200)
