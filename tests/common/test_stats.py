"""Summary statistics, histograms, time-weighted averages, fairness."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import (
    Histogram,
    Summary,
    TimeWeighted,
    cdf_points,
    jain_index,
    percentile,
)


class TestSummary:
    def test_empty(self):
        s = Summary()
        assert s.count == 0 and s.mean == 0.0 and s.variance == 0.0

    def test_single_value(self):
        s = Summary()
        s.add(5.0)
        assert s.mean == 5.0 and s.min == 5.0 and s.max == 5.0

    def test_mean_matches_numpy(self):
        xs = [1.5, 2.5, -3.0, 10.0, 0.0]
        s = Summary()
        s.extend(xs)
        assert s.mean == pytest.approx(np.mean(xs))

    def test_stdev_matches_numpy(self):
        xs = list(np.random.default_rng(0).normal(size=100))
        s = Summary()
        s.extend(xs)
        assert s.stdev == pytest.approx(np.std(xs))

    def test_quantiles(self):
        s = Summary()
        s.extend(range(101))
        assert s.p50 == pytest.approx(50.0)
        assert s.p95 == pytest.approx(95.0)
        assert s.p99 == pytest.approx(99.0)

    def test_total(self):
        s = Summary()
        s.extend([1, 2, 3])
        assert s.total == pytest.approx(6.0)

    def test_keep_values_false_blocks_quantiles(self):
        s = Summary(keep_values=False)
        s.add(1.0)
        with pytest.raises(ValueError):
            s.quantile(0.5)
        with pytest.raises(ValueError):
            s.values()

    def test_len(self):
        s = Summary()
        s.extend([1, 2])
        assert len(s) == 2

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_welford_agrees_with_numpy(self, xs):
        s = Summary()
        s.extend(xs)
        assert s.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(float(np.var(xs)), rel=1e-6, abs=1e-4)
        assert s.min == min(xs) and s.max == max(xs)


class TestWeightedSummary:
    """Weighted add(): semantics must match expanding the sample."""

    def expand(self, pairs):
        return [x for x, w in pairs for _ in range(w)]

    def test_moments_match_expanded_sample(self):
        pairs = [(1.5, 3), (-2.0, 1), (4.25, 5), (0.0, 2)]
        s = Summary()
        for x, w in pairs:
            s.add(x, weight=w)
        xs = self.expand(pairs)
        assert s.count == len(xs)
        assert s.total == pytest.approx(sum(xs))
        assert s.mean == pytest.approx(np.mean(xs))
        assert s.variance == pytest.approx(np.var(xs))

    def test_quantiles_match_expanded_sample(self):
        pairs = [(10.0, 1), (1.0, 9), (5.0, 4)]
        s = Summary()
        for x, w in pairs:
            s.add(x, weight=w)
        xs = self.expand(pairs)
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 1.0):
            assert s.quantile(q) == pytest.approx(np.quantile(xs, q)), q

    def test_values_expand_weights(self):
        s = Summary()
        s.add(2.0, weight=3)
        s.add(7.0)
        assert sorted(s.values()) == [2.0, 2.0, 2.0, 7.0]

    def test_zero_weight_ignored(self):
        s = Summary()
        s.add(99.0, weight=0)
        assert s.count == 0

    def test_negative_weight_rejected(self):
        s = Summary()
        with pytest.raises(ValueError):
            s.add(1.0, weight=-1)

    def test_unweighted_path_unchanged(self):
        # plain add() must stay numerically identical to the old path
        xs = list(np.random.default_rng(1).normal(size=50))
        a, b = Summary(), Summary()
        a.extend(xs)
        for x in xs:
            b.add(x, weight=1)
        assert a.mean == b.mean and a.variance == b.variance
        assert a.quantile(0.5) == b.quantile(0.5)

    @given(st.lists(st.tuples(st.floats(-1e4, 1e4), st.integers(1, 9)),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_weighted_agrees_with_numpy(self, pairs):
        s = Summary()
        for x, w in pairs:
            s.add(x, weight=w)
        xs = self.expand(pairs)
        assert s.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(float(np.var(xs)),
                                           rel=1e-6, abs=1e-4)
        for q in (0.1, 0.5, 0.99):
            assert s.quantile(q) == pytest.approx(
                float(np.quantile(xs, q)), rel=1e-9, abs=1e-6)


class TestHistogram:
    def test_binning(self):
        h = Histogram(0, 10, 10)
        for x in [0.5, 1.5, 1.7, 9.9]:
            h.add(x)
        counts = h.counts
        assert counts[0] == 1 and counts[1] == 2 and counts[9] == 1

    def test_under_overflow(self):
        h = Histogram(0, 10, 5)
        h.add(-1)
        h.add(10)     # hi is exclusive
        h.add(100)
        assert h.underflow == 1 and h.overflow == 2

    def test_total_includes_overflow(self):
        h = Histogram(0, 1, 2)
        h.add(0.5)
        h.add(5)
        assert h.total == 2

    def test_weights(self):
        h = Histogram(0, 10, 10)
        h.add(5, weight=7)
        assert h.counts[5] == 7

    def test_edges(self):
        h = Histogram(0, 10, 5)
        assert list(h.bin_edges()) == [0, 2, 4, 6, 8, 10]

    def test_normalized(self):
        h = Histogram(0, 10, 2)
        h.add(1)
        h.add(6)
        assert h.normalized().sum() == pytest.approx(1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Histogram(1, 0, 5)
        with pytest.raises(ValueError):
            Histogram(0, 1, 0)


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted()
        tw.update(0.0, 3.0)
        assert tw.average(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        tw = TimeWeighted()
        tw.update(0.0, 0.0)
        tw.update(5.0, 10.0)
        assert tw.average(10.0) == pytest.approx(5.0)

    def test_non_zero_start(self):
        tw = TimeWeighted()
        tw.update(100.0, 2.0)
        tw.update(110.0, 4.0)
        assert tw.average(120.0) == pytest.approx(3.0)

    def test_time_travel_rejected(self):
        tw = TimeWeighted()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 1.0)
        with pytest.raises(ValueError):
            tw.average(4.0)

    def test_empty(self):
        assert TimeWeighted().average() == 0.0

    def test_level_property(self):
        tw = TimeWeighted()
        tw.update(0.0, 7.0)
        assert tw.level == 7.0


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        # one user gets everything: index -> 1/n
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, xs):
        j = jain_index(xs)
        assert 0.0 < j <= 1.0 + 1e-9


class TestPercentileAndCdf:
    def test_percentile(self):
        assert percentile(range(101), 95) == pytest.approx(95.0)

    def test_percentile_empty(self):
        assert percentile([], 50) == 0.0

    def test_cdf_points(self):
        xs, ps = cdf_points([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert ps[-1] == pytest.approx(1.0)

    def test_cdf_empty(self):
        xs, ps = cdf_points([])
        assert len(xs) == 0 and len(ps) == 0
