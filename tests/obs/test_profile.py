"""Profiling hooks: event mix, operator self-time, clean teardown."""

import operator

import pytest

from repro.cluster import make_cluster
from repro.dataflow import DataflowContext, SimEngine
from repro.dataflow.plan import Dataset
from repro.obs import profile
from repro.obs.profile import op_label
from repro.simcore import Simulator


def make_env(**kw):
    sim = Simulator()
    cl = make_cluster(sim, 2, 4, **kw)
    ctx = DataflowContext(default_parallelism=8)
    eng = SimEngine(cl)
    return sim, cl, ctx, eng


class TestProfileRun:
    def test_collects_event_mix_and_operators(self):
        sim, cl, ctx, eng = make_env()
        ds = (ctx.range(2000, 8).map(lambda x: (x % 10, x))
              .reduce_by_key(operator.add))
        with profile(sim) as prof:
            res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(ds.collect())
        rep = prof.report()
        # the kernel dispatched at least the task/transfer events
        assert sum(rep["event_kinds"].values()) > 0
        # operators show up with record counts and non-negative self time
        assert rep["operators"]
        for stats in rep["operators"].values():
            assert stats["pulls"] >= stats["records"] >= 0
            assert stats["self_seconds"] >= 0.0

    def test_render_mentions_hot_operator(self):
        sim, cl, ctx, eng = make_env()
        ds = ctx.range(1000, 4).map(lambda x: x * 2)
        with profile(sim) as prof:
            sim.run_until_done(eng.collect(ds))
        text = prof.render()
        assert "kernel event mix" in text
        assert "operator self time" in text

    def test_results_identical_with_and_without(self):
        def run(profiled):
            sim, cl, ctx, eng = make_env()
            ds = (ctx.range(3000, 8).map(lambda x: (x % 7, x))
                  .reduce_by_key(operator.add))
            if profiled:
                with profile(sim):
                    res = sim.run_until_done(eng.collect(ds))
            else:
                res = sim.run_until_done(eng.collect(ds))
            return sorted(res.value), sim.now
        assert run(True) == run(False)


class TestTeardown:
    def test_hooks_restored_on_exit(self):
        sim = Simulator()
        original = Dataset.iterate
        with profile(sim):
            assert Dataset.iterate is not original
            assert sim._observer is not None
        assert Dataset.iterate is original
        assert sim._observer is None

    def test_hooks_restored_on_error(self):
        sim = Simulator()
        original = Dataset.iterate
        with pytest.raises(RuntimeError, match="boom"):
            with profile(sim):
                raise RuntimeError("boom")
        assert Dataset.iterate is original
        assert sim._observer is None

    def test_nesting_raises(self):
        with profile():
            with pytest.raises(RuntimeError, match="does not nest"):
                with profile():
                    pass
        assert Dataset.iterate is not None  # outer exited cleanly


class TestOpLabel:
    def test_plain_and_fused_labels(self):
        ctx = DataflowContext(default_parallelism=4)
        mapped = ctx.range(10, 2).map(lambda x: x)
        assert isinstance(op_label(mapped), str) and op_label(mapped)

    def test_fused_chain_profiles_cleanly(self):
        # fusion is on by default: a narrow map|filter chain must still
        # profile and compute the right answer
        sim, cl, ctx, eng = make_env()
        ds = ctx.range(100, 4).map(lambda x: x + 1).filter(lambda x: x % 2)
        with profile(sim) as prof:
            res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(ds.collect())
        assert prof.report()["operators"]
