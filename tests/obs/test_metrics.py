"""Metrics registry: typed metrics, fixed edges, snapshots, diffs."""

import pytest

from repro.common.errors import SimulationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.obs.metrics import get_registry, set_registry


class TestCounter:
    def test_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_raises(self):
        c = Counter("x")
        with pytest.raises(SimulationError, match="negative"):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("q")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0
        g.dec(20)
        assert g.value == -8.0    # gauges may go negative


class TestHistogram:
    def test_edges_fixed_by_constructor(self):
        h = Histogram("lat", lo=1.0, hi=16.0, base=2.0)
        assert h.edges == (1.0, 2.0, 4.0, 8.0, 16.0)
        # data never moves the edges
        h.observe(1e9)
        assert h.edges == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_bucketing(self):
        h = Histogram("lat", lo=1.0, hi=16.0, base=2.0)
        h.observe(0.5)            # underflow
        h.observe(1.0)            # [1, 2)
        h.observe(3.0)            # [2, 4)
        h.observe(8.0)            # [8, 16)
        h.observe(16.0)           # overflow (top edge is exclusive)
        h.observe(100.0)          # overflow
        assert h.underflow == 1
        assert h.counts == [1, 1, 0, 1]
        assert h.overflow == 2
        assert h.count == 6
        assert h.vmin == 0.5 and h.vmax == 100.0

    def test_weighted_observe(self):
        h = Histogram("lat", lo=1.0, hi=16.0, base=2.0)
        h.observe(3.0, weight=7)
        assert h.count == 7
        assert h.counts[1] == 7
        assert h.mean == pytest.approx(3.0)

    def test_invalid_config_raises(self):
        with pytest.raises(SimulationError):
            Histogram("bad", lo=0, hi=1)
        with pytest.raises(SimulationError):
            Histogram("bad", lo=2, hi=1)
        with pytest.raises(SimulationError):
            Histogram("bad", base=1.0)

    def test_deterministic_across_runs(self):
        def run():
            h = Histogram("lat", lo=1e-3, hi=1e3, base=2.0)
            for v in [0.01, 0.5, 2.0, 40.0, 999.0]:
                h.observe(v)
            return h.snapshot()
        assert run() == run()


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs")
        b = reg.counter("jobs")
        assert a is b
        assert len(reg) == 1 and "jobs" in reg

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(SimulationError, match="already registered"):
            reg.gauge("x")

    def test_value_lookup(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(7)
        assert reg.value("a") == 3.0
        assert reg.value("b") == 7.0
        assert reg.value("missing") == 0.0

    def test_snapshot_and_diff(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        h = reg.histogram("lat", lo=1.0, hi=4.0, base=2.0)
        h.observe(1.5)
        before = reg.snapshot()
        reg.counter("n").inc(2)
        h.observe(3.0)
        delta = diff_snapshots(reg.snapshot(), before)
        assert delta["n"] == 2.0
        assert delta["lat"]["count"] == 1
        assert delta["lat"]["buckets"] == (0, 1)

    def test_diff_against_missing_metric(self):
        reg = MetricsRegistry()
        reg.counter("new").inc(4)
        h = reg.histogram("hist", lo=1.0, hi=4.0, base=2.0)
        h.observe(2.0)
        delta = diff_snapshots(reg.snapshot(), {})
        assert delta["new"] == 4.0
        assert delta["hist"]["count"] == 1

    def test_dump_stable(self):
        reg = MetricsRegistry()
        reg.gauge("b.gauge").set(2)
        reg.counter("a.count").inc(10)
        reg.histogram("c.hist", lo=1.0, hi=4.0).observe(2.0)
        text = reg.dump()
        assert text.splitlines() == [
            "a.count counter 10",
            "b.gauge gauge 2",
            "c.hist histogram count=1 total=2 mean=2",
        ]


class TestGlobalRegistry:
    def test_off_by_default(self):
        assert get_registry() is None

    def test_install_and_restore(self):
        reg = MetricsRegistry()
        assert set_registry(reg) is None
        try:
            assert get_registry() is reg
        finally:
            assert set_registry(None) is reg
        assert get_registry() is None
