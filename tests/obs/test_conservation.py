"""Metrics-conservation cross-checks: registry totals vs ground truth.

Each subsystem's typed counters must balance against what actually
happened — records in equals records out plus in-flight, checkpoint
counters equal the result's own accounting, DFS byte counters equal the
bytes the workload moved.  A drifting counter is a bug, not noise.
"""

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.common.errors import InsufficientReplicasError
from repro.common.units import MB
from repro.simcore import Simulator
from repro.storage import DFSConfig, DistributedFS
from repro.streaming import (
    CheckpointConfig,
    MicroBatchConfig,
    run_microbatch,
    run_stateful_stream,
)


class TestMicrobatchConservation:
    def check(self, result):
        reg = result.registry
        assert reg is not None
        r_in = reg.value("stream.records_in")
        r_out = reg.value("stream.records_out")
        r_inflight = reg.value("stream.records_inflight")
        # flow conservation: everything admitted was either processed or
        # is still in flight — and after drain nothing is in flight
        assert r_in == r_out + r_inflight
        assert r_inflight == 0
        assert reg.value("stream.backlog_batches") == 0
        # registry totals agree with the result's own fields
        assert int(r_out) == result.processed_records
        assert int(reg.value("stream.records_dropped")) == \
            result.dropped_records
        assert int(reg.value("stream.batches")) == len(result.batch_times)
        assert int(reg.value("stream.max_backlog")) == result.max_backlog
        hist = reg.histogram("stream.batch_seconds")
        assert hist.count == len(result.batch_times)
        assert hist.total == pytest.approx(sum(result.batch_times))

    def test_stable_run(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-5,
                               parallelism=4)
        self.check(run_microbatch(lambda t: 2000, cfg, duration=60))

    def test_overloaded_run_with_backpressure(self):
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-4,
                               parallelism=4, backpressure=True)
        r = run_microbatch(lambda t: 50_000, cfg, duration=60)
        assert r.dropped_records > 0
        self.check(r)

    def test_latency_weighted_per_record(self):
        # the latency summary carries one observation per record — a
        # 1-record trickle batch must not weigh like a 10k-record one
        cfg = MicroBatchConfig(batch_interval=1.0, per_record_cost=1e-3,
                               parallelism=1, backpressure=True,
                               backlog_threshold=1, throttle_factor=0.5)
        r = run_microbatch(lambda t: 10_000 if t < 5 else 1, cfg, duration=40)
        assert r.latency.count == r.processed_records
        self.check(r)


class TestCheckpointConservation:
    def _events(self, n=400):
        return [(0.1 * i, f"k{i % 7}", 1) for i in range(n)]

    def test_registry_matches_result(self):
        cfg = CheckpointConfig(interval=5.0)
        run = run_stateful_stream(self._events(), lambda a, b: a + b,
                                  lambda v: v, cfg,
                                  crash_times=[12.0, 25.0])
        reg = run.registry
        assert reg is not None
        assert int(reg.value("ckpt.events_processed")) == run.processed_events
        assert int(reg.value("ckpt.checkpoints_taken")) == \
            run.checkpoints_taken
        assert int(reg.value("ckpt.crashes")) == len(run.recoveries)
        assert int(reg.value("ckpt.events_replayed")) == \
            sum(r.replayed_events for r in run.recoveries)
        hist = reg.histogram("ckpt.recovery_seconds")
        assert hist.count == len(run.recoveries)
        assert hist.total == pytest.approx(run.total_recovery_time)

    def test_no_crash_no_replay(self):
        cfg = CheckpointConfig(interval=5.0)
        run = run_stateful_stream(self._events(), lambda a, b: a + b,
                                  lambda v: v, cfg)
        reg = run.registry
        assert reg.value("ckpt.crashes") == 0
        assert reg.value("ckpt.events_replayed") == 0
        assert int(reg.value("ckpt.events_processed")) == 400


class TestDFSConservation:
    def setup_fs(self, **cfg):
        sim = Simulator()
        cl = make_cluster(sim, 3, 4)
        fs = DistributedFS(cl, DFSConfig(block_size=MB(4), **cfg), seed=1)
        return sim, cl, fs

    def test_write_read_byte_accounting(self):
        sim, cl, fs = self.setup_fs()
        data = np.random.default_rng(0).integers(
            0, 256, MB(6), dtype=np.uint8).tobytes()
        sim.run_until_done(fs.write("/f", data=data, writer="h0_0"))
        # 2 blocks x 3 replicas
        assert fs.bytes_written == MB(6) * 3
        assert fs.metrics.value("dfs.bytes_written") == fs.bytes_written
        got, n = sim.run_until_done(fs.read("/f", reader="h2_1"))
        assert got == data
        assert fs.bytes_read == MB(6)
        assert fs.metrics.value("dfs.bytes_read") == MB(6)

    def test_failed_read_counted(self):
        sim, cl, fs = self.setup_fs(auto_repair=False)
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        for node in fs.blocks_of("/f")[0].nodes():
            cl.nodes[node].fail()
        with pytest.raises(InsufficientReplicasError):
            sim.run_until_done(fs.read("/f", reader="h2_1"))
        assert fs.failed_reads == 1
        assert fs.metrics.value("dfs.failed_reads") == 1

    def test_counter_rollback_raises(self):
        # the typed facade keeps `fs.bytes_read += n` working but a net
        # negative adjustment (a counter "rolled back") raises — the
        # conservation tripwire the audit adds
        from repro.common.errors import SimulationError
        sim, cl, fs = self.setup_fs()
        fs.bytes_read += 100
        with pytest.raises(SimulationError, match="negative"):
            fs.bytes_read -= 50

    def test_repair_bytes_match_replication_level(self):
        sim, cl, fs = self.setup_fs(detection_delay=0.5)
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        victim = fs.locations("/f")[0][1]
        cl.nodes[victim].fail()
        sim.run(until=sim.now + 30.0)
        # the lost replica was rebuilt: back to 3 live copies, and the
        # repair traffic is exactly one block copy
        assert len(fs._live_replicas(fs.blocks_of("/f")[0])) == 3
        assert fs.repair_bytes == MB(4)
        assert fs.repairs_started == 1
