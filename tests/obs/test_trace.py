"""Tracer unit tests: span lifecycle, schema validation, exports."""

import json

import pytest

from repro.common.errors import SimulationError
from repro.obs import Tracer, get_tracer, set_tracer, trace_to


class TestSpanLifecycle:
    def test_begin_end_roundtrip(self):
        tr = Tracer()
        sid = tr.begin("work", 1.0, lane=("eng", "n1"), cat="task", split=3)
        span = tr.end(sid, 2.5, outcome="ok")
        assert span.closed
        assert span.t0 == 1.0 and span.t1 == 2.5
        assert span.duration == pytest.approx(1.5)
        assert span.attrs == {"split": 3, "outcome": "ok"}
        assert span.wall1 >= span.wall0

    def test_double_close_raises(self):
        tr = Tracer()
        sid = tr.begin("work", 0.0)
        tr.end(sid, 1.0)
        with pytest.raises(SimulationError, match="two terminal states"):
            tr.end(sid, 2.0)

    def test_unknown_span_raises(self):
        tr = Tracer()
        with pytest.raises(SimulationError, match="unknown span"):
            tr.end(99, 1.0)

    def test_end_before_start_raises(self):
        tr = Tracer()
        sid = tr.begin("work", 5.0)
        with pytest.raises(SimulationError, match="before its start"):
            tr.end(sid, 4.0)

    def test_open_spans_and_find(self):
        tr = Tracer()
        a = tr.begin("alpha", 0.0, cat="x")
        b = tr.begin("beta", 1.0, cat="y")
        tr.end(a, 2.0)
        assert [s.span_id for s in tr.open_spans()] == [b]
        assert [s.name for s in tr.find(cat="x")] == ["alpha"]
        assert len(tr.find(name="beta")) == 1


class TestValidate:
    def test_clean_trace_validates(self):
        tr = Tracer()
        job = tr.begin("job", 0.0)
        st = tr.begin("stage", 0.0, parent=job)
        t1 = tr.begin("task", 0.5, lane=("eng", "n1"), parent=st)
        tr.end(t1, 1.0)
        tr.end(st, 1.0)
        tr.end(job, 1.5)
        assert tr.validate() == []

    def test_unclosed_span_reported(self):
        tr = Tracer()
        tr.begin("job", 0.0)
        assert any("never closed" in p for p in tr.validate())

    def test_unknown_parent_reported(self):
        tr = Tracer()
        sid = tr.begin("task", 0.0, parent=42)
        tr.end(sid, 1.0)
        assert any("unknown" in p for p in tr.validate())

    def test_child_outliving_parent_reported(self):
        tr = Tracer()
        p = tr.begin("stage", 0.0)
        c = tr.begin("task", 0.5, parent=p)
        tr.end(p, 1.0)
        tr.end(c, 2.0)
        assert any("outlives" in p_ for p_ in tr.validate())

    def test_time_going_backwards_reported(self):
        tr = Tracer()
        a = tr.begin("a", 5.0)
        b = tr.begin("b", 1.0)      # sim time went backwards
        tr.end(a, 6.0)
        tr.end(b, 6.0)
        assert any("backwards" in p for p in tr.validate())


class TestDeterminism:
    def _trace(self):
        tr = Tracer()
        sid = tr.begin("task", 1.0, lane=("eng", "n1"), split=0)
        tr.instant("mark", 1.5, lane=("eng", "n1"))
        tr.end(sid, 2.0, outcome="ok")
        return tr

    def test_signature_equal_across_identical_runs(self):
        assert self._trace().signature() == self._trace().signature()

    def test_signature_ignores_wall_time(self):
        a, b = self._trace(), self._trace()
        b.spans[0].wall0 += 100.0
        b.spans[0].wall1 += 200.0
        assert a.signature() == b.signature()

    def test_signature_sees_sim_time(self):
        a, b = self._trace(), self._trace()
        b.spans[0].t1 = 3.0
        assert a.signature() != b.signature()


class TestExports:
    def _tracer(self):
        tr = Tracer()
        j = tr.begin("job", 0.0, lane=("engine", "driver"), cat="job")
        t = tr.begin("task", 0.25, lane=("engine", "h0_0"), cat="task",
                     parent=j, split=0)
        tr.instant("node_fail", 0.5, lane=("engine", "h0_0"), cat="cluster")
        tr.end(t, 0.75, outcome="ok")
        tr.end(j, 1.0)
        return tr

    def test_jsonl_export(self, tmp_path):
        path = tmp_path / "run.jsonl"
        n = self._tracer().export_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == n == 3
        spans = [r for r in lines if r["type"] == "span"]
        assert {s["name"] for s in spans} == {"job", "task"}
        assert all("t0" in s and "wall0" in s for s in spans)

    def test_chrome_trace_structure(self, tmp_path):
        tr = self._tracer()
        payload = tr.to_chrome()
        events = payload["traceEvents"]
        # the Perfetto/chrome format contract
        assert isinstance(events, list)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta
                if e["name"] == "process_name"} == {"engine"}
        assert {e["args"]["name"] for e in meta
                if e["name"] == "thread_name"} == {"driver", "h0_0"}
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        for e in xs:
            assert {"name", "cat", "pid", "tid", "ts", "dur", "args"} <= set(e)
            assert e["dur"] >= 0
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["s"] == "t"
        # file round-trips as JSON
        path = tmp_path / "run.trace.json"
        count = tr.export_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count


class TestGlobalInstall:
    def test_off_by_default(self):
        assert get_tracer() is None

    def test_trace_to_scopes_installation(self):
        assert get_tracer() is None
        with trace_to() as tr:
            assert get_tracer() is tr
            with trace_to() as inner:
                assert get_tracer() is inner
            assert get_tracer() is tr
        assert get_tracer() is None

    def test_set_tracer_returns_previous(self):
        tr = Tracer()
        assert set_tracer(tr) is None
        assert set_tracer(None) is tr
