"""Trace-schema property tests over real workloads.

The contract: any traced run — including one with chaos faults injected
mid-flight — produces a trace where every span is closed, every parent id
is valid and contains its children, and sim-time is monotone; the Chrome
export is well-formed JSON; and tracing changes neither the results nor
the simulated clock.
"""

import json
from operator import add

import numpy as np
import pytest

from repro.chaos.adapters import ClusterChaos, EngineChaos, InjectionTrace
from repro.chaos.plan import FaultPlan
from repro.cluster import make_cluster
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.obs import trace_to
from repro.simcore import Simulator
from repro.sql import DataFrame, col, count_, sum_

SEEDS = [0, 1, 7]


def chaos_plan(seed):
    node_names = [f"h{r}_{i}" for r in range(2) for i in range(4)]
    return FaultPlan.renewal(
        seed, horizon=0.3,
        rates={"node_fail": 3.0, "slow_node": 6.0,
               "task_crash": 15.0, "lost_shuffle": 10.0},
        targets=node_names, mean_duration=0.08)


def run_chaos_wordcount(seed, plan=None):
    """The oracle's wordcount workload, optionally under a fault plan."""
    sim = Simulator()
    cluster = make_cluster(sim, n_racks=2, nodes_per_rack=4)
    ctx = DataflowContext(default_parallelism=8)
    engine = SimEngine(cluster, config=EngineConfig(max_task_retries=8),
                       cost_model=CostModel(cpu_per_record=2e-4))
    rng = np.random.default_rng([seed, 101])
    vocab = [f"w{i:03d}" for i in range(40)]
    words = [vocab[j] for j in rng.integers(0, len(vocab), size=3000)]
    ds = ctx.parallelize(words, 8).map(lambda w: (w, 1)).reduce_by_key(add, 6)
    if plan is not None:
        ClusterChaos(cluster, plan, InjectionTrace()).start()
        EngineChaos(engine, plan, InjectionTrace()).start()
    res = sim.run_until_done(engine.collect(ds))
    return sorted(res.value)


@pytest.mark.parametrize("seed", SEEDS)
def test_traced_chaos_run_validates(seed):
    with trace_to() as tr:
        run_chaos_wordcount(seed, chaos_plan(seed))
    assert len(tr) > 0
    assert tr.validate() == []
    # every attempt reached exactly one terminal state
    for span in tr.find(cat="task"):
        assert span.attrs.get("outcome") in {
            "ok", "chaos_crash", "missing_shuffle", "node_lost", "orphaned"}


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_traced_chaos_run_exports_valid_chrome_json(seed, tmp_path):
    with trace_to() as tr:
        run_chaos_wordcount(seed, chaos_plan(seed))
    path = tmp_path / "chaos.trace.json"
    n = tr.export_chrome(str(path))
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert len(events) == n > 0
    phases = {e["ph"] for e in events}
    assert "X" in phases and "M" in phases
    for e in events:
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)


def test_trace_signature_deterministic_across_reruns():
    """Same seed -> identical sim-time trace, the chaos-oracle contract."""
    def one(seed):
        with trace_to() as tr:
            result = run_chaos_wordcount(seed, chaos_plan(seed))
        return result, tr.signature()
    r1, s1 = one(3)
    r2, s2 = one(3)
    assert r1 == r2
    assert s1 == s2


def test_tracing_does_not_change_results():
    baseline = run_chaos_wordcount(5, chaos_plan(5))
    with trace_to():
        traced = run_chaos_wordcount(5, chaos_plan(5))
    assert traced == baseline


def test_traced_fused_sql_run_validates():
    import random
    rng = random.Random(5)
    rows = [{
        "region": rng.choice(["na", "eu", "ap", "sa"]),
        "price": round(rng.uniform(1.0, 90.0), 2),
        "qty": rng.randrange(0, 9),
    } for _ in range(400)]
    sim = Simulator()
    cl = make_cluster(sim, 2, 3)
    ctx = DataflowContext(default_parallelism=6)
    eng = SimEngine(cl)
    df = DataFrame.from_rows(ctx, rows)
    q = (df.with_column("rev", col("price") * col("qty"))
           .where(col("rev") > 20)
           .group_by("region").agg(t=sum_(col("rev")), n=count_()))
    with trace_to() as tr:
        res = sim.run_until_done(eng.collect(q.to_dataset(columnar=True)))
    assert list(map(repr, res.value)) == \
        list(map(repr, q.collect(columnar=False)))
    assert tr.validate() == []
    # fusion is on by default: the stage spans carry the segment layout
    stages = tr.find(cat="stage")
    assert stages
    assert any("fused_segments" in s.attrs for s in stages)


def test_kernel_event_instants_recorded_when_enabled():
    from repro.obs import Tracer
    sim = Simulator()
    tr = Tracer(kernel_events=True)
    sim.attach_observer(tr)

    def ticker():
        for _ in range(5):
            yield sim.timeout(0.1)

    sim.process(ticker(), name="ticker")
    sim.run()
    assert tr.instants          # kernel dispatch produced instant events
    assert all(lane == ("kernel", "dispatch")
               for _, _, _, lane, _ in tr.instants)
    assert tr.validate() == []
