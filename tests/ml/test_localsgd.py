"""Local SGD (periodic averaging) mode."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.ml import DistTrainConfig, accuracy, make_classification, \
    train_distributed

X, Y = make_classification(3000, 8, separation=4.0, seed=0)


class TestLocalSGD:
    def test_converges(self):
        cfg = DistTrainConfig(mode="localsgd", n_workers=8,
                              total_updates=16, local_steps=8,
                              eval_every=1)
        r = train_distributed(X, Y, cfg, seed=1)
        assert r.losses[-1] < 0.15
        assert accuracy(r.w, X, Y) > 0.9

    def test_h1_equals_parameter_averaging_each_step(self):
        """H=1 local SGD averages parameters every step — close to sync
        gradient averaging for small lr (identical for linear models'
        first step)."""
        cfg_l = DistTrainConfig(mode="localsgd", n_workers=4,
                                total_updates=1, local_steps=1, lr=0.1,
                                eval_every=1)
        cfg_s = DistTrainConfig(mode="sync", n_workers=4, total_updates=1,
                                lr=0.1, eval_every=1)
        rl = train_distributed(X, Y, cfg_l, seed=3)
        rs = train_distributed(X, Y, cfg_s, seed=3)
        # first step from w=0: avg of per-worker single steps == sync step
        assert np.allclose(rl.w, rs.w)

    def test_wall_time_falls_with_h_at_fixed_budget(self):
        def wall(h):
            cfg = DistTrainConfig(mode="localsgd", n_workers=8,
                                  total_updates=32 // h, local_steps=h,
                                  comm_time=0.5, grad_compute_time=0.01,
                                  eval_every=1)
            return train_distributed(X, Y, cfg, seed=2).wall_time
        assert wall(8) < wall(2) < wall(1)

    def test_straggler_still_hurts_rounds(self):
        # localsgd rounds are barriers: the slow worker stretches them
        cfg = DistTrainConfig(mode="localsgd", n_workers=4,
                              total_updates=8, local_steps=4,
                              grad_compute_time=0.1, comm_time=0.0,
                              eval_every=1)
        fast = train_distributed(X, Y, cfg, seed=1)
        slow = train_distributed(X, Y, cfg,
                                 worker_speeds=[1, 1, 1, 0.25], seed=1)
        assert slow.wall_time == pytest.approx(4 * fast.wall_time)

    def test_deterministic(self):
        cfg = DistTrainConfig(mode="localsgd", n_workers=4,
                              total_updates=5, local_steps=3, eval_every=1)
        a = train_distributed(X, Y, cfg, seed=9)
        b = train_distributed(X, Y, cfg, seed=9)
        assert np.array_equal(a.w, b.w)

    def test_validation(self):
        with pytest.raises(ReproError):
            DistTrainConfig(mode="localsgd", local_steps=0)
