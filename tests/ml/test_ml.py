"""SGD kernels, local training, distributed sync/async simulation."""

import numpy as np
import pytest
from scipy.optimize import check_grad

from repro.common.errors import ReproError
from repro.ml import (
    DistTrainConfig,
    accuracy,
    logistic_grad,
    logistic_loss,
    make_classification,
    make_regression,
    sgd_local,
    squared_grad,
    squared_loss,
    train_distributed,
)


class TestData:
    def test_classification_shapes(self):
        X, y = make_classification(100, 5, seed=0)
        assert X.shape == (100, 5) and set(np.unique(y)) <= {0, 1}

    def test_classification_deterministic(self):
        X1, y1 = make_classification(50, 3, seed=7)
        X2, y2 = make_classification(50, 3, seed=7)
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)

    def test_separation_controls_difficulty(self):
        Xe, ye = make_classification(2000, 5, separation=6.0, seed=1)
        Xh, yh = make_classification(2000, 5, separation=0.5, seed=1)
        we, _ = sgd_local(Xe, ye, steps=200, seed=0)
        wh, _ = sgd_local(Xh, yh, steps=200, seed=0)
        assert accuracy(we, Xe, ye) > accuracy(wh, Xh, yh)

    def test_regression_recoverable(self):
        X, y, w_star = make_regression(5000, 4, noise=0.01, seed=2)
        w, _ = sgd_local(X, y, grad_fn=squared_grad, loss_fn=squared_loss,
                         lr=0.1, steps=2000, seed=3)
        assert np.abs(w - w_star).max() < 0.1

    def test_validation(self):
        with pytest.raises(ReproError):
            make_classification(1, 2)


class TestGradients:
    def test_logistic_grad_matches_finite_diff(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 6))
        y = (rng.random(40) < 0.5).astype(np.int64)
        err = check_grad(lambda w: logistic_loss(w, X, y, l2=0.1),
                         lambda w: logistic_grad(w, X, y, l2=0.1),
                         rng.normal(size=6))
        assert err < 1e-5

    def test_squared_grad_matches_finite_diff(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 4))
        y = rng.normal(size=30)
        err = check_grad(lambda w: squared_loss(w, X, y, l2=0.05),
                         lambda w: squared_grad(w, X, y, l2=0.05),
                         rng.normal(size=4))
        assert err < 1e-5

    def test_loss_stable_for_large_logits(self):
        X = np.array([[1000.0], [-1000.0]])
        y = np.array([1, 0])
        w = np.array([1.0])
        assert np.isfinite(logistic_loss(w, X, y))


class TestLocalSGD:
    def test_loss_decreases(self):
        X, y = make_classification(1000, 8, separation=3.0, seed=0)
        _, hist = sgd_local(X, y, steps=300, seed=1)
        assert hist.losses[-1] < hist.losses[0] / 2

    def test_deterministic(self):
        X, y = make_classification(500, 4, seed=0)
        w1, _ = sgd_local(X, y, steps=100, seed=9)
        w2, _ = sgd_local(X, y, steps=100, seed=9)
        assert np.array_equal(w1, w2)

    def test_accuracy_on_separable(self):
        X, y = make_classification(2000, 10, separation=4.0, seed=0)
        w, _ = sgd_local(X, y, steps=400, seed=1)
        assert accuracy(w, X, y) > 0.95

    def test_validation(self):
        X, y = make_classification(10, 2, seed=0)
        with pytest.raises(ReproError):
            sgd_local(X, y, steps=0)


class TestDistributed:
    @pytest.fixture(scope="class")
    def data(self):
        return make_classification(3000, 10, separation=4.0, seed=0)

    def test_both_modes_converge(self, data):
        X, y = data
        for mode in ["sync", "async"]:
            cfg = DistTrainConfig(mode=mode, n_workers=4, total_updates=300)
            r = train_distributed(X, y, cfg, seed=1)
            assert r.losses[-1] < 0.15
            assert accuracy(r.w, X, y) > 0.9

    def test_sync_step_time_is_slowest_worker(self, data):
        X, y = data
        cfg = DistTrainConfig(mode="sync", n_workers=4, total_updates=100,
                              grad_compute_time=0.1, comm_time=0.0)
        uniform = train_distributed(X, y, cfg, seed=1)
        strag = train_distributed(X, y, cfg,
                                  worker_speeds=[1, 1, 1, 0.25], seed=1)
        assert strag.wall_time == pytest.approx(4 * uniform.wall_time)

    def test_async_immune_to_single_straggler(self, data):
        X, y = data
        cfg = DistTrainConfig(mode="async", n_workers=8, total_updates=400)
        uniform = train_distributed(X, y, cfg, seed=1)
        strag = train_distributed(X, y, cfg,
                                  worker_speeds=[1] * 7 + [0.1], seed=1)
        assert strag.wall_time < uniform.wall_time * 1.6

    def test_async_records_staleness(self, data):
        X, y = data
        cfg = DistTrainConfig(mode="async", n_workers=8, total_updates=200)
        r = train_distributed(X, y, cfg, seed=2)
        assert r.staleness_mean > 0
        sync = train_distributed(
            X, y, DistTrainConfig(mode="sync", n_workers=8,
                                  total_updates=50), seed=2)
        assert sync.staleness_mean == 0.0

    def test_time_to_loss_monotone_api(self, data):
        X, y = data
        cfg = DistTrainConfig(mode="sync", n_workers=4, total_updates=200)
        r = train_distributed(X, y, cfg, seed=3)
        t_easy = r.time_to_loss(0.5)
        t_hard = r.time_to_loss(0.08)
        assert t_easy <= t_hard

    def test_deterministic(self, data):
        X, y = data
        cfg = DistTrainConfig(mode="async", n_workers=4, total_updates=150)
        r1 = train_distributed(X, y, cfg, seed=5)
        r2 = train_distributed(X, y, cfg, seed=5)
        assert np.array_equal(r1.w, r2.w)
        assert r1.losses == r2.losses

    def test_validation(self, data):
        X, y = data
        with pytest.raises(ReproError):
            DistTrainConfig(mode="magic")
        with pytest.raises(ReproError):
            train_distributed(X, y, DistTrainConfig(n_workers=2),
                              worker_speeds=[1.0])
        with pytest.raises(ReproError):
            train_distributed(X, y, DistTrainConfig(n_workers=1),
                              worker_speeds=[0.0])
