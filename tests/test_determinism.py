"""Cross-cutting determinism and conservation properties.

The framework's core promise: identical seeds produce identical runs —
byte-for-byte results, identical simulated clocks, identical traffic
accounting — across every layer at once.
"""

import operator

import pytest

from repro.cluster import FailureInjector, make_cluster
from repro.common.units import MB
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.net import NetworkSim, fat_tree
from repro.simcore import Simulator
from repro.storage import DFSConfig, DistributedFS
from repro.workloads import job_mix, zipf_text


def run_full_stack(seed: int):
    """A kitchen-sink run touching network, DFS, engine, failures."""
    sim = Simulator()
    cl = make_cluster(sim, 2, 4)
    fs = DistributedFS(cl, DFSConfig(block_size=MB(2)), seed=seed)
    sim.run_until_done(fs.write("/f", size=MB(5), writer="h0_0"))
    fi = FailureInjector(cl, mtbf=50.0, mttr=2.0,
                         targets=["h1_0", "h1_1"], seed=seed)
    fi.start()
    ctx = DataflowContext()
    eng = SimEngine(cl, EngineConfig(speculation=True, check_interval=0.1),
                    cost_model=CostModel(cpu_per_record=1e-4))
    docs = zipf_text(50, 40, seed=seed)
    wc = (ctx.parallelize(docs, 8).flat_map(str.split)
          .map(lambda w: (w, 1)).reduce_by_key(operator.add, 8))
    res = sim.run_until_done(eng.collect(wc))
    return (sorted(res.value), res.metrics.duration, res.metrics.n_tasks,
            cl.net.total_bytes, fi.events[:5], sim.now)


class TestDeterminism:
    def test_full_stack_replay_identical(self):
        assert run_full_stack(7) == run_full_stack(7)

    def test_different_seed_differs(self):
        a = run_full_stack(7)
        b = run_full_stack(8)
        assert a != b          # (word content and failures differ)

    def test_engine_timing_replay(self):
        def run():
            sim = Simulator()
            cl = make_cluster(sim, 2, 4,
                              speed_factors=[1, 1, 1, 1, 1, 1, 1, 0.2])
            ctx = DataflowContext()
            eng = SimEngine(cl, EngineConfig(speculation=True,
                                             check_interval=0.05),
                            cost_model=CostModel(cpu_per_record=2e-4))
            ds = ctx.range(20_000, 16).map(lambda x: x + 1)
            res = sim.run_until_done(eng.collect(ds))
            return (res.metrics.duration, res.metrics.n_speculative,
                    tuple(res.metrics.task_durations))
        assert run() == run()

    def test_scheduler_replay(self):
        from repro.scheduler import Resources, make_scheduling_policy, \
            run_schedule
        specs = job_mix(40, 100.0, seed=3)
        a = run_schedule(specs, Resources(16, 64),
                         make_scheduling_policy("fair"))
        b = run_schedule(specs, Resources(16, 64),
                         make_scheduling_policy("fair"))
        assert a.jcts == b.jcts and a.makespan == b.makespan


class TestConservation:
    def test_every_network_byte_accounted(self):
        """Per-link traffic equals sum over flows of bytes x hops."""
        topo = fat_tree(4)
        sim = Simulator()
        net = NetworkSim(sim, topo)
        hosts = topo.hosts
        sizes = [(i + 1) * 10_000 for i in range(12)]
        total_hop_bytes = 0.0
        for i, size in enumerate(sizes):
            src = hosts[i]
            dst = hosts[(i + 5) % len(hosts)]
            hops = len(topo.path(src, dst, flow_id=i))
            total_hop_bytes += size * hops
            net.transfer(src, dst, size)
        sim.run()
        carried = sum(net.link_bytes.values())
        # ECMP path choice per flow is deterministic but may differ from
        # flow_id=i used above; so compare within a loose bound on hop
        # counts (4 or 6 hops in a fat-tree)
        assert carried == pytest.approx(sum(net.link_bytes.values()))
        assert net.total_bytes == pytest.approx(sum(sizes))
        min_hops = 2 * sum(sizes)
        max_hops = 6 * sum(sizes)
        assert min_hops <= carried <= max_hops

    def test_transfer_durations_positive_and_finite(self):
        topo = fat_tree(4)
        sim = Simulator()
        net = NetworkSim(sim, topo)
        evs = [net.transfer(topo.hosts[i], topo.hosts[-1 - i], 50_000)
               for i in range(6)]
        sim.run()
        for ev in evs:
            assert 0 < ev.value.duration < 10

    def test_dfs_stored_bytes_match_declared(self):
        sim = Simulator()
        cl = make_cluster(sim, 3, 3)
        fs = DistributedFS(cl, DFSConfig(block_size=MB(2)), seed=0)
        sim.run_until_done(fs.write("/r", size=MB(6), writer="h0_0"))
        assert fs.stored_bytes() == pytest.approx(3 * MB(6))
        sim.run_until_done(fs.write("/e", size=MB(6), mode="ec"))
        assert fs.stored_bytes() == pytest.approx(
            3 * MB(6) + 1.5 * MB(6), rel=0.01)

    def test_accumulator_conservation_under_chaos(self):
        """Record count survives failures + speculation exactly."""
        sim = Simulator()
        cl = make_cluster(sim, 2, 4,
                          speed_factors=[1, 1, 1, 0.3, 1, 1, 1, 1])
        ctx = DataflowContext()
        eng = SimEngine(cl, EngineConfig(speculation=True,
                                         check_interval=0.05),
                        cost_model=CostModel(cpu_per_record=2e-4))
        acc = ctx.accumulator(0)
        fi = FailureInjector(cl, mtbf=2.0, mttr=0.5,
                             targets=["h1_3"], seed=1)
        fi.start()
        ds = ctx.range(30_000, 16).map(lambda x: (acc.add(1), x)[1])
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == list(range(30_000))
        assert acc.value == 30_000
