"""Workload generators: determinism and distributional knobs."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workloads import (
    event_stream,
    job_mix,
    mmpp_rate_trace,
    poisson_rate_trace,
    teragen,
    web_sessions,
    zipf_block_trace,
    zipf_text,
)


class TestZipfText:
    def test_shape(self):
        docs = zipf_text(10, 20, vocab_size=100, seed=0)
        assert len(docs) == 10
        assert all(len(d.split()) == 20 for d in docs)

    def test_deterministic(self):
        assert zipf_text(5, 10, seed=3) == zipf_text(5, 10, seed=3)

    def test_skew_concentrates_vocabulary(self):
        from collections import Counter
        flat = Counter(" ".join(zipf_text(50, 100, 500, skew=1.5,
                                          seed=1)).split())
        uniform = Counter(" ".join(zipf_text(50, 100, 500, skew=0.0,
                                             seed=1)).split())
        top_flat = flat.most_common(1)[0][1] / sum(flat.values())
        top_uni = uniform.most_common(1)[0][1] / sum(uniform.values())
        assert top_flat > 5 * top_uni

    def test_validation(self):
        with pytest.raises(ConfigError):
            zipf_text(0, 1)


class TestTeragen:
    def test_record_shape(self):
        recs = teragen(100, key_bytes=10, payload_bytes=90, seed=0)
        assert len(recs) == 100
        assert all(len(k) == 10 and len(p) == 90 for k, p in recs)

    def test_keys_roughly_unique(self):
        recs = teragen(1000, seed=1)
        assert len({k for k, _ in recs}) > 990

    def test_deterministic(self):
        assert teragen(10, seed=5) == teragen(10, seed=5)


class TestJobMix:
    def test_count_and_horizon(self):
        specs = job_mix(50, 100.0, seed=0)
        assert len(specs) == 50
        assert all(0 <= s.arrival <= 100.0 for s in specs)

    def test_sorted_arrivals(self):
        specs = job_mix(30, 50.0, seed=1)
        arr = [s.arrival for s in specs]
        assert arr == sorted(arr)

    def test_short_long_mix(self):
        specs = job_mix(200, 100.0, short_frac=0.8, seed=2)
        short = [s for s in specs if s.n_tasks <= 10]
        assert 0.6 < len(short) / len(specs) < 0.95

    def test_heavy_tail_durations(self):
        specs = job_mix(300, 100.0, seed=3)
        durs = [d for s in specs for d in s.task_durations]
        assert max(durs) > 5 * np.median(durs)

    def test_users_and_queues_assigned(self):
        specs = job_mix(100, 10.0, n_users=3, seed=4)
        assert {s.user for s in specs} <= {f"user{i}" for i in range(3)}
        assert {s.queue for s in specs} <= {"prod", "dev"}

    def test_deterministic(self):
        a = job_mix(20, 10.0, seed=9)
        b = job_mix(20, 10.0, seed=9)
        assert [s.task_durations for s in a] == [s.task_durations for s in b]


class TestRateTraces:
    def test_poisson_mean(self):
        trace = poisson_rate_trace(100.0, 2000.0, seed=0)
        assert trace.mean() == pytest.approx(100.0, rel=0.05)

    def test_mmpp_two_levels(self):
        trace = mmpp_rate_trace(10, 200, 5000, seed=1)
        assert set(np.unique(trace)) == {10.0, 200.0}

    def test_mmpp_dwell_fractions(self):
        trace = mmpp_rate_trace(10, 200, 50_000, mean_low_dwell=300,
                                mean_high_dwell=60, seed=2)
        frac_high = float(np.mean(trace == 200.0))
        assert 0.05 < frac_high < 0.35   # ~60/(300+60) ≈ 0.17

    def test_validation(self):
        with pytest.raises(ConfigError):
            mmpp_rate_trace(100, 10, 100)


class TestWebSessions:
    def test_sorted_and_in_horizon(self):
        ev = web_sessions(20, 5000.0, seed=0)
        ts = [t for t, _, _ in ev]
        assert ts == sorted(ts)
        assert all(0 <= t < 5000.0 for t in ts)

    def test_pages_valid(self):
        ev = web_sessions(10, 2000.0, n_pages=7, seed=1)
        assert {p for _, _, p in ev} <= {f"/page{i}" for i in range(7)}

    def test_session_structure_exists(self):
        """Per-user inter-event gaps should be bimodal (in/out of session)."""
        ev = web_sessions(5, 50_000.0, mean_gap=10, mean_intersession=2000,
                          seed=2)
        by_user = {}
        for t, u, _ in ev:
            by_user.setdefault(u, []).append(t)
        gaps = []
        for ts in by_user.values():
            gaps += list(np.diff(ts))
        gaps = np.array(gaps)
        assert (gaps < 100).sum() > 0 and (gaps > 500).sum() > 0


class TestBlockTrace:
    def test_range_and_determinism(self):
        tr = zipf_block_trace(1000, 50, seed=0)
        assert tr.min() >= 0 and tr.max() < 50
        assert np.array_equal(tr, zipf_block_trace(1000, 50, seed=0))

    def test_skew_effect_on_reuse(self):
        hot = zipf_block_trace(5000, 500, skew=1.2, seed=1)
        cold = zipf_block_trace(5000, 500, skew=0.0, seed=1)
        assert len(np.unique(hot)) < len(np.unique(cold))


class TestEventStream:
    def test_shapes_and_order(self):
        arrival, ts, keys, values = event_stream("uniform", 2000.0, 10.0,
                                                 seed=0)
        n = len(arrival)
        assert len(ts) == len(keys) == len(values) == n
        assert np.all(np.diff(arrival) >= 0)          # sorted by arrival
        assert np.all(ts <= arrival) and np.all(ts >= 0)
        assert arrival.max() < 10.0

    def test_determinism(self):
        a = event_stream("bursty", 1000.0, 10.0, seed=7)
        b = event_stream("bursty", 1000.0, 10.0, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_skewed_concentrates_keys(self):
        _a, _t, hot, _v = event_stream("skewed", 3000.0, 10.0, n_keys=64,
                                       key_skew=1.5, seed=1)
        _a, _t, cold, _v = event_stream("uniform", 3000.0, 10.0, n_keys=64,
                                        seed=1)
        top_hot = np.bincount(hot, minlength=64).max() / len(hot)
        top_cold = np.bincount(cold, minlength=64).max() / len(cold)
        assert top_hot > 2 * top_cold

    def test_bursty_is_time_correlated(self):
        arrival, *_ = event_stream("bursty", 2000.0, 20.0, seed=3)
        counts = np.histogram(arrival, bins=20, range=(0.0, 20.0))[0]
        uni, *_ = event_stream("uniform", 2000.0, 20.0, seed=3)
        ucounts = np.histogram(uni, bins=20, range=(0.0, 20.0))[0]
        assert counts.std() > 2 * ucounts.std()

    def test_in_order_when_no_delay(self):
        arrival, ts, _k, _v = event_stream("uniform", 1000.0, 5.0,
                                           ooo_delay=0.0, seed=2)
        assert np.array_equal(arrival, ts)

    def test_bad_scenario(self):
        with pytest.raises(ConfigError):
            event_stream("sawtooth", 100.0, 1.0)
