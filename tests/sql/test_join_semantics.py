"""Join-semantics audit: the columnar join seam vs the row oracle.

Every divergence class found while vectorizing joins is pinned here as a
regression test: null keys, mixed-dtype keys (``1 == 1.0 == True``),
duplicate-key cross products, empty sides, left-join null extension and
dtype promotion of null-extended columns.  A randomized join-heavy
generator (including skewed and null-key data) then sweeps both engines
with adaptive execution off and on.

Contract under test:

* columnar vs row output is **byte-identical** at a fixed adaptive
  setting;
* adaptive-on vs adaptive-off is multiset-equal always, and
  byte-identical for ordered queries (``order_by``'s content tie-break);
* results are independent of ``n_partitions`` — equal keys must meet on
  one reducer no matter how the shuffle is sliced.
"""

import random

import pytest

from repro.dataflow import DataflowContext
from repro.sql import (
    DataFrame,
    col,
    count_,
    set_adaptive,
    sum_,
)
from repro.sql.adaptive import AdaptiveConfig, get_adaptive_config


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


@pytest.fixture(autouse=True)
def _reset_adaptive():
    yield
    set_adaptive(False, AdaptiveConfig())


def frame(ctx, rows, name, schema):
    return DataFrame.from_rows(ctx, rows, name=name, schema=schema)


def sweep(build, n=4, exact_modes=True):
    """Collect across engines x adaptive modes; return the row baseline.

    Byte-equality between columnar and row at each fixed adaptive
    setting; multiset equality between adaptive settings.
    """
    base = None
    for aqe in (False, True):
        per_mode = []
        for columnar in (False, True):
            ctx = DataflowContext(default_parallelism=n)
            out = build(ctx).collect(columnar=columnar, adaptive=aqe)
            per_mode.append(out)
        a, b = map(lambda rs: list(map(repr, rs)), per_mode)
        assert a == b, f"columnar/row diverge (adaptive={aqe})"
        if base is None:
            base = per_mode[0]
        else:
            assert sorted(map(repr, per_mode[0])) == \
                sorted(map(repr, base)), "adaptive changed the result set"
    return base


# -- null keys -------------------------------------------------------------


class TestNullKeys:
    L = [{"k": None, "v": 0}, {"k": 1, "v": 1}, {"k": None, "v": 2},
         {"k": 2, "v": 3}]
    R = [{"k": None, "w": 10}, {"k": 1, "w": 11}, {"k": 2, "w": 12}]

    def test_none_keys_join_by_equality(self):
        # None == None, so null keys match each other (dict semantics on
        # both paths); the contract is engine agreement, pinned exactly
        out = sweep(lambda c: frame(c, self.L, "L", ["k", "v"])
                    .join(frame(c, self.R, "R", ["k", "w"]), on="k"))
        matched = [r for r in out if r["k"] is None]
        assert len(matched) == 2            # both null-keyed left rows
        assert all(r["w"] == 10 for r in matched)

    def test_left_join_none_keys(self):
        rows = sweep(lambda c: frame(c, self.L, "L", ["k", "v"])
                     .join(frame(c, self.R, "R", ["k", "w"]), on="k",
                           how="left"))
        assert len(rows) == 4               # every left row survives

    def test_null_only_side(self):
        L = [{"k": None, "v": i} for i in range(5)]
        R = [{"k": i, "w": i} for i in range(3)]
        inner = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                      .join(frame(c, R, "R", ["k", "w"]), on="k"))
        assert inner == []
        left = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                     .join(frame(c, R, "R", ["k", "w"]), on="k", how="left"))
        assert len(left) == 5
        assert all(r["w"] is None for r in left)


# -- mixed-dtype keys ------------------------------------------------------


class TestMixedDtypeKeys:
    def test_numeric_equality_matches(self):
        # 1 == 1.0 == True under Python equality; the partitioner must
        # agree (stable_hash canonicalizes numerics) or matches would
        # depend on accidental hash collisions mod n_partitions
        L = [{"k": 1, "v": 0}, {"k": 1.0, "v": 1}, {"k": True, "v": 2}]
        R = [{"k": 1.0, "w": 7}]
        out = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                    .join(frame(c, R, "R", ["k", "w"]), on="k"))
        assert len(out) == 3
        assert [r["v"] for r in out] == [0, 1, 2]

    def test_string_never_matches_number(self):
        L = [{"k": "1", "v": 0}, {"k": 1, "v": 1}]
        R = [{"k": 1, "w": 5}]
        out = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                    .join(frame(c, R, "R", ["k", "w"]), on="k"))
        assert [r["v"] for r in out] == [1]

    @pytest.mark.parametrize("n", [1, 3, 7])
    def test_results_independent_of_n_partitions(self, n):
        rng = random.Random(11)
        pool = [None, 1, 1.0, True, 0, False, "1", 2, "x", 3.5, -1]
        L = [{"k": rng.choice(pool), "v": i} for i in range(80)]
        R = [{"k": rng.choice(pool), "w": i} for i in range(40)]
        out = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                    .join(frame(c, R, "R", ["k", "w"]), on="k"), n=n)
        if not hasattr(type(self), "_pinned"):
            type(self)._pinned = sorted(map(repr, out))
        assert sorted(map(repr, out)) == type(self)._pinned


# -- duplicate keys --------------------------------------------------------


class TestDuplicateKeys:
    def test_cross_product_multiplicity(self):
        L = [{"k": "a", "v": i} for i in range(3)] + [{"k": "b", "v": 9}]
        R = [{"k": "a", "w": j} for j in range(4)]
        out = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                    .join(frame(c, R, "R", ["k", "w"]), on="k"))
        assert len(out) == 12               # 3 left x 4 right
        # left-major, right-minor arrival order within a key group
        assert [(r["v"], r["w"]) for r in out] == \
            [(v, w) for v in range(3) for w in range(4)]

    def test_multi_column_keys_with_duplicates(self):
        rng = random.Random(3)
        L = [{"a": rng.randrange(2), "b": rng.choice(["x", "y"]), "v": i}
             for i in range(40)]
        R = [{"a": rng.randrange(2), "b": rng.choice(["x", "y"]), "w": i}
             for i in range(30)]
        out = sweep(lambda c: frame(c, L, "L", ["a", "b", "v"])
                    .join(frame(c, R, "R", ["a", "b", "w"]), on=["a", "b"]))
        # multiplicity oracle: per-key product of side counts
        from collections import Counter
        lc = Counter((r["a"], r["b"]) for r in L)
        rc = Counter((r["a"], r["b"]) for r in R)
        assert len(out) == sum(lc[k] * rc.get(k, 0) for k in lc)


# -- empty sides and null extension ---------------------------------------


class TestEmptyAndLeftJoin:
    @pytest.mark.parametrize("how", ["inner", "left"])
    def test_empty_sides(self, how):
        lone = [{"k": 1, "v": 2}]
        rone = [{"k": 1, "w": 3}]
        for L, R in (([], rone), (lone, []), ([], [])):
            out = sweep(lambda c, L=L, R=R:
                        frame(c, L, "L", ["k", "v"])
                        .join(frame(c, R, "R", ["k", "w"]), on="k", how=how))
            if how == "left" and L:
                assert out == [{"k": 1, "v": 2, "w": None}]
            else:
                assert out == []

    def test_null_extension_promotes_int_column(self):
        # right extra is int64-typed; null extension must surface Python
        # None (not 0, not NaN) and leave matched values exact ints
        L = [{"k": 1, "v": 0}, {"k": 99, "v": 1}]
        R = [{"k": 1, "w": 7}]
        out = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                    .join(frame(c, R, "R", ["k", "w"]), on="k", how="left"))
        assert out == [{"k": 1, "v": 0, "w": 7},
                       {"k": 99, "v": 1, "w": None}]
        assert repr(out[0]["w"]) == "7"     # not numpy int64 wrapper


# -- join strategies -------------------------------------------------------


class TestJoinStrategies:
    def _data(self, seed=7, n=300):
        rng = random.Random(seed)
        L = [{"k": rng.randrange(40), "v": i} for i in range(n)]
        R = [{"k": rng.randrange(40), "w": i} for i in range(n // 3)]
        return L, R

    @pytest.mark.parametrize("strategy", ["hash", "sort_merge"])
    def test_forced_strategy_matches_row_oracle(self, strategy):
        L, R = self._data()
        set_adaptive(False, AdaptiveConfig(join_strategy=strategy))
        assert get_adaptive_config().join_strategy == strategy
        out = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                    .join(frame(c, R, "R", ["k", "w"]), on="k"))
        assert out       # non-vacuous

    def test_sort_merge_falls_back_on_non_integer_keys(self):
        # strings can't take the searchsorted path; the kernel must fall
        # back to the hash probe silently and stay exact
        L = [{"k": w, "v": i} for i, w in enumerate(["a", "b", "a", "c"])]
        R = [{"k": w, "w": i} for i, w in enumerate(["a", "c"])]
        set_adaptive(False, AdaptiveConfig(join_strategy="sort_merge"))
        out = sweep(lambda c: frame(c, L, "L", ["k", "v"])
                    .join(frame(c, R, "R", ["k", "w"]), on="k"))
        assert len(out) == 3


# -- randomized join-heavy harness ----------------------------------------


def join_rows(rng, n, keyspace, skew=0.0, null_rate=0.0, extra="v"):
    rows = []
    for i in range(n):
        if null_rate and rng.random() < null_rate:
            k = None
        elif skew and rng.random() < skew:
            k = 0                            # one dominant hot key
        else:
            k = rng.randrange(keyspace)
        rows.append({"k": k, extra: i})
    return rows


def random_join_query(ctx, rng):
    shape = rng.randrange(3)
    skew = rng.choice([0.0, 0.0, 0.6])
    nulls = rng.choice([0.0, 0.15])
    L = frame(ctx, join_rows(rng, rng.randrange(50, 220), 25,
                             skew=skew, null_rate=nulls), "L", ["k", "v"])
    R = frame(ctx, join_rows(rng, rng.randrange(10, 90), 25,
                             null_rate=nulls, extra="w"), "R", ["k", "w"])
    how = rng.choice(["inner", "left"])
    q = L.join(R, on="k", how=how)
    if shape == 1:
        q = (q.where(col("v") > rng.randrange(10))
             .group_by("k").agg(n=count_(), s=sum_(col("w"))
                                if how == "inner" else count_()))
    elif shape == 2:
        q = q.order_by("v", ascending=rng.random() < 0.5).limit(
            rng.randrange(5, 40))
    return q


@pytest.mark.parametrize("seed", range(12))
def test_randomized_join_queries_equivalent(seed):
    rng = random.Random(seed)
    sweep(lambda c: random_join_query(c, rng.__class__(seed)), n=5)


@pytest.mark.parametrize("seed", range(6))
def test_randomized_ordered_joins_byte_stable_under_aqe(seed):
    # ordered queries must be byte-identical even across adaptive modes:
    # the content tie-break makes sort order a pure function of the
    # result set, not of shuffle arrival order
    rng = random.Random(seed)
    L = join_rows(rng, 150, 8, skew=0.5)
    R = join_rows(rng, 60, 8, extra="w")

    def build(ctx):
        return (frame(ctx, L, "L", ["k", "v"])
                .join(frame(ctx, R, "R", ["k", "w"]), on="k")
                .order_by("k").limit(31))
    outs = []
    for columnar in (False, True):
        for aqe in (False, True):
            ctx = DataflowContext(default_parallelism=5)
            outs.append(list(map(repr,
                                 build(ctx).collect(columnar=columnar,
                                                    adaptive=aqe))))
    assert all(o == outs[0] for o in outs[1:])


# -- float aggregates under adaptive rewrites ------------------------------


class TestAdaptiveFloatContract:
    """The one documented carve-out from the adaptive on-vs-off contract.

    A rewrite that removes or reshapes a shuffle (broadcast, skew) feeds
    the same values to a downstream fold in a different order; float
    addition is not associative, so float sums may differ in the last
    ulps.  Exact dtypes (int/bool/str) are association-independent and
    must stay byte-equal.  Columnar-vs-row byte equality is *not*
    relaxed — it holds at every fixed adaptive setting, floats included.
    """

    def _outputs(self, values):
        rng = random.Random(11)
        fact = [{"k": rng.randrange(20), "v": v} for v in values]
        dim = [{"k": i, "label": f"g{i % 4}"} for i in range(20)]

        def build(ctx):
            return (frame(ctx, fact, "fact", ["k", "v"])
                    .join(frame(ctx, dim, "dim", ["k", "label"]), on="k")
                    .group_by("label").agg(n=count_(), s=sum_(col("v"))))
        outs = {}
        for aqe in (False, True):
            per_mode = []
            for columnar in (False, True):
                ctx = DataflowContext(default_parallelism=6)
                q = build(ctx)
                out = q.collect(columnar=columnar, adaptive=aqe)
                if aqe:     # non-vacuity: the shuffle really was rewritten
                    assert "broadcast_joins" in q.last_adaptive_report.kinds()
                per_mode.append(list(map(repr, out)))
            assert per_mode[0] == per_mode[1], \
                f"columnar/row diverge (adaptive={aqe})"
            outs[aqe] = per_mode[0]
        return outs

    def test_int_sums_byte_equal_across_modes(self):
        rng = random.Random(5)
        outs = self._outputs([rng.randrange(1000) for _ in range(2000)])
        assert sorted(outs[False]) == sorted(outs[True])

    def test_float_sums_equal_within_reassociation(self):
        import ast
        import math
        rng = random.Random(5)
        outs = self._outputs([rng.random() * 100 for _ in range(2000)])
        by_label = {}
        for aqe, rows in outs.items():
            for r in map(ast.literal_eval, rows):
                by_label.setdefault(r["label"], {})[aqe] = r
        assert len(by_label) == 4
        for label, pair in by_label.items():
            off, on = pair[False], pair[True]
            assert off["n"] == on["n"], label       # counts are exact
            assert math.isclose(off["s"], on["s"], rel_tol=1e-12), label
