"""Columnar vs row-interpreter equivalence.

Every supported query shape — and a seeded randomized query generator —
must produce identical rows (order-normalized by repr; exactly ordered
where the contract promises it) from the vectorized and interpreted
engines, including across the UDF-fallback boundary and on the simulated
cluster.
"""

import random

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.dataflow import DataflowContext, SimEngine
from repro.simcore import Simulator
from repro.sql import (
    DataFrame,
    avg_,
    col,
    columnar_enabled,
    count_,
    lit,
    max_,
    min_,
    set_columnar,
    sum_,
)
from repro.sql.columnar import ColumnBatch, make_array


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def sales_rows(n=300, seed=5):
    rng = random.Random(seed)
    return [{
        "region": rng.choice(["na", "eu", "ap", "sa"]),
        "product": f"p{rng.randrange(12)}",
        "price": round(rng.uniform(1.0, 90.0), 2),
        "qty": rng.randrange(0, 9),
        "ok": rng.random() < 0.5,
    } for _ in range(n)]


def both(q, exact=True):
    """Collect through each engine and assert equivalence."""
    a = q.collect(columnar=True)
    b = q.collect(columnar=False)
    if exact:
        assert list(map(repr, a)) == list(map(repr, b))
    else:
        assert sorted(map(repr, a)) == sorted(map(repr, b))
    return a


# -- batch / array building blocks ----------------------------------------


class TestMakeArray:
    def test_dtypes(self):
        assert make_array([1, 2, 3]).dtype == np.int64
        assert make_array([1.5, 2.0]).dtype == np.float64
        assert make_array([True, False]).dtype == bool
        assert make_array(["a", "b"]).dtype == object
        # bool is not an int here: mixing must preserve exact reprs
        assert make_array([True, 1]).dtype == object
        assert make_array([1, 2.5]).dtype == object
        assert make_array([1, None]).dtype == object
        assert make_array([]).dtype == object

    def test_int64_overflow_keeps_python_ints(self):
        big = 2 ** 80
        arr = make_array([big, 1])
        assert arr.dtype == object
        assert arr.tolist() == [big, 1]

    def test_roundtrip_is_lossless(self):
        rows = [{"a": 1, "b": "x", "c": 2.5, "d": True},
                {"a": 7, "b": None, "c": -0.5, "d": False}]
        batch = ColumnBatch.from_rows(rows, ["a", "b", "c", "d"])
        assert list(map(repr, batch.to_rows())) == list(map(repr, rows))


# -- fixed query shapes ----------------------------------------------------


class TestQueryShapes:
    def test_select_where(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.where(col("qty") > 3).select(
            "region", (col("price") * col("qty")).alias("rev")))

    def test_with_column_chain(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.with_column("rev", col("price") * col("qty"))
               .with_column("half", col("rev") / 2)
               .where(col("half") > 10))

    def test_group_agg_all_functions(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.group_by("region").agg(
            total=sum_(col("price")), n=count_(), mean=avg_(col("qty")),
            lo=min_(col("price")), hi=max_(col("price"))))

    def test_multi_key_group(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.group_by("region", "product").agg(n=count_(),
                                                  s=sum_(col("qty"))))

    def test_int_key_group_is_vectorized_and_exact(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.group_by("qty").agg(n=count_(), s=sum_(col("price"))))

    def test_bool_ops_and_not(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.where((col("ok") & (col("qty") > 2)) |
                      ~(col("price") > 50.0)))

    def test_bool_aggregates(self, ctx):
        # sum/min/max over a bool column keeps the row path's exact reprs
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.group_by("region").agg(
            s=sum_(col("ok")), lo=min_(col("ok")), hi=max_(col("ok")),
            m=avg_(col("ok"))))

    def test_literal_and_negation_columns(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.select("region", lit(7).alias("seven"),
                       (-col("qty")).alias("negq"),
                       (col("qty") % 3).alias("m")))

    def test_join_orderby_limit_distinct_fallback(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        dims = DataFrame.from_rows(ctx, [
            {"region": r, "zone": z}
            for r, z in [("na", 1), ("eu", 2), ("ap", 3), ("sa", 4)]])
        both(df.join(dims, on="region")
               .where(col("zone") > 1)
               .order_by("price", ascending=False).limit(25))
        both(df.select("region", "product").distinct(), exact=False)

    def test_columnar_resumes_above_row_fallback(self, ctx):
        # join (row) -> with_column/where/group_by re-enter columnar
        df = DataFrame.from_rows(ctx, sales_rows())
        dims = DataFrame.from_rows(ctx, [
            {"region": r, "zone": z}
            for r, z in [("na", 1), ("eu", 2), ("ap", 3), ("sa", 4)]])
        both(df.join(dims, on="region")
               .with_column("wrev", col("price") * col("zone"))
               .where(col("wrev") > 20)
               .group_by("zone").agg(n=count_(), t=sum_(col("wrev"))))

    def test_empty_frame(self, ctx):
        df = DataFrame.from_rows(ctx, [], schema=["a", "b"])
        both(df.where(col("a") > 0).select("b"))
        both(df.group_by("a").agg(n=count_()))

    def test_count_action(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        q = df.where(col("ok"))
        assert q.count(columnar=True) == q.count(columnar=False)

    def test_unoptimized_equivalence(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        q = df.with_column("rev", col("price") * col("qty")).where(
            col("rev") > 30).group_by("region").agg(t=sum_(col("rev")))
        a = q.collect(optimized=False, columnar=True)
        b = q.collect(optimized=False, columnar=False)
        assert list(map(repr, a)) == list(map(repr, b))


# -- the UDF fallback boundary --------------------------------------------


class TestUdfBoundary:
    def test_udf_sees_python_scalars(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        seen = []
        q = df.select(
            col("qty").apply(lambda v: seen.append(type(v)) or v + 1,
                             "inc").alias("q1"))
        out = q.collect(columnar=True)
        assert all(t is int for t in seen)        # never numpy scalars
        assert [r["q1"] for r in out] == \
            [r["q1"] for r in q.collect(columnar=False)]

    def test_udf_inside_vectorized_expression(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.with_column(
            "x", (col("product").apply(lambda s: len(s), "strlen") *
                  col("qty")) + 1).where(col("x") % 2 == 0))

    def test_udf_in_predicate_and_agg_input(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        both(df.where(col("product").apply(
                lambda s: s.endswith(("1", "3")), "odd_ish"))
               .group_by("region")
               .agg(t=sum_(col("qty").apply(lambda v: v * 10, "tens"))))


# -- randomized query generator -------------------------------------------


def random_query(df, rng):
    numeric = ["price", "qty"]
    cats = ["region", "product"]
    q = df
    for _ in range(rng.randrange(1, 5)):
        kind = rng.randrange(4)
        if kind == 0:
            c = rng.choice(numeric)
            q = q.where(col(c) > rng.uniform(0, 8))
        elif kind == 1:
            c = rng.choice(numeric)
            name = f"d{rng.randrange(1000)}"
            q = q.with_column(name, col(c) * rng.randrange(1, 4) + 1)
            numeric = numeric + [name]
        elif kind == 2:
            c = rng.choice(numeric)
            name = f"u{rng.randrange(1000)}"
            q = q.with_column(
                name, col(c).apply(lambda v, _m=rng.randrange(2, 5):
                                   (v * _m) if v else v, "udf"))
            numeric = numeric + [name]
        else:
            q = q.where(~(col(rng.choice(cats)) == rng.choice(
                ["na", "p1", "p7", "zz"])))
    if rng.random() < 0.6:
        keys = rng.sample(cats, rng.randrange(1, 3))
        c = rng.choice(numeric)
        q = q.group_by(*keys).agg(
            n=count_(), s=sum_(col(c)), m=avg_(col(c)),
            lo=min_(col(c)), hi=max_(col(c)))
    return q


@pytest.mark.parametrize("seed", range(15))
def test_randomized_queries_equivalent(ctx, seed):
    rng = random.Random(seed)
    df = DataFrame.from_rows(ctx, sales_rows(n=250, seed=seed))
    q = random_query(df, rng)
    both(q)


# -- engine toggles and the simulated cluster ------------------------------


def test_global_toggle(ctx):
    df = DataFrame.from_rows(ctx, sales_rows(n=50))
    q = df.where(col("qty") > 1)
    assert columnar_enabled()
    try:
        set_columnar(False)
        assert not columnar_enabled()
        rows_off = q.collect()
        set_columnar(True)
        assert list(map(repr, q.collect())) == list(map(repr, rows_off))
    finally:
        set_columnar(True)


def test_simengine_runs_columnar_plans():
    sim = Simulator()
    cl = make_cluster(sim, 2, 3)
    ctx = DataflowContext(default_parallelism=6)
    eng = SimEngine(cl)
    df = DataFrame.from_rows(ctx, sales_rows(n=400))
    q = (df.with_column("rev", col("price") * col("qty"))
           .where(col("rev") > 20)
           .group_by("region").agg(t=sum_(col("rev")), n=count_()))
    res = sim.run_until_done(eng.collect(q.to_dataset(columnar=True)))
    assert list(map(repr, res.value)) == \
        list(map(repr, q.collect(columnar=False)))
