"""Extra structured-layer semantics: top-N queries, plan composition."""

import pytest

from repro.dataflow import DataflowContext
from repro.sql import DataFrame, col, count_, lit, sum_


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def rows():
    return [{"k": i % 7, "v": (i * 37) % 101} for i in range(140)]


class TestTopN:
    def test_limit_after_order_by_is_global_top_n(self, ctx):
        df = DataFrame.from_rows(ctx, rows())
        got = df.order_by("v", ascending=False).limit(5).collect()
        expect = sorted(rows(), key=lambda r: -r["v"])[:5]
        assert [r["v"] for r in got] == [r["v"] for r in expect]

    def test_limit_optimized_matches_naive(self, ctx):
        df = DataFrame.from_rows(ctx, rows())
        q = df.order_by("v").limit(10)
        assert q.collect(optimized=True) == q.collect(optimized=False)

    def test_top_groups_query(self, ctx):
        q = (DataFrame.from_rows(ctx, rows())
             .group_by("k").agg(total=sum_(col("v")), n=count_())
             .order_by("total", ascending=False)
             .limit(3))
        got = q.collect()
        assert len(got) == 3
        totals = [r["total"] for r in got]
        assert totals == sorted(totals, reverse=True)


class TestComposition:
    def test_filter_after_aggregate_having_semantics(self, ctx):
        q = (DataFrame.from_rows(ctx, rows())
             .group_by("k").agg(n=count_())
             .where(col("n") == 20))
        got = q.collect()
        assert got and all(r["n"] == 20 for r in got)
        assert q.collect(optimized=True) == q.collect(optimized=False)

    def test_join_of_aggregates(self, ctx):
        base = DataFrame.from_rows(ctx, rows())
        sums = base.group_by("k").agg(total=sum_(col("v")))
        counts = base.group_by("k").agg(n=count_())
        j = sums.join(counts, on="k").with_column(
            "mean", col("total") / col("n"))
        for r in j.collect():
            assert r["mean"] == pytest.approx(r["total"] / r["n"])

    def test_literal_columns(self, ctx):
        q = DataFrame.from_rows(ctx, rows()).select(
            col("k"), lit("tag").alias("source")).limit(4)
        assert all(r["source"] == "tag" for r in q.collect())

    def test_distinct_after_projection(self, ctx):
        q = (DataFrame.from_rows(ctx, rows())
             .select((col("k") % 2).alias("parity"))
             .distinct())
        got = sorted(r["parity"] for r in q.collect())
        assert got == [0, 1]

    def test_chained_with_columns(self, ctx):
        q = (DataFrame.from_rows(ctx, rows())
             .with_column("a", col("v") + 1)
             .with_column("b", col("a") * 2))
        r = q.collect()[0]
        assert r["b"] == (r["v"] + 1) * 2


class TestDatasetInterop:
    def test_to_dataset_is_plain_dataset(self, ctx):
        ds = DataFrame.from_rows(ctx, rows()).where(col("v") > 50) \
            .to_dataset()
        # it's a regular Dataset: dataflow ops compose on top
        n = ds.map(lambda r: r["v"]).filter(lambda v: v % 2 == 0).count()
        expect = sum(1 for r in rows() if r["v"] > 50 and r["v"] % 2 == 0)
        assert n == expect

    def test_runs_on_sim_engine(self, ctx):
        from repro.cluster import make_cluster
        from repro.dataflow import SimEngine
        from repro.simcore import Simulator
        sim = Simulator()
        eng = SimEngine(make_cluster(sim, 1, 4))
        q = (DataFrame.from_rows(ctx, rows())
             .group_by("k").agg(total=sum_(col("v"))))
        res = sim.run_until_done(eng.collect(q.to_dataset()))
        assert sorted(map(repr, res.value)) == sorted(map(repr, q.collect()))
