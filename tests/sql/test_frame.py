"""DataFrame semantics vs plain-Python references."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.dataflow import DataflowContext
from repro.sql import DataFrame, avg_, col, count_, lit, max_, min_, sum_


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def sales_rows():
    rows = []
    for i in range(120):
        rows.append({
            "region": ["na", "eu", "ap"][i % 3],
            "product": f"p{i % 8}",
            "price": 10 * (i % 7 + 1),
            "qty": i % 5,
        })
    return rows


class TestBasics:
    def test_schema_inferred(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        assert df.schema == ["region", "product", "price", "qty"]

    def test_empty_needs_schema(self, ctx):
        with pytest.raises(PlanError):
            DataFrame.from_rows(ctx, [])
        df = DataFrame.from_rows(ctx, [], schema=["a"])
        assert df.collect() == []

    def test_select_columns(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows()).select("region", "qty")
        assert df.schema == ["region", "qty"]
        assert all(set(r) == {"region", "qty"} for r in df.collect())

    def test_select_expressions(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows()).select(
            col("region"), (col("price") * col("qty")).alias("rev"))
        first = df.collect()[0]
        assert set(first) == {"region", "rev"}

    def test_where(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows()).where(col("qty") == 0)
        rows = df.collect()
        assert rows and all(r["qty"] == 0 for r in rows)
        assert len(rows) == sum(1 for r in sales_rows() if r["qty"] == 0)

    def test_with_column(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows()).with_column(
            "rev", col("price") * col("qty"))
        assert df.schema[-1] == "rev"
        for r in df.collect():
            assert r["rev"] == r["price"] * r["qty"]

    def test_count(self, ctx):
        assert DataFrame.from_rows(ctx, sales_rows()).count() == 120

    def test_limit(self, ctx):
        assert DataFrame.from_rows(ctx, sales_rows()).limit(7).count() == 7
        assert DataFrame.from_rows(ctx, sales_rows()).limit(0).count() == 0

    def test_distinct(self, ctx):
        got = DataFrame.from_rows(ctx, sales_rows()).select("region") \
            .distinct().collect()
        assert sorted(r["region"] for r in got) == ["ap", "eu", "na"]

    def test_order_by(self, ctx):
        got = DataFrame.from_rows(ctx, sales_rows()) \
            .order_by("price", ascending=False).collect()
        prices = [r["price"] for r in got]
        assert prices == sorted(prices, reverse=True)


class TestAggregation:
    def test_all_agg_functions(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        got = (df.group_by("region")
               .agg(n=count_(), s=sum_(col("qty")), mn=min_(col("qty")),
                    mx=max_(col("qty")), a=avg_(col("qty")))
               .collect())
        ref = defaultdict(list)
        for r in sales_rows():
            ref[r["region"]].append(r["qty"])
        for row in got:
            q = ref[row["region"]]
            assert row["n"] == len(q)
            assert row["s"] == sum(q)
            assert row["mn"] == min(q) and row["mx"] == max(q)
            assert row["a"] == pytest.approx(sum(q) / len(q))

    def test_multi_key_grouping(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        got = df.group_by("region", "product").agg(n=count_()).collect()
        ref = defaultdict(int)
        for r in sales_rows():
            ref[(r["region"], r["product"])] += 1
        assert {(g["region"], g["product"]): g["n"] for g in got} == dict(ref)

    def test_agg_on_expression(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        got = df.group_by("region").agg(
            rev=sum_(col("price") * col("qty"))).collect()
        ref = defaultdict(int)
        for r in sales_rows():
            ref[r["region"]] += r["price"] * r["qty"]
        assert {g["region"]: g["rev"] for g in got} == dict(ref)

    def test_empty_agg_rejected(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        with pytest.raises(PlanError):
            df.group_by("region").agg()

    def test_unknown_group_key(self, ctx):
        with pytest.raises(PlanError):
            DataFrame.from_rows(ctx, sales_rows()).group_by("nope")


class TestJoins:
    def users(self, ctx):
        return DataFrame.from_rows(
            ctx, [{"uid": i, "country": ["br", "us", "jp"][i % 3]}
                  for i in range(12)], name="users")

    def orders(self, ctx):
        return DataFrame.from_rows(
            ctx, [{"uid": i % 15, "amount": i + 1} for i in range(60)],
            name="orders")

    def test_inner_join(self, ctx):
        got = self.orders(ctx).join(self.users(ctx), on="uid").collect()
        # uids 12..14 have no user: dropped
        assert all(r["uid"] < 12 for r in got)
        assert len(got) == sum(1 for i in range(60) if i % 15 < 12)
        assert all({"uid", "amount", "country"} == set(r) for r in got)

    def test_left_join_null_extends(self, ctx):
        got = self.orders(ctx).join(self.users(ctx), on="uid",
                                    how="left").collect()
        assert len(got) == 60
        unmatched = [r for r in got if r["uid"] >= 12]
        assert unmatched and all(r["country"] is None for r in unmatched)

    def test_ambiguous_columns_rejected(self, ctx):
        a = DataFrame.from_rows(ctx, [{"k": 1, "x": 1}])
        b = DataFrame.from_rows(ctx, [{"k": 1, "x": 2}])
        with pytest.raises(PlanError):
            a.join(b, on="k")

    def test_join_then_aggregate(self, ctx):
        got = (self.orders(ctx).join(self.users(ctx), on="uid")
               .group_by("country").agg(total=sum_(col("amount")))
               .collect())
        ref = defaultdict(int)
        for i in range(60):
            uid = i % 15
            if uid < 12:
                ref[["br", "us", "jp"][uid % 3]] += i + 1
        assert {g["country"]: g["total"] for g in got} == dict(ref)


class TestOptimizedEquivalence:
    """Optimizer must never change results."""

    def test_pipeline_equivalence(self, ctx):
        df = DataFrame.from_rows(ctx, sales_rows())
        q = (df.with_column("rev", col("price") * col("qty"))
             .where(col("rev") > 50)
             .group_by("region")
             .agg(total=sum_(col("rev")), n=count_())
             .order_by("total"))
        assert q.collect(optimized=True) == q.collect(optimized=False)

    def test_join_filter_equivalence(self, ctx):
        users = DataFrame.from_rows(
            ctx, [{"uid": i, "vip": i % 4 == 0} for i in range(20)])
        orders = DataFrame.from_rows(
            ctx, [{"uid": i % 25, "amount": i} for i in range(100)])
        q = (orders.join(users, on="uid", how="left")
             .where(col("amount") % 2 == 0))
        a = sorted(map(repr, q.collect(optimized=True)))
        b = sorted(map(repr, q.collect(optimized=False)))
        assert a == b

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-20, 20)),
                    min_size=1, max_size=60),
           st.integers(-20, 20))
    @settings(max_examples=30, deadline=None)
    def test_random_filter_agg_equivalence(self, pairs, threshold):
        ctx = DataflowContext()
        rows = [{"k": k, "v": v} for k, v in pairs]
        df = DataFrame.from_rows(ctx, rows)
        q = (df.where(col("v") > threshold)
             .group_by("k").agg(s=sum_(col("v")), n=count_()))
        a = sorted(map(repr, q.collect(optimized=True)))
        b = sorted(map(repr, q.collect(optimized=False)))
        assert a == b
        # reference
        ref = defaultdict(lambda: [0, 0])
        for k, v in pairs:
            if v > threshold:
                ref[k][0] += v
                ref[k][1] += 1
        expect = sorted(repr({"k": k, "s": s, "n": n})
                        for k, (s, n) in ref.items())
        assert a == expect


class TestExplainAndShow:
    def test_explain_mentions_nodes(self, ctx):
        q = (DataFrame.from_rows(ctx, sales_rows())
             .where(col("qty") > 1).select("region"))
        text = q.explain(optimized=False)
        assert "Filter" in text and "Project" in text and "Scan" in text

    def test_show_prints(self, ctx, capsys):
        DataFrame.from_rows(ctx, sales_rows()).limit(2).show()
        out = capsys.readouterr().out
        assert "region" in out
