"""Column expressions: evaluation, references, operator sugar."""

import pytest

from repro.common.errors import PlanError
from repro.sql import col, lit

ROW = {"a": 3, "b": 4, "s": "hi", "flag": True}


class TestEval:
    def test_column(self):
        assert col("a").eval(ROW) == 3

    def test_missing_column(self):
        with pytest.raises(PlanError):
            col("zzz").eval(ROW)

    def test_literal(self):
        assert lit(42).eval(ROW) == 42

    def test_arithmetic(self):
        assert (col("a") + col("b")).eval(ROW) == 7
        assert (col("a") - 1).eval(ROW) == 2
        assert (col("a") * 2).eval(ROW) == 6
        assert (col("b") / 2).eval(ROW) == 2.0
        assert (col("b") % 3).eval(ROW) == 1
        assert (10 - col("a")).eval(ROW) == 7
        assert (2 * col("a")).eval(ROW) == 6
        assert (1 + col("a")).eval(ROW) == 4

    def test_comparisons(self):
        assert (col("a") < col("b")).eval(ROW) is True
        assert (col("a") >= 3).eval(ROW) is True
        assert (col("a") == 3).eval(ROW) is True
        assert (col("a") != 3).eval(ROW) is False
        assert (col("a") > 10).eval(ROW) is False
        assert (col("a") <= 2).eval(ROW) is False

    def test_boolean_combinators(self):
        e = (col("a") > 1) & (col("b") < 10)
        assert e.eval(ROW) is True
        e2 = (col("a") > 10) | (col("flag") == True)  # noqa: E712
        assert e2.eval(ROW) is True
        assert (~(col("a") > 1)).eval(ROW) is False

    def test_negation(self):
        assert (-col("a")).eval(ROW) == -3

    def test_apply(self):
        assert col("s").apply(str.upper).eval(ROW) == "HI"


class TestReferencesAndNames:
    def test_references_union(self):
        e = (col("a") + col("b")) * lit(2)
        assert e.references() == frozenset({"a", "b"})

    def test_literal_no_references(self):
        assert lit(5).references() == frozenset()

    def test_alias_sets_name(self):
        e = (col("a") + 1).alias("a_plus")
        assert e.name == "a_plus"
        assert e.eval(ROW) == 4
        assert e.references() == frozenset({"a"})

    def test_default_names(self):
        assert col("a").name == "a"
        assert (col("a") + col("b")).name == "(a + b)"
