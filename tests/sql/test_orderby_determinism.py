"""order_by tie-breaking is deterministic across executors and planners.

Sort keys with heavy duplicates used to be tie-broken by shuffle arrival
order, which is an accident of the executor (in-process vs pool) and of
the plan shape (full sort vs adaptive top-k).  The audit fixed the
lowering to tie-break on row *content* (``_sort_token``), making sorted
output a pure function of the result set.  These tests pin that:

* a pure-Python oracle predicts the exact output;
* row vs columnar vs top-k vs pool all agree byte-for-byte;
* adaptive on/off cannot perturb ordered results.
"""

import random

import pytest

from repro.dataflow import DataflowContext, ProcessPoolBackend
from repro.sql import DataFrame
from repro.sql.frame import _sort_token

SEED = 1234


def tie_rows(n=160, seed=SEED):
    rng = random.Random(seed)
    # only 4 distinct sort keys: ties everywhere
    return [{"g": rng.randrange(4), "v": rng.randrange(30), "tag": rng.choice("abc")}
            for _ in range(n)]


def oracle(rows, key, ascending, limit=None):
    out = sorted(rows, key=lambda r: (r[key], _sort_token(r, ["g", "v", "tag"])),
                 reverse=not ascending)
    return out if limit is None else out[:limit]


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(n_workers=2)
    yield backend
    backend.shutdown()


def _collect(build, pool=None, **kw):
    ctx = DataflowContext(default_parallelism=5)
    if pool is not None:
        ctx.attach_pool(pool)
        ctx.backend = "pool"
    return build(ctx).collect(**kw)


@pytest.mark.parametrize("ascending", [True, False])
def test_full_sort_matches_oracle_everywhere(ascending, pool):
    rows = tie_rows()
    expect = list(map(repr, oracle(rows, "g", ascending)))

    def build(ctx):
        return DataFrame.from_rows(ctx, rows, name="t").order_by(
            "g", ascending=ascending)
    for columnar in (False, True):
        for aqe in (False, True):
            got = _collect(build, columnar=columnar, adaptive=aqe)
            assert list(map(repr, got)) == expect, \
                f"columnar={columnar} adaptive={aqe}"
    pooled = _collect(build, pool=pool, columnar=True, adaptive=True)
    assert list(map(repr, pooled)) == expect


@pytest.mark.parametrize("limit", [1, 7, 40])
def test_topk_equals_full_sort_prefix(limit, pool):
    # adaptive rewrites order_by+limit into a two-level heap top-k; the
    # heap must produce exactly sorted(...)[:n], ties included
    rows = tie_rows(seed=SEED + 1)
    expect = list(map(repr, oracle(rows, "g", False, limit)))

    def build(ctx):
        return (DataFrame.from_rows(ctx, rows, name="t")
                .order_by("g", ascending=False).limit(limit))
    for columnar in (False, True):
        for aqe in (False, True):
            got = _collect(build, columnar=columnar, adaptive=aqe)
            assert list(map(repr, got)) == expect
    pooled = _collect(build, pool=pool, columnar=True, adaptive=True)
    assert list(map(repr, pooled)) == expect


def test_sort_token_is_content_only():
    # same content, different object identity: identical token
    a = {"g": 1, "v": 2, "tag": "x"}
    b = {"g": 1, "v": 2, "tag": "x"}
    assert _sort_token(a, ["g", "v", "tag"]) == _sort_token(b, ["g", "v", "tag"])
    # differing content anywhere in the row breaks the tie
    c = {"g": 1, "v": 2, "tag": "y"}
    assert _sort_token(a, ["g", "v", "tag"]) != _sort_token(c, ["g", "v", "tag"])
