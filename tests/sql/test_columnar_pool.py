"""Columnar SQL on the process pool: backend must be invisible.

The DataFrame layer routes every action through Dataset actions, so
switching the context backend to the worker pool must leave results
byte-identical — including vectorized columnar execution, whose numpy
column batches ship to workers as out-of-band pickle-5 buffers.
"""

import random

import pytest

from repro.dataflow import DataflowContext, ProcessPoolBackend
from repro.sql import DataFrame, avg_, col, count_, sum_

from .test_columnar import random_query, sales_rows


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(n_workers=2)
    yield backend
    backend.shutdown()


def collect_both_backends(build, pool, columnar=True):
    ctx_a = DataflowContext(default_parallelism=4)
    a = build(ctx_a).collect(columnar=columnar)
    ctx_b = DataflowContext(default_parallelism=4)
    ctx_b.attach_pool(pool)
    ctx_b.backend = "pool"
    b = build(ctx_b).collect(columnar=columnar)
    return a, b


@pytest.mark.parametrize("seed", range(6))
def test_random_queries_pool_identical(seed, pool):
    def build(ctx):
        df = DataFrame.from_rows(ctx, sales_rows(n=250, seed=seed))
        return random_query(df, random.Random(seed))
    local, pooled = collect_both_backends(build, pool)
    # repr-exact, order-exact (pickle bytes can differ only in object
    # sharing across rows, which deserialization does not preserve)
    assert list(map(repr, local)) == list(map(repr, pooled))


@pytest.mark.parametrize("columnar", [True, False])
def test_aggregate_query_pool_identical(columnar, pool):
    def build(ctx):
        df = DataFrame.from_rows(ctx, sales_rows(n=300, seed=9))
        return (df.where(col("qty") > 1)
                .with_column("rev", col("price") * col("qty"))
                .group_by("region")
                .agg(rev=sum_(col("rev")), price=avg_(col("price")),
                     n=count_()))
    local, pooled = collect_both_backends(build, pool, columnar=columnar)
    assert sorted(map(repr, local)) == sorted(map(repr, pooled))


def test_udf_fallback_pool_identical(pool):
    def build(ctx):
        df = DataFrame.from_rows(ctx, sales_rows(n=200, seed=3))
        return (df.with_column("tag",
                               col("product").apply(lambda p: p.upper()))
                .where(col("price") > 10.0)
                .select("tag", "price"))
    local, pooled = collect_both_backends(build, pool)
    assert list(map(repr, local)) == list(map(repr, pooled))


# -- joins and adaptive execution on the pool ------------------------------


@pytest.fixture(autouse=True)
def _reset_adaptive():
    from repro.sql.adaptive import AdaptiveConfig
    from repro.sql import set_adaptive
    yield
    set_adaptive(False, AdaptiveConfig())


def _join_tables(seed, n=220, nulls=True):
    rng = random.Random(seed)
    pool_keys = list(range(18)) + ([None] if nulls else [])
    fact = [{"k": rng.choice(pool_keys), "v": i} for i in range(n)]
    dim = [{"k": rng.choice(pool_keys), "w": i * 3} for i in range(n // 4)]
    return fact, dim


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("adaptive", [False, True])
def test_join_queries_pool_identical(seed, adaptive, pool):
    fact, dim = _join_tables(seed)
    how = ("inner", "left")[seed % 2]

    def build(ctx):
        f = DataFrame.from_rows(ctx, fact, name="fact", schema=["k", "v"])
        d = DataFrame.from_rows(ctx, dim, name="dim", schema=["k", "w"])
        return f.join(d, on="k", how=how)
    ctx_a = DataflowContext(default_parallelism=4)
    a = build(ctx_a).collect(columnar=True, adaptive=adaptive)
    ctx_b = DataflowContext(default_parallelism=4)
    ctx_b.attach_pool(pool)
    ctx_b.backend = "pool"
    b = build(ctx_b).collect(columnar=True, adaptive=adaptive)
    assert list(map(repr, a)) == list(map(repr, b))


def test_adaptive_broadcast_pool_identical(pool):
    # a dim table under the broadcast threshold: the rewrite must fire
    # and the broadcast payload must ship to pool workers intact
    from repro.sql import set_adaptive
    from repro.sql.adaptive import AdaptiveConfig
    set_adaptive(False, AdaptiveConfig(broadcast_rows=100))
    fact, _ = _join_tables(11, n=400, nulls=False)
    dim = [{"k": i, "label": f"g{i}"} for i in range(18)]

    def build(ctx):
        f = DataFrame.from_rows(ctx, fact, name="fact")
        d = DataFrame.from_rows(ctx, dim, name="dim")
        return (f.join(d, on="k")
                .group_by("label").agg(n=count_(), s=sum_(col("v"))))
    ctx_a = DataflowContext(default_parallelism=4)
    q = build(ctx_a)
    q.to_dataset(columnar=True, adaptive=True)
    assert "broadcast_joins" in q.last_adaptive_report.kinds()
    a = build(ctx_a).collect(columnar=True, adaptive=True)
    ctx_b = DataflowContext(default_parallelism=4)
    ctx_b.attach_pool(pool)
    ctx_b.backend = "pool"
    b = build(ctx_b).collect(columnar=True, adaptive=True)
    assert sorted(map(repr, a)) == sorted(map(repr, b))


def test_ordered_join_pool_byte_identical(pool):
    # content tie-break: pool vs in-process must agree byte-for-byte on
    # an ordered join even with adaptive top-k rewriting the sort
    fact, dim = _join_tables(5)

    def build(ctx):
        f = DataFrame.from_rows(ctx, fact, name="fact", schema=["k", "v"])
        d = DataFrame.from_rows(ctx, dim, name="dim", schema=["k", "w"])
        return f.join(d, on="k").order_by("v", ascending=False).limit(29)
    for adaptive in (False, True):
        local, pooled = [], []
        ctx_a = DataflowContext(default_parallelism=4)
        local = build(ctx_a).collect(columnar=True, adaptive=adaptive)
        ctx_b = DataflowContext(default_parallelism=4)
        ctx_b.attach_pool(pool)
        ctx_b.backend = "pool"
        pooled = build(ctx_b).collect(columnar=True, adaptive=adaptive)
        assert list(map(repr, local)) == list(map(repr, pooled))
