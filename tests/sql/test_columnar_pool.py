"""Columnar SQL on the process pool: backend must be invisible.

The DataFrame layer routes every action through Dataset actions, so
switching the context backend to the worker pool must leave results
byte-identical — including vectorized columnar execution, whose numpy
column batches ship to workers as out-of-band pickle-5 buffers.
"""

import random

import pytest

from repro.dataflow import DataflowContext, ProcessPoolBackend
from repro.sql import DataFrame, avg_, col, count_, sum_

from .test_columnar import random_query, sales_rows


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(n_workers=2)
    yield backend
    backend.shutdown()


def collect_both_backends(build, pool, columnar=True):
    ctx_a = DataflowContext(default_parallelism=4)
    a = build(ctx_a).collect(columnar=columnar)
    ctx_b = DataflowContext(default_parallelism=4)
    ctx_b.attach_pool(pool)
    ctx_b.backend = "pool"
    b = build(ctx_b).collect(columnar=columnar)
    return a, b


@pytest.mark.parametrize("seed", range(6))
def test_random_queries_pool_identical(seed, pool):
    def build(ctx):
        df = DataFrame.from_rows(ctx, sales_rows(n=250, seed=seed))
        return random_query(df, random.Random(seed))
    local, pooled = collect_both_backends(build, pool)
    # repr-exact, order-exact (pickle bytes can differ only in object
    # sharing across rows, which deserialization does not preserve)
    assert list(map(repr, local)) == list(map(repr, pooled))


@pytest.mark.parametrize("columnar", [True, False])
def test_aggregate_query_pool_identical(columnar, pool):
    def build(ctx):
        df = DataFrame.from_rows(ctx, sales_rows(n=300, seed=9))
        return (df.where(col("qty") > 1)
                .with_column("rev", col("price") * col("qty"))
                .group_by("region")
                .agg(rev=sum_(col("rev")), price=avg_(col("price")),
                     n=count_()))
    local, pooled = collect_both_backends(build, pool, columnar=columnar)
    assert sorted(map(repr, local)) == sorted(map(repr, pooled))


def test_udf_fallback_pool_identical(pool):
    def build(ctx):
        df = DataFrame.from_rows(ctx, sales_rows(n=200, seed=3))
        return (df.with_column("tag",
                               col("product").apply(lambda p: p.upper()))
                .where(col("price") > 10.0)
                .select("tag", "price"))
    local, pooled = collect_both_backends(build, pool)
    assert list(map(repr, local)) == list(map(repr, pooled))
