"""Optimizer rules: pushdown placement and pruning correctness."""

import pytest

from repro.dataflow import DataflowContext
from repro.sql import (
    DataFrame,
    Filter,
    Join,
    Project,
    Scan,
    col,
    count_,
    optimize,
    sum_,
)
from repro.sql.frame import _clone


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def rows_a():
    return [{"k": i % 5, "x": i, "y": -i, "unused": "z"} for i in range(40)]


def rows_b():
    return [{"k": i % 5, "w": i * i} for i in range(20)]


def find_nodes(plan, cls):
    out = []

    def walk(p):
        if isinstance(p, cls):
            out.append(p)
        for c in p.children:
            walk(c)
    walk(plan)
    return out


class TestFilterPushdown:
    def test_filter_through_project(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .select("k", "x")
             .where(col("x") > 10))
        plan = optimize(_clone(q.plan))
        # the filter must now sit below the project (its child is the scan)
        filt = find_nodes(plan, Filter)[0]
        assert isinstance(filt.child, Scan)

    def test_filter_not_pushed_through_computed_column(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .select((col("x") + col("y")).alias("s"))
             .where(col("s") > 0))
        plan = optimize(_clone(q.plan))
        filt = find_nodes(plan, Filter)[0]
        # s is computed: pushing below the project would be unsound
        assert isinstance(filt.child, Project)

    def test_filter_into_join_left(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a())
        b = DataFrame.from_rows(ctx, rows_b())
        q = a.join(b, on="k").where(col("x") > 5)
        plan = optimize(_clone(q.plan))
        join = find_nodes(plan, Join)[0]
        assert isinstance(join.left, Filter)

    def test_filter_into_join_right_inner_only(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a())
        b = DataFrame.from_rows(ctx, rows_b())
        inner = a.join(b, on="k").where(col("w") > 5)
        plan = optimize(_clone(inner.plan))
        assert isinstance(find_nodes(plan, Join)[0].right, Filter)
        left = a.join(b, on="k", how="left").where(col("w") > 5)
        plan2 = optimize(_clone(left.plan))
        # unsafe for LEFT joins: must stay above
        assert isinstance(plan2, Filter)

    def test_filter_rewritten_through_rename(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .select(col("x").alias("renamed"), col("k"))
             .where(col("renamed") > 30))
        plan = optimize(_clone(q.plan))
        filt = find_nodes(plan, Filter)[0]
        assert isinstance(filt.child, Scan)
        # and results are still right
        got = q.collect()
        assert all(r["renamed"] > 30 for r in got)
        assert len(got) == 9


class TestColumnPruning:
    def test_scan_narrowed(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .group_by("k").agg(n=count_()))
        plan = optimize(_clone(q.plan))
        scan = find_nodes(plan, Scan)[0]
        assert scan.columns == ["k"]

    def test_unused_never_leaves_scan(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .where(col("x") > 3)
             .select("k", "x"))
        plan = optimize(_clone(q.plan))
        scan = find_nodes(plan, Scan)[0]
        assert "unused" not in scan.columns and "y" not in scan.columns

    def test_join_sides_pruned_independently(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a(), name="A")
        b = DataFrame.from_rows(ctx, rows_b(), name="B")
        q = a.join(b, on="k").group_by("k").agg(s=sum_(col("w")))
        plan = optimize(_clone(q.plan))
        by_name = {s.name: s for s in find_nodes(plan, Scan)}
        assert by_name["A"].columns == ["k"]            # a: only the key
        assert set(by_name["B"].columns) == {"k", "w"}

    def test_pruned_project_drops_dead_exprs(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .with_column("rev", col("x") * 2)
             .group_by("k").agg(s=sum_(col("rev"))))
        plan = optimize(_clone(q.plan))
        proj = find_nodes(plan, Project)[0]
        assert set(e.name for e in proj.exprs) == {"k", "rev"}

    def test_shuffle_volume_actually_shrinks(self, ctx):
        """The point of it all: optimized plans move fewer bytes.

        Joins shuffle whole rows, so pruning a fat unused column before
        the join slashes the wire volume.  (Group-by alone would not show
        this: its map-side combiner already shuffles compact states.)
        """
        fat = [{"k": i % 10, "x": i, "pad": "p" * 500} for i in range(300)]
        dims = [{"k": i, "label": f"g{i}"} for i in range(10)]

        def shuffled_bytes(optimized):
            c = DataflowContext()
            q = (DataFrame.from_rows(c, fat, name="fact")
                 .join(DataFrame.from_rows(c, dims, name="dim"), on="k")
                 .group_by("label").agg(s=sum_(col("x"))))
            q.collect(optimized=optimized)
            return sum(m.bytes_written
                       for m in c.local_executor.shuffle_metrics.values())
        assert shuffled_bytes(True) < shuffled_bytes(False) / 5
