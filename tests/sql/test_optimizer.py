"""Optimizer rules: pushdown placement and pruning correctness."""

import pytest

from repro.dataflow import DataflowContext
from repro.sql import (
    DataFrame,
    Filter,
    Join,
    Project,
    Scan,
    col,
    count_,
    optimize,
    sum_,
)
from repro.sql.frame import _clone


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def rows_a():
    return [{"k": i % 5, "x": i, "y": -i, "unused": "z"} for i in range(40)]


def rows_b():
    return [{"k": i % 5, "w": i * i} for i in range(20)]


def find_nodes(plan, cls):
    out = []

    def walk(p):
        if isinstance(p, cls):
            out.append(p)
        for c in p.children:
            walk(c)
    walk(plan)
    return out


class TestFilterPushdown:
    def test_filter_through_project(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .select("k", "x")
             .where(col("x") > 10))
        plan = optimize(_clone(q.plan))
        # the filter must now sit below the project (its child is the scan)
        filt = find_nodes(plan, Filter)[0]
        assert isinstance(filt.child, Scan)

    def test_filter_not_pushed_through_computed_column(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .select((col("x") + col("y")).alias("s"))
             .where(col("s") > 0))
        plan = optimize(_clone(q.plan))
        filt = find_nodes(plan, Filter)[0]
        # s is computed: pushing below the project would be unsound
        assert isinstance(filt.child, Project)

    def test_filter_into_join_left(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a())
        b = DataFrame.from_rows(ctx, rows_b())
        q = a.join(b, on="k").where(col("x") > 5)
        plan = optimize(_clone(q.plan))
        join = find_nodes(plan, Join)[0]
        assert isinstance(join.left, Filter)

    def test_filter_into_join_right_inner_only(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a())
        b = DataFrame.from_rows(ctx, rows_b())
        inner = a.join(b, on="k").where(col("w") > 5)
        plan = optimize(_clone(inner.plan))
        assert isinstance(find_nodes(plan, Join)[0].right, Filter)
        left = a.join(b, on="k", how="left").where(col("w") > 5)
        plan2 = optimize(_clone(left.plan))
        # unsafe for LEFT joins: must stay above
        assert isinstance(plan2, Filter)

    def test_filter_rewritten_through_rename(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .select(col("x").alias("renamed"), col("k"))
             .where(col("renamed") > 30))
        plan = optimize(_clone(q.plan))
        filt = find_nodes(plan, Filter)[0]
        assert isinstance(filt.child, Scan)
        # and results are still right
        got = q.collect()
        assert all(r["renamed"] > 30 for r in got)
        assert len(got) == 9


class TestColumnPruning:
    def test_scan_narrowed(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .group_by("k").agg(n=count_()))
        plan = optimize(_clone(q.plan))
        scan = find_nodes(plan, Scan)[0]
        assert scan.columns == ["k"]

    def test_unused_never_leaves_scan(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .where(col("x") > 3)
             .select("k", "x"))
        plan = optimize(_clone(q.plan))
        scan = find_nodes(plan, Scan)[0]
        assert "unused" not in scan.columns and "y" not in scan.columns

    def test_join_sides_pruned_independently(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a(), name="A")
        b = DataFrame.from_rows(ctx, rows_b(), name="B")
        q = a.join(b, on="k").group_by("k").agg(s=sum_(col("w")))
        plan = optimize(_clone(q.plan))
        by_name = {s.name: s for s in find_nodes(plan, Scan)}
        assert by_name["A"].columns == ["k"]            # a: only the key
        assert set(by_name["B"].columns) == {"k", "w"}

    def test_pruned_project_drops_dead_exprs(self, ctx):
        q = (DataFrame.from_rows(ctx, rows_a())
             .with_column("rev", col("x") * 2)
             .group_by("k").agg(s=sum_(col("rev"))))
        plan = optimize(_clone(q.plan))
        proj = find_nodes(plan, Project)[0]
        assert set(e.name for e in proj.exprs) == {"k", "rev"}

    def test_shuffle_volume_actually_shrinks(self, ctx):
        """The point of it all: optimized plans move fewer bytes.

        Joins shuffle whole rows, so pruning a fat unused column before
        the join slashes the wire volume.  (Group-by alone would not show
        this: its map-side combiner already shuffles compact states.)
        """
        fat = [{"k": i % 10, "x": i, "pad": "p" * 500} for i in range(300)]
        dims = [{"k": i, "label": f"g{i}"} for i in range(10)]

        def shuffled_bytes(optimized, columnar):
            c = DataflowContext()
            q = (DataFrame.from_rows(c, fat, name="fact")
                 .join(DataFrame.from_rows(c, dims, name="dim"), on="k")
                 .group_by("label").agg(s=sum_(col("x"))))
            q.collect(optimized=optimized, columnar=columnar)
            return sum(m.bytes_written
                       for m in c.local_executor.shuffle_metrics.values())
        # calibrated on the row interpreter, which pickles whole row dicts
        assert shuffled_bytes(True, False) < shuffled_bytes(False, False) / 5
        # the columnar block shuffle compresses the fat column so the
        # unoptimized baseline is already far smaller; pruning must still
        # strictly shrink what goes over the wire
        assert shuffled_bytes(True, True) < shuffled_bytes(False, True)


class TestJoinFilterInteraction:
    """Conjunct-splitting at the join boundary (the PR-7 audit fix)."""

    def test_mixed_conjunction_splits_across_join(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a(), name="A")
        b = DataFrame.from_rows(ctx, rows_b(), name="B")
        q = a.join(b, on="k").where(
            (col("x") > 3) & (col("w") < 100) & (col("x") < col("w")))
        plan = optimize(_clone(q.plan))
        join = find_nodes(plan, Join)[0]
        # one-sided conjuncts sank into their sides...
        left_f = find_nodes(join.left, Filter)
        right_f = find_nodes(join.right, Filter)
        assert left_f and left_f[0].predicate.references() == {"x"}
        assert right_f and right_f[0].predicate.references() == {"w"}
        # ...and the cross-side conjunct stayed above the join
        top = find_nodes(plan, Filter)[0]
        assert top.predicate.references() == {"x", "w"}
        assert isinstance(top.child, Join)

    def test_both_sides_conjunct_never_pushes(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a(), name="A")
        b = DataFrame.from_rows(ctx, rows_b(), name="B")
        q = a.join(b, on="k").where(col("x") < col("w"))
        plan = optimize(_clone(q.plan))
        join = find_nodes(plan, Join)[0]
        assert not find_nodes(join.left, Filter)
        assert not find_nodes(join.right, Filter)

    def test_left_join_keeps_right_conjunct_above(self, ctx):
        a = DataFrame.from_rows(ctx, rows_a(), name="A")
        b = DataFrame.from_rows(ctx, rows_b(), name="B")
        q = a.join(b, on="k", how="left").where(
            (col("x") > 3) & (col("w") < 100))
        plan = optimize(_clone(q.plan))
        join = find_nodes(plan, Join)[0]
        assert find_nodes(join.left, Filter)        # left side still sinks
        assert not find_nodes(join.right, Filter)   # right must not
        top = find_nodes(plan, Filter)[0]
        assert top.predicate.references() == {"w"}

    def _no_foreign_filters(self, plan):
        """No filter anywhere references columns outside its child schema."""
        for f in find_nodes(plan, Filter):
            assert f.predicate.references() <= set(f.child.schema), \
                f"filter over {f.predicate.references()} below schema " \
                f"{f.child.schema}"

    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_plans_optimize_equivalently(self, seed):
        import random
        rng = random.Random(seed)
        ctx = DataflowContext(default_parallelism=4)
        a = DataFrame.from_rows(ctx, rows_a(), name="A")
        b = DataFrame.from_rows(ctx, rows_b(), name="B")
        how = rng.choice(["inner", "left"])
        q = a.join(b, on="k", how=how)
        sided = {"left": ["x", "y"], "right": ["w"], "both": None}
        for _ in range(rng.randrange(1, 4)):
            kind = rng.choice(["left", "right", "both", "and"])
            if kind == "left":
                q = q.where(col(rng.choice(sided["left"])) > rng.randrange(-20, 20))
            elif kind == "right":
                q = q.where(col("w") < rng.randrange(0, 300))
            elif kind == "both":
                q = q.where(col("x") < col("w"))
            else:
                q = q.where((col("x") > rng.randrange(-5, 10)) &
                            (col("w") < rng.randrange(50, 300)) &
                            (col("y") < rng.randrange(0, 20)))
        if rng.random() < 0.5:
            q = q.group_by("k").agg(n=count_(), s=sum_(col("x")))
        plain = q.collect(optimized=False)
        opt = q.collect(optimized=True)
        assert sorted(map(repr, plain)) == sorted(map(repr, opt))
        self._no_foreign_filters(optimize(_clone(q.plan)))
