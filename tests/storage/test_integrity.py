"""Integrity primitives: round-trip, flip detection, edge geometry."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ChecksumError
from repro.storage import integrity
from repro.storage.integrity import Seal, chunk_checksums, flip_byte, seal, verify


class TestSealRoundTrip:
    def test_intact_data_verifies(self):
        data = bytes(range(256)) * 100
        verify(data, seal(data))   # no raise

    def test_empty_payload(self):
        s = seal(b"")
        assert s.length == 0 and s.sums == ()
        verify(b"", s)   # zero-length round-trips

    def test_chunk_count_geometry(self):
        # exactly-one-chunk, one-over, and many-chunk payloads
        cs = 64
        for n, want in ((0, 0), (1, 1), (cs, 1), (cs + 1, 2),
                        (5 * cs, 5), (5 * cs + 3, 6)):
            assert len(chunk_checksums(b"x" * n, cs)) == want

    @given(st.binary(max_size=4096),
           st.integers(min_value=1, max_value=257))
    @settings(max_examples=150, deadline=None)
    def test_round_trip_any_chunking(self, data, cs):
        verify(data, seal(data, cs))

    def test_seal_is_picklable(self):
        s = seal(b"hello world")
        assert pickle.loads(pickle.dumps(s)) == s

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            chunk_checksums(b"x", 0)


class TestFlipDetection:
    @given(st.binary(min_size=1, max_size=2048),
           st.integers(min_value=0),
           st.integers(min_value=1, max_value=300))
    @settings(max_examples=200, deadline=None)
    def test_every_single_byte_flip_detected(self, data, offset, cs):
        # CRC32 catches any burst error <= 32 bits, so a one-byte XOR
        # flip must ALWAYS raise — this is the detection guarantee the
        # whole data plane leans on
        s = seal(data, cs)
        bad = flip_byte(data, offset)
        assert bad != data
        with pytest.raises(ChecksumError):
            verify(bad, s)

    def test_exhaustive_flips_small_payload(self):
        data = b"0123456789abcdef" * 4
        s = seal(data, 16)
        for off in range(len(data)):
            with pytest.raises(ChecksumError):
                verify(flip_byte(data, off), s)

    def test_flip_offset_wraps(self):
        data = b"abc"
        assert flip_byte(data, 3) == flip_byte(data, 0)

    def test_flip_empty_is_noop(self):
        assert flip_byte(b"", 5) == b""

    def test_flip_returns_fresh_object(self):
        data = b"shared"
        bad = flip_byte(data, 2)
        assert data == b"shared" and bad != data


class TestTruncationAndProvenance:
    @given(st.binary(min_size=1, max_size=1024),
           st.integers(min_value=0, max_value=1023))
    @settings(max_examples=100, deadline=None)
    def test_truncation_detected(self, data, cut):
        cut = cut % len(data)
        with pytest.raises(ChecksumError):
            verify(data[:cut], seal(data))

    def test_extension_detected(self):
        data = b"x" * 100
        with pytest.raises(ChecksumError):
            verify(data + b"y", seal(data))

    def test_error_carries_provenance(self):
        data = b"a" * 200
        s = seal(data, 64)
        bad = flip_byte(data, 130)   # third chunk
        with pytest.raises(ChecksumError) as ei:
            verify(bad, s, layer="dfs.replica", path="/f#b0s1",
                   offset_base=1000)
        err = ei.value
        assert err.layer == "dfs.replica"
        assert err.path == "/f#b0s1"
        assert err.offset == 1000 + 128   # chunk-aligned within the payload

    def test_error_pickles_with_provenance(self):
        # pool workers ship these driver-side via __reduce__
        err = ChecksumError(layer="shuffle", path="/tmp/s0-m1.buckets",
                            offset=42, expected=1, actual=2)
        back = pickle.loads(pickle.dumps(err))
        assert (back.layer, back.path, back.offset) == \
            ("shuffle", "/tmp/s0-m1.buckets", 42)


class TestObjectSeals:
    def test_object_round_trip(self):
        obj = [("k", 1), ("j", [2, 3])]
        integrity.verify_object(obj, integrity.seal_object(obj))

    def test_object_mutation_detected(self):
        obj = [("k", 1)]
        s = integrity.seal_object(obj)
        obj.append(("rot", -1))
        with pytest.raises(ChecksumError):
            integrity.verify_object(obj, s)

    def test_chunk_boundary_payloads(self):
        # payload sizes straddling the default chunk size
        for n in (integrity.CHUNK_SIZE - 1, integrity.CHUNK_SIZE,
                  integrity.CHUNK_SIZE + 1):
            data = b"z" * n
            s = seal(data)
            verify(data, s)
            with pytest.raises(ChecksumError):
                verify(flip_byte(data, n - 1), s)
