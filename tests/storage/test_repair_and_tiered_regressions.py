"""Regression tests from the bug-audit sweep of the storage layer.

1. DFS repair target death: a repair target that dies mid-copy must not
   be committed into ``block.locations`` — its fail event already fired,
   so no watcher would ever re-protect the block (permanent silent
   degradation).  The fixed path retries with a fresh target and counts
   the failure.
2. TieredStore: promoting an object larger than the top tier used to
   demote the whole tier empty and crash on the empty LRU; now oversized
   objects simply stay put.  Absent keys count as misses.
"""

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.common.units import MB
from repro.simcore import Simulator
from repro.storage import DFSConfig, DistributedFS
from repro.storage.tiered import Tier, TieredStore


def setup_fs(**cfg):
    sim = Simulator()
    cl = make_cluster(sim, 3, 4)
    fs = DistributedFS(cl, DFSConfig(block_size=MB(4), **cfg), seed=1)
    return sim, cl, fs


class TestRepairTargetDeath:
    def test_dead_target_not_committed_and_block_reprotected(self):
        sim, cl, fs = setup_fs(detection_delay=1.0)
        data = np.random.default_rng(0).integers(
            0, 256, MB(4), dtype=np.uint8).tobytes()
        sim.run_until_done(fs.write("/f", data=data, writer="h0_0"))
        blk = fs.blocks_of("/f")[0]
        dead = blk.locations[1]
        cl.nodes[dead].fail()

        # kill every node the repair could pick as target, shortly after
        # the repair starts — whichever target it chose dies mid-copy
        holders = set(blk.nodes())
        outsiders = [n for n in cl.nodes if n not in holders and n != dead]
        victims = outsiders[: len(outsiders) - 3]   # leave a few candidates

        def chaos(s):
            yield s.timeout(1.2)       # detection fired, copy in flight
            for v in victims:
                cl.nodes[v].fail()
        sim.process(chaos(sim), name="kill-targets")
        sim.run(until=sim.now + 120.0)

        # whatever location is recorded must be alive: a dead target was
        # never committed
        for node in blk.nodes():
            if node != dead:
                assert cl.nodes[node].alive or node in holders
        live = [n for n in blk.nodes() if cl.nodes[n].alive]
        assert len(live) == 3          # re-protected despite target deaths
        # the file still reads byte-exact
        got, _ = sim.run_until_done(fs.read("/f", reader=live[0]))
        assert got == data

    def test_failed_repair_attempts_are_counted(self):
        sim, cl, fs = setup_fs(detection_delay=1.0)
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        blk = fs.blocks_of("/f")[0]
        dead = blk.locations[1]
        holders = set(blk.nodes())
        outsiders = [n for n in cl.nodes if n not in holders]
        cl.nodes[dead].fail()

        def chaos(s):
            yield s.timeout(1.2)
            for v in outsiders[:-2]:
                cl.nodes[v].fail()
        sim.process(chaos(sim), name="kill-targets")
        sim.run(until=sim.now + 120.0)
        if fs.repairs_failed:
            # a failed try burned repair traffic without committing
            assert fs.repair_bytes >= MB(4)
        # one repair per lost slot: the initial loss, plus possibly a
        # re-repair when a committed target was itself killed later
        assert fs.repairs_started >= 1
        assert fs.repairs_started == \
            int(fs.metrics.value("dfs.repairs_started"))


class TestTieredRegressions:
    def tiers(self):
        return [Tier("mem", MB(8), 1e-6, 10e9),
                Tier("ssd", MB(64), 1e-4, 2e9),
                Tier("hdd", MB(512), 8e-3, 0.2e9)]

    def test_oversized_object_access_does_not_crash(self):
        store = TieredStore(self.tiers())
        store.put("big", MB(16))       # larger than mem: lands on ssd
        assert store.tier_of("big") == "ssd"
        store.put("small", MB(1))
        # the crash: promoting "big" would demote mem empty then IndexError
        store.access("big")
        assert store.tier_of("big") == "ssd"   # stayed put
        assert store.tier_of("small") == "mem"  # untouched
        assert store.stats.promotions == 0

    def test_normal_promotion_still_works(self):
        store = TieredStore(self.tiers())
        store.put("a", MB(2))
        # push "a" down by filling mem
        for i in range(4):
            store.put(f"fill{i}", MB(2))
        if store.tier_of("a") == "mem":
            pytest.skip("LRU kept it resident")   # pragma: no cover
        store.access("a")
        assert store.tier_of("a") == "mem"
        assert store.stats.promotions == 1

    def test_missing_key_counts_miss(self):
        store = TieredStore(self.tiers())
        store.put("x", MB(1))
        with pytest.raises(KeyError):
            store.access("ghost")
        assert store.stats.misses == 1
        store.access("x")
        assert store.stats.misses == 1
        assert store.stats.accesses == 1
