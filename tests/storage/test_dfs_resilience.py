"""DFS x resilience policies: breakers steer reads/repairs, hedged reads."""

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.resilience import (
    BreakerConfig,
    HedgePolicy,
    ResiliencePolicies,
    RetryPolicy,
)
from repro.simcore import Simulator
from repro.storage.dfs import DFSConfig, DistributedFS


def _fs(policies=None, auto_repair=True, speed_factors=None, seed=3):
    sim = Simulator()
    cl = make_cluster(sim, n_racks=3, nodes_per_rack=3,
                      speed_factors=speed_factors)
    dfs = DistributedFS(cl, DFSConfig(block_size=64 * 1024,
                                      auto_repair=auto_repair,
                                      detection_delay=0.5),
                        seed=seed, policies=policies)
    return sim, cl, dfs


def _payload(n=100_000, seed=11):
    return np.random.default_rng(seed).bytes(n)


BREAKER = ResiliencePolicies(breaker_config=BreakerConfig(
    failure_threshold=1, recovery_time=60.0))


class TestBreakerNodeEvents:
    def test_fail_trips_and_recover_resets(self):
        sim, cl, dfs = _fs(BREAKER, auto_repair=False)
        cl.nodes["h0_0"].fail()
        sim.run(until=1.0)
        assert dfs.breaker.state("h0_0", sim.now) == "open"
        cl.nodes["h0_0"].recover()
        sim.run(until=2.0)
        assert dfs.breaker.state("h0_0", sim.now) == "closed"

    def test_reads_avoid_breaker_open_replica(self):
        # with the reader-local replica's breaker open, the read must be
        # served by some other replica; each served source shows up as a
        # closed breaker entry via record_success, the open one stays open
        sim, cl, dfs = _fs(BREAKER, auto_repair=False)
        data = _payload()
        sim.run_until_done(dfs.write("/f.bin", data=data, writer="h0_0",
                                     mode="replicate"))
        local = dfs.locations("/f.bin")[0][0]
        dfs.breaker.trip(local, sim.now)
        got, _ = sim.run_until_done(dfs.read("/f.bin", reader=local))
        assert got == data
        served = {n for n, t in dfs.breaker._targets.items()
                  if t.state == "closed"}
        assert served               # a non-broken replica served the read
        assert local not in served  # never the open one
        assert dfs.breaker.state(local, sim.now) == "open"

    def test_all_breakers_open_still_reads(self):
        # availability beats breaker hygiene: the unfiltered replica list
        # comes back when every candidate is broken
        sim, cl, dfs = _fs(BREAKER, auto_repair=False)
        data = _payload()
        sim.run_until_done(dfs.write("/f.bin", data=data, writer="h0_0",
                                     mode="replicate"))
        for n in cl.nodes:
            dfs.breaker.trip(n, sim.now)
        got, _ = sim.run_until_done(dfs.read("/f.bin", reader="h2_2"))
        assert got == data


class TestHedgedReads:
    def test_hedged_read_engages_and_data_survives(self):
        policies = ResiliencePolicies(
            hedge=HedgePolicy(quantile=0.5, multiplier=1.5, min_samples=2))
        sim, cl, dfs = _fs(policies, auto_repair=False)
        data = _payload()
        sim.run_until_done(dfs.write("/f.bin", data=data, writer="h0_0",
                                     mode="replicate"))
        # make the preferred (reader-local) replica a straggler so the
        # hedge to the second replica wins the race
        local = dfs.locations("/f.bin")[0][0]
        for _ in range(3):   # build the duration estimate
            got, _ = sim.run_until_done(dfs.read("/f.bin", reader=local))
            assert got == data
        cl.nodes[local].set_speed_factor(0.05)
        got, _ = sim.run_until_done(dfs.read("/f.bin", reader=local))
        assert got == data
        assert dfs.hedged_reads >= 1

    def test_no_hedging_below_min_samples(self):
        policies = ResiliencePolicies(
            hedge=HedgePolicy(min_samples=100))
        sim, _cl, dfs = _fs(policies, auto_repair=False)
        data = _payload()
        sim.run_until_done(dfs.write("/f.bin", data=data, writer="h0_0",
                                     mode="replicate"))
        got, _ = sim.run_until_done(dfs.read("/f.bin", reader="h2_2"))
        assert got == data
        assert dfs.hedged_reads == 0


class TestRepairPolicy:
    def test_repair_exhaustion_is_counted_not_raised(self):
        policies = ResiliencePolicies(
            retry=RetryPolicy(max_attempts=1))
        sim, _cl, dfs = _fs(policies)
        block = type("B", (), {"block_id": 0})()
        session = dfs._repair_session(block, 0)
        delay = dfs._repair_failed(session, "rereplicate:b0s0", "target_lost")
        assert delay < 0
        assert dfs.repairs_abandoned == 1
        assert dfs.repairs_failed == 1

    def test_repair_backoff_delay_flows_through(self):
        policies = ResiliencePolicies(
            retry=RetryPolicy(max_attempts=5, base_delay=2.0, jitter="none"))
        sim, _cl, dfs = _fs(policies)
        block = type("B", (), {"block_id": 0})()
        session = dfs._repair_session(block, 0)
        delay = dfs._repair_failed(session, "op", "target_lost")
        assert delay == pytest.approx(2.0)
        assert dfs.repairs_abandoned == 0

    def test_policy_repair_still_recovers_node_loss(self):
        policies = ResiliencePolicies(
            retry=RetryPolicy(max_attempts=8, base_delay=0.1, seed=1),
            breaker_config=BreakerConfig(failure_threshold=2))
        sim, cl, dfs = _fs(policies)
        data = _payload()
        sim.run_until_done(dfs.write("/f.bin", data=data, writer="h0_0",
                                     mode="replicate"))
        victim = dfs.locations("/f.bin")[0][0]
        cl.nodes[victim].fail()
        sim.run(until=30.0)
        assert dfs.repairs_started >= 1
        # the dead node's slot was re-homed onto a live target
        assert all(n != victim for n in dfs.locations("/f.bin")[0])
        got, _ = sim.run_until_done(dfs.read("/f.bin", reader="h2_2"))
        assert got == data
