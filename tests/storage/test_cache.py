"""Cache replacement policies: behaviour, bounds, and Belady optimality."""

import random
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.cache import (
    ClockCache,
    FIFOCache,
    LFUCache,
    LRUCache,
    TwoQCache,
    belady_hit_rate,
    make_policy,
    run_trace,
)

ALL = ["fifo", "lru", "clock", "lfu", "2q"]


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ALL)
    def test_capacity_never_exceeded(self, name):
        pol = make_policy(name, 8)
        rng = random.Random(0)
        for _ in range(500):
            pol.access(rng.randrange(40))
            assert len(pol) <= 8

    @pytest.mark.parametrize("name", ALL)
    def test_repeat_hits(self, name):
        pol = make_policy(name, 4)
        pol.access("x")
        assert pol.access("x") is True
        assert pol.stats.hits == 1 and pol.stats.misses == 1

    @pytest.mark.parametrize("name", ["fifo", "lru", "clock", "lfu"])
    def test_working_set_fits(self, name):
        pol = make_policy(name, 10)
        trace = list(range(10)) * 20
        stats = run_trace(pol, trace)
        assert stats.hit_rate == pytest.approx(190 / 200)

    def test_2q_working_set_fits_main_queue(self):
        # 2Q splits capacity into probation + main; the working set must
        # fit the *main* queue to stay resident
        pol = make_policy("2q", 16)    # main queue = 12 >= 10
        trace = list(range(10)) * 20
        stats = run_trace(pol, trace)
        assert stats.hit_rate > 0.8

    @pytest.mark.parametrize("name", ALL)
    def test_hit_rate_zero_for_scan(self, name):
        pol = make_policy(name, 4)
        stats = run_trace(pol, range(1000))
        assert stats.hit_rate == 0.0

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("magic", 4)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestLRU:
    def test_evicts_least_recent(self):
        c = LRUCache(2)
        c.access("a")
        c.access("b")
        c.access("a")      # a most recent
        c.access("c")      # evicts b
        assert "a" in c and "c" in c and "b" not in c

    def test_matches_reference_model(self):
        """LRU against an OrderedDict reference on a random trace."""
        c = LRUCache(16)
        ref = OrderedDict()
        rng = random.Random(42)
        for _ in range(3000):
            k = rng.randrange(64)
            expect_hit = k in ref
            if expect_hit:
                ref.move_to_end(k)
            else:
                if len(ref) >= 16:
                    ref.popitem(last=False)
                ref[k] = None
            assert c.access(k) is expect_hit


class TestFIFO:
    def test_ignores_recency(self):
        c = FIFOCache(2)
        c.access("a")
        c.access("b")
        c.access("a")      # does not refresh a
        c.access("c")      # evicts a (oldest inserted)
        assert "a" not in c and "b" in c and "c" in c


class TestLFU:
    def test_evicts_least_frequent(self):
        c = LFUCache(2)
        for _ in range(5):
            c.access("hot")
        c.access("warm")
        c.access("cold")   # evicts warm (freq 1, older tie goes first)
        assert "hot" in c and "cold" in c and "warm" not in c

    def test_frequency_survives(self):
        c = LFUCache(3)
        for _ in range(10):
            c.access("a")
        for k in ["b", "c", "d", "e"]:
            c.access(k)
        assert "a" in c


class TestClock:
    def test_second_chance(self):
        c = ClockCache(2)
        c.access("a")      # cold insert, ref=0
        c.access("b")      # cold insert, ref=0
        c.access("a")      # reference bit set on a
        c.access("c")      # hand clears a's bit... then evicts b (ref 0)
        assert "a" in c and "c" in c and "b" not in c


class TestTwoQ:
    def test_scan_resistance(self):
        """A one-pass scan must not flush the hot set out of Am."""
        c = TwoQCache(20, in_fraction=0.25)
        hot = [f"hot{i}" for i in range(10)]
        for _ in range(3):
            for h in hot:
                c.access(h)            # promoted to Am
        for s in range(1000):
            c.access(f"scan{s}")       # washes through A1in only
        hits = sum(c.access(h) for h in hot)
        assert hits >= 8

    def test_promotion_on_rereference(self):
        c = TwoQCache(8)
        c.access("x")
        c.access("x")      # promoted
        for s in range(10):
            c.access(f"s{s}")
        assert "x" in c


class TestBelady:
    def test_small_exact_case(self):
        # capacity 2, trace a b c a b: inserting c must evict a or b;
        # either way exactly one later hit -> 1/5
        assert belady_hit_rate(["a", "b", "c", "a", "b"], 2) == \
            pytest.approx(1 / 5)

    def test_favors_sooner_reuse(self):
        # trace: a b c b (cap 2). MIN evicts a (next use never) -> b hits
        assert belady_hit_rate(["a", "b", "c", "b"], 2) == \
            pytest.approx(1 / 4)

    def test_empty_trace(self):
        assert belady_hit_rate([], 4) == 0.0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            belady_hit_rate(["a"], 0)

    @given(st.lists(st.integers(0, 20), max_size=300), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_belady_dominates_all_policies(self, trace, cap):
        """Optimality: no mandatory-insertion online policy beats MIN.

        2Q at capacity 1 degenerates to a *bypass-capable* policy (its main
        queue vanishes, the ghost list still informs admission), which is
        outside the class MIN dominates — so it's only compared at cap >= 2.
        """
        opt = belady_hit_rate(trace, cap)
        for name in ALL:
            if name == "2q" and cap < 2:
                continue
            online = run_trace(make_policy(name, cap), trace).hit_rate
            assert online <= opt + 1e-12

    @given(st.lists(st.integers(0, 10), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_belady_perfect_when_everything_fits(self, trace):
        distinct = len(set(trace))
        if distinct:
            expected = (len(trace) - distinct) / len(trace)
            assert belady_hit_rate(trace, max(distinct, 1)) == \
                pytest.approx(expected)
