"""HDFS-style balancer: spread reduction, invariants."""

import pytest

from repro.cluster import make_cluster
from repro.common.units import MB
from repro.simcore import Simulator
from repro.storage import DFSConfig, DistributedFS


def hoarding_fs(n_files=6, rack_aware=False):
    sim = Simulator()
    cl = make_cluster(sim, 2, 4)
    fs = DistributedFS(cl, DFSConfig(block_size=MB(2),
                                     rack_aware=rack_aware), seed=0)
    for i in range(n_files):
        sim.run_until_done(fs.write(f"/f{i}", size=MB(2), writer="h0_0"))
    return sim, cl, fs


class TestBalancer:
    def test_reduces_spread(self):
        sim, cl, fs = hoarding_fs()
        before = fs.node_usage()
        spread_before = max(before.values()) - min(before.values())
        moves = sim.run_until_done(fs.balance(threshold=0.2))
        after = fs.node_usage()
        spread_after = max(after.values()) - min(after.values())
        assert moves > 0
        assert spread_after < spread_before

    def test_threshold_respected(self):
        sim, cl, fs = hoarding_fs()
        sim.run_until_done(fs.balance(threshold=0.25))
        usage = fs.node_usage()
        mean = sum(usage.values()) / len(usage)
        block = MB(2)
        # spread is within threshold OR within one block granularity
        assert max(usage.values()) - min(usage.values()) <= \
            max(0.25 * mean, block) + 1e-9

    def test_no_replica_duplicated_on_node(self):
        sim, cl, fs = hoarding_fs()
        sim.run_until_done(fs.balance(threshold=0.1))
        for i in range(6):
            for blk in fs.blocks_of(f"/f{i}"):
                nodes = blk.nodes()
                assert len(set(nodes)) == len(nodes)

    def test_replication_factor_preserved(self):
        sim, cl, fs = hoarding_fs()
        sim.run_until_done(fs.balance(threshold=0.1))
        for i in range(6):
            assert all(len(b.locations) == 3 for b in fs.blocks_of(f"/f{i}"))

    def test_data_still_readable_after_balance(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 4)
        fs = DistributedFS(cl, DFSConfig(block_size=MB(1),
                                         rack_aware=False), seed=0)
        payload = bytes(range(256)) * 4096   # 1 MB
        for i in range(4):
            sim.run_until_done(fs.write(f"/d{i}", data=payload,
                                        writer="h0_0"))
        sim.run_until_done(fs.balance(threshold=0.1))
        for i in range(4):
            got, _ = sim.run_until_done(fs.read(f"/d{i}", reader="h1_2"))
            assert got == payload

    def test_balanced_fs_is_noop(self):
        sim, cl, fs = hoarding_fs()
        sim.run_until_done(fs.balance(threshold=0.2))
        again = sim.run_until_done(fs.balance(threshold=0.2))
        assert again == 0

    def test_balance_moves_cost_network_traffic(self):
        sim, cl, fs = hoarding_fs()
        before = cl.net.total_bytes
        moves = sim.run_until_done(fs.balance(threshold=0.2))
        moved_bytes = cl.net.total_bytes - before
        assert moved_bytes == pytest.approx(moves * MB(2), rel=0.01)
