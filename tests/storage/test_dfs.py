"""Distributed filesystem: placement, reads, EC, failures, repair."""

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.common.errors import (
    BlockNotFoundError,
    ConfigError,
    InsufficientReplicasError,
)
from repro.common.units import MB
from repro.simcore import Simulator
from repro.storage import DFSConfig, DistributedFS


def setup(n_racks=3, nodes_per_rack=4, **cfg):
    sim = Simulator()
    cl = make_cluster(sim, n_racks, nodes_per_rack)
    fs = DistributedFS(cl, DFSConfig(block_size=MB(4), **cfg), seed=1)
    return sim, cl, fs


def payload(n=MB(6), seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, n, dtype=np.uint8).tobytes()


class TestWrite:
    def test_block_count(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/f", size=MB(10), writer="h0_0"))
        assert len(fs.blocks_of("/f")) == 3   # ceil(10/4)

    def test_replication_factor(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        assert len(fs.locations("/f")[0]) == 3

    def test_first_replica_on_writer(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/f", size=MB(1), writer="h1_2"))
        assert fs.locations("/f")[0][0] == "h1_2"

    def test_rack_aware_spread(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        racks = {cl.rack_of(n) for n in fs.locations("/f")[0]}
        assert len(racks) >= 2

    def test_replicas_distinct_nodes(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        nodes = fs.locations("/f")[0]
        assert len(set(nodes)) == len(nodes)

    def test_duplicate_path_rejected(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/f", size=1))
        with pytest.raises(ConfigError):
            fs.write("/f", size=1)

    def test_size_xor_data_required(self):
        sim, cl, fs = setup()
        with pytest.raises(ConfigError):
            fs.write("/f")
        with pytest.raises(ConfigError):
            fs.write("/f", size=1, data=b"x")

    def test_ec_stripe_width(self):
        sim, cl, fs = setup(ec_k=6, ec_m=3)
        sim.run_until_done(fs.write("/e", size=MB(4), mode="ec"))
        assert len(fs.locations("/e")[0]) == 9

    def test_ec_storage_cheaper_than_replication(self):
        sim, cl, fs = setup()
        data = payload(MB(8))
        sim.run_until_done(fs.write("/r", data=data, mode="replicate"))
        rep_bytes = fs.stored_bytes()
        sim.run_until_done(fs.write("/e", data=data, mode="ec"))
        ec_bytes = fs.stored_bytes() - rep_bytes
        assert ec_bytes < rep_bytes / 1.8   # 1.5x vs 3x


class TestRead:
    def test_roundtrip_replicated(self):
        sim, cl, fs = setup()
        data = payload()
        sim.run_until_done(fs.write("/f", data=data, writer="h0_0"))
        got, n = sim.run_until_done(fs.read("/f", reader="h2_1"))
        assert got == data and n == len(data)

    def test_roundtrip_ec(self):
        sim, cl, fs = setup()
        data = payload()
        sim.run_until_done(fs.write("/e", data=data, mode="ec"))
        got, _ = sim.run_until_done(fs.read("/e", reader="h0_3"))
        assert got == data

    def test_local_read_faster_than_remote(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        t0 = sim.now
        sim.run_until_done(fs.read("/f", reader="h0_0"))
        local_t = sim.now - t0
        t0 = sim.now
        # reader with no replica anywhere near
        holders = set(fs.locations("/f")[0])
        remote = next(n for n in cl.node_names
                      if n not in holders
                      and all(not cl.same_rack(n, h) for h in holders))
        sim.run_until_done(fs.read("/f", reader=remote))
        remote_t = sim.now - t0
        assert local_t < remote_t

    def test_missing_file(self):
        sim, cl, fs = setup()
        with pytest.raises(BlockNotFoundError):
            fs.read("/nope")

    def test_synthetic_file_reads_none_payload(self):
        sim, cl, fs = setup()
        sim.run_until_done(fs.write("/s", size=MB(2)))
        got, n = sim.run_until_done(fs.read("/s"))
        assert got is None and n == MB(2)


class TestFailures:
    def test_read_survives_replica_loss(self):
        sim, cl, fs = setup(auto_repair=False)
        data = payload()
        sim.run_until_done(fs.write("/f", data=data, writer="h0_0"))
        for blk in fs.blocks_of("/f"):
            cl.nodes[blk.locations[0]].fail()
        got, _ = sim.run_until_done(fs.read("/f", reader="h2_2"))
        assert got == data

    def test_read_fails_when_all_replicas_dead(self):
        sim, cl, fs = setup(auto_repair=False)
        sim.run_until_done(fs.write("/f", size=MB(1), writer="h0_0"))
        for node in fs.locations("/f")[0]:
            cl.nodes[node].fail()
        with pytest.raises(InsufficientReplicasError):
            sim.run_until_done(fs.read("/f", reader="h2_0"))

    def test_degraded_ec_read_counts(self):
        sim, cl, fs = setup(auto_repair=False)
        data = payload()
        sim.run_until_done(fs.write("/e", data=data, mode="ec"))
        blk = fs.blocks_of("/e")[0]
        cl.nodes[blk.locations[0]].fail()
        got, _ = sim.run_until_done(fs.read("/e", reader="h0_1"))
        assert got == data
        assert fs.degraded_reads >= 1

    def test_ec_read_fails_below_k(self):
        sim, cl, fs = setup(auto_repair=False, ec_k=6, ec_m=3)
        sim.run_until_done(fs.write("/e", size=MB(4), mode="ec"))
        blk = fs.blocks_of("/e")[0]
        for idx in list(blk.locations)[:4]:       # kill 4 of 9 -> 5 < 6 live
            cl.nodes[blk.locations[idx]].fail()
        with pytest.raises(InsufficientReplicasError):
            sim.run_until_done(fs.read("/e", reader="h0_0"))


class TestRepair:
    def test_rereplication_restores_factor(self):
        sim, cl, fs = setup(detection_delay=1.0)
        data = payload(MB(4))
        sim.run_until_done(fs.write("/f", data=data, writer="h0_0"))
        blk = fs.blocks_of("/f")[0]
        dead = blk.locations[1]
        cl.nodes[dead].fail()
        sim.run(until=sim.now + 60)
        live = [n for n in blk.nodes() if cl.nodes[n].alive]
        assert len(live) == 3
        assert dead not in live
        assert fs.repair_bytes >= MB(4)

    def test_ec_reconstruction_traffic_is_k_fold(self):
        sim, cl, fs = setup(detection_delay=1.0, ec_k=4, ec_m=2)
        data = payload(MB(4))
        sim.run_until_done(fs.write("/e", data=data, mode="ec"))
        blk = fs.blocks_of("/e")[0]
        cl.nodes[blk.locations[0]].fail()
        sim.run(until=sim.now + 60)
        frag = fs.codec.fragment_size(blk.size)
        assert fs.repair_bytes == pytest.approx(4 * frag)
        # content must be decodable afterwards from the new fragment set
        got, _ = sim.run_until_done(fs.read("/e", reader="h2_0"))
        assert got == data

    def test_transient_blip_no_repair(self):
        sim, cl, fs = setup(detection_delay=10.0)
        sim.run_until_done(fs.write("/f", size=MB(4), writer="h0_0"))
        victim = fs.locations("/f")[0][1]
        cl.nodes[victim].fail()

        def recover(s):
            yield s.timeout(2.0)
            cl.nodes[victim].recover()
        sim.process(recover(sim))
        sim.run(until=sim.now + 60)
        assert fs.repairs_started == 0
