"""Checksummed DFS data plane: detection, quarantine, scrub, repair."""

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.common.errors import InsufficientReplicasError
from repro.common.units import MB
from repro.simcore import Simulator
from repro.storage import DFSConfig, DistributedFS


def setup(n_racks=3, nodes_per_rack=3, **cfg):
    sim = Simulator()
    cl = make_cluster(sim, n_racks, nodes_per_rack)
    fs = DistributedFS(cl, DFSConfig(block_size=MB(4), **cfg), seed=1)
    return sim, cl, fs


def payload(n=100_000, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, n, dtype=np.uint8).tobytes()


def write(sim, fs, path, data, mode="replicate", writer="h0_0"):
    sim.run_until_done(fs.write(path, data=data, writer=writer, mode=mode))


class TestReplicatedDetection:
    def test_corrupt_replica_falls_to_next(self):
        sim, cl, fs = setup()
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        # rot the writer-local copy (slot 0, the closest for this reader)
        assert fs.corrupt_piece(block.block_id, 0) is not None
        got, _ = sim.run_until_done(fs.read("/f", reader="h0_0"))
        assert got == data                      # silent fault, right answer
        assert fs.integrity_detected == 1
        assert fs.integrity_quarantined == 1

    def test_quarantine_removes_location_before_repair(self):
        sim, cl, fs = setup(auto_repair=False)
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        fs.corrupt_piece(block.block_id, 0)
        sim.run_until_done(fs.read("/f", reader="h0_0"))
        # the corrupt copy must be OUT of the location map (and its
        # content dropped) the moment it is detected — never a repair
        # source, never served again
        assert 0 not in block.locations
        assert (block.block_id, 0) not in fs._content

    def test_detection_triggers_rereplication(self):
        sim, cl, fs = setup(detection_delay=0.5)
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        fs.corrupt_piece(block.block_id, 0)
        sim.run_until_done(fs.read("/f", reader="h0_0"))
        sim.run(until=sim.now + 30.0)
        assert len(block.locations) == fs.config.replication
        assert fs.audit_integrity() == []
        got, _ = sim.run_until_done(fs.read("/f", reader="h2_0"))
        assert got == data

    def test_checksums_off_serves_rot(self):
        # the A/B control: with checksums disabled the corruption flows
        # through silently — exactly the failure mode the plane removes
        sim, cl, fs = setup(checksums=False)
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        fs.corrupt_piece(block.block_id, 0)
        got, _ = sim.run_until_done(fs.read("/f", reader="h0_0"))
        assert got != data
        assert fs.integrity_detected == 0


class TestECDetection:
    def test_corrupt_fragment_excluded_from_decode(self):
        sim, cl, fs = setup(ec_k=4, ec_m=2)
        data = payload(200_000, seed=3)
        write(sim, fs, "/e", data, mode="ec")
        block = fs.blocks_of("/e")[0]
        fs.corrupt_piece(block.block_id, 1)
        got, _ = sim.run_until_done(fs.read("/e", reader="h1_0"))
        assert got == data
        assert fs.integrity_detected == 1
        assert fs.degraded_reads >= 1           # decode excluded the bad one

    def test_fragment_reconstructed_fresh(self):
        sim, cl, fs = setup(ec_k=4, ec_m=2, detection_delay=0.5)
        data = payload(200_000, seed=3)
        write(sim, fs, "/e", data, mode="ec")
        block = fs.blocks_of("/e")[0]
        fs.corrupt_piece(block.block_id, 2)
        sim.run_until_done(fs.read("/e", reader="h1_0"))
        sim.run(until=sim.now + 30.0)
        assert len(block.locations) == 6
        assert fs.audit_integrity() == []
        got, _ = sim.run_until_done(fs.read("/e", reader="h2_2"))
        assert got == data


class TestRepairSourceAudit:
    def test_two_corruption_regression(self):
        """Repair must never clone a corrupt source (satellite 2).

        Corrupt TWO of the three replicas.  The scrub quarantines both
        — each leaves ``block.locations`` before any re-replication
        picks sources — so the two repairs can only copy from the
        single clean replica.  A source-blind repair would have cloned
        rot and the per-reader round-trips below would fail.
        """
        sim, cl, fs = setup(detection_delay=0.5)
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        assert fs.corrupt_piece(block.block_id, 1) is not None
        assert fs.corrupt_piece(block.block_id, 2) is not None
        found = sim.run_until_done(fs.scrub_now())
        assert found == 2
        assert fs.integrity_quarantined == 2
        sim.run(until=sim.now + 60.0)
        assert fs.audit_integrity() == []
        assert len(block.locations) == fs.config.replication
        # every surviving copy round-trips from every rack
        for reader in ("h0_0", "h1_1", "h2_2"):
            got, _ = sim.run_until_done(fs.read("/f", reader=reader))
            assert got == data

    def test_repair_starved_of_clean_sources_refuses_rot(self):
        """When the only live source is corrupt, repair must abandon.

        Kill the two nodes holding clean replicas: re-replication's only
        candidate source fails verification, is quarantined, and the
        repair gives up — the block goes unavailable (loud) instead of
        re-protecting itself with rotten bytes (silent).  Recovering a
        clean node restores correct service.
        """
        sim, cl, fs = setup(detection_delay=0.5)
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        fs.corrupt_piece(block.block_id, 1)
        n0, n2 = block.locations[0], block.locations[2]
        cl.nodes[n0].fail()
        cl.nodes[n2].fail()
        sim.run(until=sim.now + 60.0)
        assert 1 not in block.locations          # rot quarantined
        assert fs.integrity_detected == 1
        with pytest.raises(InsufficientReplicasError):
            sim.run_until_done(fs.read("/f", reader="h1_0"))
        cl.nodes[n0].recover()
        got, _ = sim.run_until_done(fs.read("/f", reader="h1_0"))
        assert got == data

    def test_ec_reconstruction_skips_rotten_source(self):
        sim, cl, fs = setup(ec_k=4, ec_m=2, detection_delay=0.5)
        data = payload(200_000, seed=5)
        write(sim, fs, "/e", data, mode="ec")
        block = fs.blocks_of("/e")[0]
        # rot a data fragment silently, then kill the node holding the
        # last parity fragment: reconstructing slot 5 picks sources
        # sorted(live)[:k] = fragments 0..3, whose verification must
        # catch the rotten fragment 0, quarantine it, and retry with
        # the surviving clean set — never decode from rot
        fs.corrupt_piece(block.block_id, 0)
        cl.nodes[block.locations[5]].fail()
        sim.run(until=sim.now + 60.0)
        assert fs.integrity_detected == 1
        assert fs.integrity_quarantined == 1
        assert fs.audit_integrity() == []
        assert len(block.locations) == 6
        got, _ = sim.run_until_done(fs.read("/e", reader="h2_1"))
        assert got == data


class TestScrubber:
    def test_scrub_finds_latent_rot(self):
        sim, cl, fs = setup()
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        fs.corrupt_piece(block.block_id, 2)     # never read
        found = sim.run_until_done(fs.scrub_now())
        assert found == 1
        assert fs.integrity_detected == 1
        sim.run(until=sim.now + 30.0)
        assert fs.audit_integrity() == []
        assert len(block.locations) == fs.config.replication

    def test_scrub_counts_work(self):
        sim, cl, fs = setup()
        write(sim, fs, "/f", payload())
        before = sim.now
        found = sim.run_until_done(fs.scrub_now())
        assert found == 0
        assert fs.scrub_pieces == fs.config.replication
        assert fs.scrub_bytes == pytest.approx(100_000 * 3)
        assert sim.now > before                 # rate-paced, not free

    def test_background_scrubber_heals_without_reads(self):
        sim, cl, fs = setup(scrub_interval=5.0, detection_delay=0.5)
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        fs.corrupt_piece(block.block_id, 1)
        sim.run(until=sim.now + 60.0)
        assert fs.integrity_detected == 1
        assert fs.audit_integrity() == []
        assert len(block.locations) == fs.config.replication

    def test_clean_scrub_is_quiet(self):
        sim, cl, fs = setup(scrub_interval=5.0)
        write(sim, fs, "/f", payload())
        sim.run(until=60.0)
        assert fs.integrity_detected == 0
        assert fs.integrity_quarantined == 0


class TestAccounting:
    def test_latent_discard_counted_on_node_repair(self):
        # a corrupt copy on a node that dies is overwritten unread by
        # the node-failure repair; the books must still balance
        sim, cl, fs = setup(detection_delay=0.5)
        data = payload()
        write(sim, fs, "/f", data)
        block = fs.blocks_of("/f")[0]
        victim = block.locations[1]
        fs.corrupt_piece(block.block_id, 1)
        cl.nodes[victim].fail()
        sim.run(until=sim.now + 30.0)
        cl.nodes[victim].recover()
        assert fs.integrity_latent_discarded == 1
        assert fs.integrity_detected == 0
        assert fs.audit_integrity() == []
        got, _ = sim.run_until_done(fs.read("/f", reader="h2_0"))
        assert got == data

    def test_audit_is_free_and_silent(self):
        sim, cl, fs = setup()
        write(sim, fs, "/f", payload())
        block = fs.blocks_of("/f")[0]
        fs.corrupt_piece(block.block_id, 0)
        t0, d0 = sim.now, fs.integrity_detected
        assert fs.audit_integrity() == [(block.block_id, 0)]
        assert sim.now == t0 and fs.integrity_detected == d0
