"""Reed–Solomon codec: MDS property, round-trips, reconstruction."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import InsufficientReplicasError
from repro.storage.reedsolomon import RSCode


class TestBasics:
    def test_systematic_data_fragments(self):
        code = RSCode(4, 2)
        data = bytes(range(100))
        frags = code.encode(data)
        frag = code.fragment_size(len(data))
        padded = data + b"\0" * (4 * frag - len(data))
        for i in range(4):
            assert frags[i] == padded[i * frag:(i + 1) * frag]

    def test_fragment_count_and_size(self):
        code = RSCode(6, 3)
        frags = code.encode(b"x" * 1000)
        assert len(frags) == 9
        assert all(len(f) == code.fragment_size(1000) for f in frags)

    def test_storage_overhead(self):
        assert RSCode(6, 3).storage_overhead == pytest.approx(1.5)
        assert RSCode(10, 4).storage_overhead == pytest.approx(1.4)

    def test_empty_data(self):
        code = RSCode(3, 2)
        frags = code.encode(b"")
        assert frags == [b""] * 5
        assert code.decode({}, orig_len=0) == b""

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RSCode(0, 1)
        with pytest.raises(ValueError):
            RSCode(200, 100)

    def test_m_zero_is_striping(self):
        code = RSCode(4, 0)
        data = b"hello world, this is striped"
        frags = code.encode(data)
        assert code.decode(dict(enumerate(frags)), len(data)) == data


class TestMDSProperty:
    def test_every_k_subset_decodes(self):
        """The defining MDS property: ANY k of n fragments suffice."""
        code = RSCode(4, 3)
        data = np.random.default_rng(0).integers(
            0, 256, 257, dtype=np.uint8).tobytes()
        frags = code.encode(data)
        for subset in itertools.combinations(range(7), 4):
            sub = {i: frags[i] for i in subset}
            assert code.decode(sub, len(data)) == data, subset

    def test_fewer_than_k_fails(self):
        code = RSCode(4, 2)
        frags = code.encode(b"abcdef")
        with pytest.raises(InsufficientReplicasError):
            code.decode({0: frags[0], 1: frags[1], 2: frags[2]}, 6)

    @given(st.binary(min_size=1, max_size=512),
           st.integers(1, 8), st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_random_roundtrip(self, data, k, m):
        code = RSCode(k, m)
        frags = code.encode(data)
        rng = np.random.default_rng(len(data) * 31 + k * 7 + m)
        keep = sorted(rng.choice(k + m, size=k, replace=False).tolist())
        sub = {int(i): frags[int(i)] for i in keep}
        assert code.decode(sub, len(data)) == data


class TestReconstruction:
    def test_rebuild_each_fragment(self):
        code = RSCode(5, 3)
        data = bytes(np.random.default_rng(2).integers(0, 256, 333,
                                                       dtype=np.uint8))
        frags = code.encode(data)
        for missing in range(8):
            survivors = {i: frags[i] for i in range(8) if i != missing}
            survivors = dict(list(survivors.items())[:5])
            rebuilt = code.reconstruct_fragment(survivors, missing, len(data))
            assert rebuilt == frags[missing], missing

    def test_out_of_range_index(self):
        code = RSCode(2, 1)
        frags = code.encode(b"xy")
        with pytest.raises(ValueError):
            code.reconstruct_fragment(dict(enumerate(frags[:2])), 5, 2)

    def test_wrong_fragment_size_rejected(self):
        code = RSCode(2, 1)
        frags = code.encode(b"0123456789")
        bad = {0: frags[0], 1: frags[1][:-1]}
        with pytest.raises(ValueError):
            code.decode(bad, 10)
