"""Tiered storage hierarchy: placement, promotion, demotion, accounting."""

import pytest

from repro.common.errors import CapacityError, ConfigError
from repro.storage import Tier, TieredStore
from repro.workloads import zipf_block_trace


def three_tiers(mem=1000, ssd=5000, hdd=50_000):
    return [
        Tier("mem", mem, latency=1e-7, bandwidth=10e9),
        Tier("ssd", ssd, latency=1e-4, bandwidth=2e9),
        Tier("hdd", hdd, latency=8e-3, bandwidth=200e6),
    ]


class TestBasics:
    def test_put_lands_in_top_tier(self):
        ts = TieredStore(three_tiers())
        ts.put("a", 100)
        assert ts.tier_of("a") == "mem"
        assert ts.used_bytes("mem") == 100

    def test_access_time_ordering(self):
        tiers = three_tiers()
        assert tiers[0].access_time(100) < tiers[1].access_time(100) < \
            tiers[2].access_time(100)

    def test_unknown_key_raises(self):
        ts = TieredStore(three_tiers())
        with pytest.raises(KeyError):
            ts.access("ghost")

    def test_oversize_object_rejected(self):
        ts = TieredStore(three_tiers())
        with pytest.raises(CapacityError):
            ts.put("huge", 10 ** 9)

    def test_object_bigger_than_top_tier_goes_lower(self):
        ts = TieredStore(three_tiers(mem=100))
        ts.put("big", 2000)
        assert ts.tier_of("big") == "ssd"

    def test_overwrite_moves_back_up(self):
        ts = TieredStore(three_tiers())
        ts.put("a", 100)
        # push a out of mem
        for i in range(20):
            ts.put(f"f{i}", 100)
        assert ts.tier_of("a") != "mem"
        ts.put("a", 100)
        assert ts.tier_of("a") == "mem"

    def test_validation(self):
        with pytest.raises(ConfigError):
            TieredStore([])
        with pytest.raises(ConfigError):
            TieredStore([Tier("a", 10, 0, 1), Tier("a", 10, 0, 1)])
        ts = TieredStore(three_tiers())
        with pytest.raises(ConfigError):
            ts.put("x", 0)


class TestDemotion:
    def test_lru_demoted_on_overflow(self):
        ts = TieredStore(three_tiers(mem=300), promote_on_access=False)
        ts.put("a", 100)
        ts.put("b", 100)
        ts.put("c", 100)
        ts.access("a")           # refresh a; b is now LRU
        ts.put("d", 100)         # overflow: b demoted
        assert ts.tier_of("b") == "ssd"
        assert ts.tier_of("a") == "mem"
        assert ts.stats.demotions == 1

    def test_cascading_demotion_to_eviction(self):
        ts = TieredStore([Tier("mem", 200, 0, 1e9),
                          Tier("hdd", 200, 1e-3, 1e8)],
                         promote_on_access=False)
        for i in range(5):
            ts.put(f"k{i}", 100)
        # only 4 fit in the hierarchy; the very oldest fell off the end
        assert "k0" not in ts
        assert sum(f"k{i}" in ts for i in range(5)) == 4


class TestPromotion:
    def test_access_promotes(self):
        ts = TieredStore(three_tiers(mem=200))
        ts.put("hot", 100)
        ts.put("x", 100)
        ts.put("y", 100)        # pushes 'hot' toward ssd
        assert ts.tier_of("hot") == "ssd"
        ts.access("hot")
        assert ts.tier_of("hot") == "mem"
        assert ts.stats.promotions == 1
        assert ts.stats.migration_bytes >= 100

    def test_no_promotion_when_disabled(self):
        ts = TieredStore(three_tiers(mem=200), promote_on_access=False)
        ts.put("a", 100)
        ts.put("b", 100)
        ts.put("c", 100)
        tier_before = ts.tier_of("a")
        ts.access("a")
        assert ts.tier_of("a") == tier_before


class TestWorkloadBehaviour:
    def test_skew_keeps_hot_set_fast(self):
        """Under a Zipf trace the mean access time beats HDD-only."""
        tiers = three_tiers(mem=50 * 100, ssd=200 * 100)
        ts = TieredStore(tiers)
        trace = zipf_block_trace(5000, 500, skew=1.1, seed=3)
        for b in trace:
            key = int(b)
            if key in ts:
                ts.access(key)
            else:
                ts.put(key, 100)
        mean = ts.stats.mean_access_time()
        hdd_only = tiers[2].access_time(100)
        assert mean < hdd_only / 2
        # the hot head should live in mem at the end
        hot = int(trace[-1])  # arbitrary hot-ish key; head key 0 certainly
        assert ts.tier_of(0) == "mem"

    def test_hits_accounted_per_tier(self):
        ts = TieredStore(three_tiers())
        ts.put("a", 100)
        ts.access("a")
        ts.access("a")
        assert ts.stats.hits_per_tier["mem"] == 2
        assert ts.stats.accesses == 2
