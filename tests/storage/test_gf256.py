"""GF(2^8) field arithmetic: axioms and known vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.gf256 import (
    EXP_TABLE,
    LOG_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_matmul,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
)

elem = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestKnownVectors:
    def test_aes_example(self):
        # FIPS-197 worked example: {57} x {83} = {c1}
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_mul_by_zero_one(self):
        assert gf_mul(0, 77) == 0
        assert gf_mul(77, 1) == 77

    def test_exp_log_roundtrip(self):
        for a in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[a]] == a


class TestFieldAxioms:
    @given(elem, elem)
    @settings(max_examples=200, deadline=None)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elem, elem, elem)
    @settings(max_examples=200, deadline=None)
    def test_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elem, elem, elem)
    @settings(max_examples=200, deadline=None)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == \
            gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(nonzero)
    @settings(max_examples=100, deadline=None)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(elem, nonzero)
    @settings(max_examples=100, deadline=None)
    def test_div_is_mul_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    @given(nonzero, st.integers(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_pow_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = gf_mul(expected, a)
        assert gf_pow(a, n) == expected

    def test_pow_edge_cases(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0


class TestVectorized:
    @given(elem, st.lists(elem, min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_mul_bytes_matches_scalar(self, c, data):
        arr = np.array(data, dtype=np.uint8)
        out = gf_mul_bytes(c, arr)
        assert list(out) == [gf_mul(c, x) for x in data]

    def test_matmul_identity(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 256, size=(4, 10), dtype=np.uint8)
        eye = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gf_matmul(eye, m), m)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))

    def test_mat_inv_roundtrip(self):
        rng = np.random.default_rng(1)
        for n in (1, 2, 4, 6):
            while True:
                m = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
                try:
                    inv = gf_mat_inv(m)
                    break
                except np.linalg.LinAlgError:
                    continue
            assert np.array_equal(gf_matmul(m, inv), np.eye(n, dtype=np.uint8))

    def test_singular_matrix_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(m)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            gf_mat_inv(np.zeros((2, 3), np.uint8))
