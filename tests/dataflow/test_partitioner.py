"""Partitioners: determinism, ranges, balance."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.partitioner import (
    HashPartitioner,
    RangePartitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_known_types(self):
        for key in [42, "s", b"b", (1, "x"), 3.14, None, True]:
            h = stable_hash(key)
            assert 0 <= h < 2 ** 32

    def test_ints_spread(self):
        # sequential ints should not all collide mod small n
        buckets = {stable_hash(i) % 8 for i in range(100)}
        assert len(buckets) == 8

    @given(st.one_of(st.integers(), st.text(), st.binary(),
                     st.tuples(st.integers(), st.text())))
    @settings(max_examples=100, deadline=None)
    def test_stable_and_in_range(self, key):
        assert stable_hash(key) == stable_hash(key)
        assert 0 <= stable_hash(key) < 2 ** 32


class TestHashPartitioner:
    def test_range(self):
        p = HashPartitioner(7)
        for k in ["a", "b", 1, 2, (3, 4)]:
            assert 0 <= p.partition(k) < 7

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_roughly_balanced(self):
        p = HashPartitioner(10)
        counts = [0] * 10
        for i in range(10_000):
            counts[p.partition(f"key{i}")] += 1
        assert max(counts) < 2 * min(counts)


class TestRangePartitioner:
    def test_order_preserving(self):
        p = RangePartitioner.from_sample(list(range(1000)), 4, seed=0)
        parts = [p.partition(k) for k in range(1000)]
        assert parts == sorted(parts)
        assert set(parts) == {0, 1, 2, 3}

    def test_descending(self):
        p = RangePartitioner.from_sample(list(range(1000)), 4,
                                         ascending=False, seed=0)
        parts = [p.partition(k) for k in range(1000)]
        assert parts == sorted(parts, reverse=True)

    def test_balanced_on_uniform(self):
        import numpy as np
        keys = np.random.default_rng(0).random(20_000).tolist()
        p = RangePartitioner.from_sample(keys, 8, seed=1)
        counts = [0] * 8
        for k in keys:
            counts[p.partition(k)] += 1
        assert max(counts) < 1.5 * (len(keys) / 8)

    def test_single_partition(self):
        p = RangePartitioner.from_sample([5, 1, 3], 1)
        assert p.partition(100) == 0

    def test_empty_sample(self):
        p = RangePartitioner.from_sample([], 4)
        assert p.partition(123) == 0

    def test_boundary_count_validation(self):
        with pytest.raises(ValueError):
            RangePartitioner(4, [1, 2])      # needs 3

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            RangePartitioner(3, [5, 1])

    def test_string_keys(self):
        words = ["apple", "banana", "cherry", "fig", "grape", "kiwi"] * 50
        p = RangePartitioner.from_sample(words, 3, seed=2)
        parts = [p.partition(w) for w in sorted(set(words))]
        assert parts == sorted(parts)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
           st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_concatenation_is_sorted(self, keys, n):
        """Range partitioning + per-partition sort = global sort."""
        p = RangePartitioner.from_sample(keys, n, seed=3)
        buckets = [[] for _ in range(n)]
        for k in keys:
            buckets[p.partition(k)].append(k)
        merged = []
        for b in buckets:
            merged.extend(sorted(b))
        assert merged == sorted(keys)
