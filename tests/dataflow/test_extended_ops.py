"""Extended Dataset operators: set ops, cartesian, coalesce, indexing."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.dataflow import DataflowContext


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


class TestSetOps:
    def test_subtract_keeps_duplicates(self, ctx):
        a = ctx.parallelize([1, 1, 2, 3], 2)
        b = ctx.parallelize([2], 1)
        assert sorted(a.subtract(b).collect()) == [1, 1, 3]

    def test_subtract_empty_other(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        assert sorted(a.subtract(ctx.parallelize([], 1)).collect()) == [1, 2]

    def test_intersection_distinct(self, ctx):
        a = ctx.parallelize([1, 1, 2, 3], 2)
        b = ctx.parallelize([1, 1, 3, 4], 2)
        assert sorted(a.intersection(b).collect()) == [1, 3]

    def test_subtract_by_key(self, ctx):
        a = ctx.parallelize([("x", 1), ("y", 2), ("x", 3)], 2)
        b = ctx.parallelize([("x", 99)], 1)
        assert sorted(a.subtract_by_key(b).collect()) == [("y", 2)]

    @given(st.lists(st.integers(0, 20), max_size=60),
           st.lists(st.integers(0, 20), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_set_ops_match_reference(self, xs, ys):
        ctx = DataflowContext()
        a = ctx.parallelize(xs, 3)
        b = ctx.parallelize(ys, 2)
        assert sorted(a.subtract(b).collect()) == \
            sorted(x for x in xs if x not in set(ys))
        assert sorted(a.intersection(b).collect()) == \
            sorted(set(xs) & set(ys))


class TestCartesian:
    def test_all_pairs(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize(["x", "y", "z"], 2)
        got = sorted(a.cartesian(b).collect())
        assert got == sorted((i, c) for i in [1, 2] for c in "xyz")

    def test_partition_count(self, ctx):
        a = ctx.parallelize(range(4), 2)
        b = ctx.parallelize(range(6), 3)
        assert a.cartesian(b).n_partitions == 6

    def test_empty_side(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([], 1)
        assert a.cartesian(b).collect() == []

    def test_on_sim_engine(self, ctx):
        from repro.cluster import make_cluster
        from repro.dataflow import SimEngine
        from repro.simcore import Simulator
        sim = Simulator()
        eng = SimEngine(make_cluster(sim, 1, 2))
        a = ctx.parallelize(range(5), 2)
        b = ctx.parallelize(range(3), 1)
        res = sim.run_until_done(eng.collect(a.cartesian(b)))
        assert sorted(res.value) == sorted((i, j) for i in range(5)
                                           for j in range(3))


class TestCoalesce:
    def test_preserves_order(self, ctx):
        ds = ctx.range(20, 10).coalesce(3)
        assert ds.n_partitions == 3
        assert ds.collect() == list(range(20))

    def test_to_one(self, ctx):
        assert ctx.range(9, 4).coalesce(1).glom().collect() == \
            [list(range(9))]

    def test_more_than_parent_caps(self, ctx):
        ds = ctx.range(4, 2).coalesce(100)
        assert ds.n_partitions == 2

    def test_invalid(self, ctx):
        with pytest.raises(PlanError):
            ctx.range(4).coalesce(0)

    def test_keeps_locations(self, ctx):
        src = ctx.from_partitions([[1], [2], [3], [4]],
                                  locations=[["a"], ["a"], ["b"], ["b"]])
        c = src.coalesce(2)
        assert c.preferred_locations(0) == ["a"]
        assert c.preferred_locations(1) == ["b"]


class TestZipWithIndex:
    def test_global_indices(self, ctx):
        got = ctx.parallelize("abcdef", 3).zip_with_index().collect()
        assert got == [(c, i) for i, c in enumerate("abcdef")]

    def test_after_filter(self, ctx):
        ds = ctx.range(10, 3).filter(lambda x: x % 2 == 0).zip_with_index()
        assert ds.collect() == [(0, 0), (2, 1), (4, 2), (6, 3), (8, 4)]


class TestFoldTakeOrdered:
    def test_fold_by_key_neutral_zero(self, ctx):
        kv = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        got = dict(kv.fold_by_key(0, operator.add).collect())
        assert got == {"a": 4, "b": 2}

    def test_fold_by_key_zero_per_partition(self, ctx):
        # Spark semantics: the zero applies once per partition a key
        # appears in — ("a",1) and ("a",3) land in different partitions
        kv = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        got = dict(kv.fold_by_key(100, operator.add).collect())
        assert got == {"a": 204, "b": 102}

    def test_fold_zero_not_shared(self, ctx):
        kv = ctx.parallelize([("a", 1), ("b", 2)], 1)
        got = dict(kv.fold_by_key([], lambda acc, v: acc + [v]).collect())
        assert got == {"a": [1], "b": [2]}

    def test_take_ordered(self, ctx):
        ds = ctx.parallelize([7, 1, 9, 3, 5], 2)
        assert ds.take_ordered(3) == [1, 3, 5]
        assert ds.take_ordered(2, key=lambda x: -x) == [9, 7]
