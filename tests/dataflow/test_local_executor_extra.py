"""Local-executor housekeeping: clear(), shuffle reuse, metrics access."""

import operator

import pytest

from repro.dataflow import DataflowContext


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def test_shuffle_materialized_once_per_plan(ctx):
    ds = ctx.range(100, 4).map(lambda x: (x % 5, x)) \
        .reduce_by_key(operator.add)
    ds.collect()
    ds.collect()            # reuses the stored shuffle
    assert len(ctx.local_executor.shuffle_metrics) == 1


def test_clear_drops_state(ctx):
    calls = []
    ds = ctx.range(10, 2).map(lambda x: (calls.append(x) or x, 1)) \
        .reduce_by_key(operator.add)
    ds.collect()
    n1 = len(calls)
    ctx.local_executor.clear()
    ds.collect()
    assert len(calls) == 2 * n1
    assert len(ctx.local_executor.shuffle_metrics) == 1   # re-recorded


def test_combine_ratio_property(ctx):
    ds = ctx.parallelize([("k", 1)] * 100, 4) \
        .reduce_by_key(operator.add)
    ds.collect()
    m = list(ctx.local_executor.shuffle_metrics.values())[0]
    assert m.combine_ratio == pytest.approx(4 / 100)
    empty_ratio = type(m)(99).combine_ratio
    assert empty_ratio == 1.0


def test_collect_partitions_structure(ctx):
    parts = ctx.local_executor.collect_partitions(ctx.range(10, 3))
    assert [len(p) for p in parts] == [4, 3, 3]
    assert [x for p in parts for x in p] == list(range(10))


def test_reduce_uses_partition_order(ctx):
    # subtraction is order-sensitive: result must follow partition order
    got = ctx.parallelize([100, 1, 2, 3], 1).reduce(operator.sub)
    assert got == 100 - 1 - 2 - 3
