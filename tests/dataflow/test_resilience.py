"""Engine x resilience policies: deadlines, retry budgets, backoff, hedging."""

import operator

import pytest

from repro.chaos import EngineChaos, FaultEvent, FaultPlan
from repro.cluster import make_cluster
from repro.common.errors import (
    DeadlineExceededError,
    RetryBudgetExhaustedError,
    TaskFailedError,
)
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience import HedgePolicy, ResiliencePolicies, RetryPolicy
from repro.simcore import Simulator

BUSY = CostModel(cpu_per_record=2e-4)


def _env(policies=None, speed_factors=None, **cfg_kw):
    sim = Simulator()
    cl = make_cluster(sim, 2, 4, speed_factors=speed_factors)
    ctx = DataflowContext(default_parallelism=8)
    eng = SimEngine(cl, EngineConfig(resilience=policies, **cfg_kw),
                    cost_model=BUSY)
    return sim, cl, ctx, eng


def _wordcount(ctx, n=2400):
    words = ["a", "b", "c", "d"] * (n // 4)
    return (ctx.parallelize(words, 8).map(lambda w: (w, 1))
            .reduce_by_key(operator.add, 4))


class TestIdlePolicyEquivalence:
    def test_idle_policies_change_nothing(self):
        # fully-armed policies that never fire must be value- AND
        # schedule-identical to no policies at all
        runs = []
        for policies in (None,
                         ResiliencePolicies(
                             retry=RetryPolicy(max_attempts=50, budget=500),
                             hedge=HedgePolicy(multiplier=10.0),
                             deadline_timeout=1e9)):
            sim, _cl, ctx, eng = _env(policies)
            res = sim.run_until_done(eng.collect(_wordcount(ctx)))
            runs.append((sorted(res.value), sim.now))
        assert runs[0] == runs[1]


class TestRetryBudget:
    def test_budget_exhaustion_is_typed_with_history(self):
        policies = ResiliencePolicies(
            retry=RetryPolicy(max_attempts=3, budget=10))
        sim, _cl, ctx, eng = _env(policies, max_task_retries=100)
        plan = FaultPlan.scripted(
            [FaultEvent(0.0, "task_crash", magnitude=500.0)])
        EngineChaos(eng, plan).start()
        with pytest.raises(TaskFailedError) as ei:
            sim.run_until_done(eng.collect(_wordcount(ctx)))
        exc = ei.value
        assert isinstance(exc, RetryBudgetExhaustedError)
        assert exc.job is not None and exc.job.startswith("ds")
        assert exc.stage == 0
        assert exc.op is not None
        # the history is session-wide: the job budget (10) was spent across
        # the 8 splits before any single op reached max_attempts
        assert exc.budget == 10
        assert len(exc.attempts) == exc.budget + 1
        assert any(a.op == exc.op for a in exc.attempts)
        assert exc.op in exc.describe()

    def test_recovery_within_budget_is_transparent(self):
        policies = ResiliencePolicies(
            retry=RetryPolicy(max_attempts=10, budget=50))
        sim, _cl, ctx, eng = _env(policies)
        plan = FaultPlan.scripted(
            [FaultEvent(0.0, "task_crash", magnitude=4.0)])
        chaos = EngineChaos(eng, plan)
        chaos.start()
        ds = _wordcount(ctx)
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(ds.collect())
        assert chaos.trace.count("task_crash") == 4

    def test_backoff_defers_the_relaunch(self):
        # deterministic exponential backoff: one crash must push the
        # retried task (and so the job) past the base_delay mark
        def run(base_delay):
            policies = ResiliencePolicies(
                retry=RetryPolicy(max_attempts=10, base_delay=base_delay,
                                  jitter="none"))
            sim, _cl, ctx, eng = _env(policies)
            plan = FaultPlan.scripted(
                [FaultEvent(0.0, "task_crash", magnitude=1.0)])
            EngineChaos(eng, plan).start()
            ds = _wordcount(ctx)
            res = sim.run_until_done(eng.collect(ds))
            assert sorted(res.value) == sorted(ds.collect())
            return sim.now
        assert run(0.0) < 1.0
        assert run(5.0) > 5.0


class TestDeadline:
    def test_deadline_fails_job_typed(self):
        policies = ResiliencePolicies(deadline_timeout=0.001)
        sim, _cl, ctx, eng = _env(policies)
        with pytest.raises(DeadlineExceededError) as ei:
            sim.run_until_done(eng.collect(_wordcount(ctx, n=40_000)))
        assert ei.value.now == pytest.approx(0.001)

    def test_generous_deadline_never_fires(self):
        policies = ResiliencePolicies(deadline_timeout=1e9)
        sim, _cl, ctx, eng = _env(policies)
        ds = _wordcount(ctx)
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(ds.collect())


class TestHedging:
    def _run(self, hedge):
        policies = ResiliencePolicies(hedge=hedge) if hedge else None
        sim, _cl, ctx, eng = _env(
            policies, check_interval=0.05,
            speed_factors=[1, 1, 1, 1, 1, 1, 1, 0.1])
        ds = ctx.range(40_000, 16).map(lambda x: x * 2)
        reg = MetricsRegistry()
        prev = set_registry(reg)
        try:
            res = sim.run_until_done(eng.collect(ds))
        finally:
            set_registry(prev)
        assert sorted(res.value) == sorted(x * 2 for x in range(40_000))
        return sim.now, reg

    def test_hedging_beats_stragglers(self):
        plain_t, plain_reg = self._run(None)
        hedge_t, hedge_reg = self._run(
            HedgePolicy(quantile=0.5, multiplier=2.0, min_samples=3))
        assert plain_reg.value("resilience.hedge.launched") == 0.0
        assert hedge_reg.value("resilience.hedge.launched") > 0
        assert hedge_reg.value("resilience.hedge.wins") > 0
        assert hedge_t < plain_t * 0.6

    def test_max_hedges_bounds_duplicates(self):
        _t, reg = self._run(
            HedgePolicy(quantile=0.5, multiplier=2.0, min_samples=3,
                        max_hedges=1))
        # 2 splits land on the slow node; at most one hedge per split
        assert reg.value("resilience.hedge.launched") <= 2
