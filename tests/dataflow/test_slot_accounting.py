"""Executor-slot accounting: every attempt gives back exactly one slot.

Regression tests for the audit's slot-leak fixes: speculative losers,
stage-finally orphans, and the node fail/recover cycle must all leave
``_free_slots[node] == cores`` once the cluster is idle — never fewer
(a leak starves later stages) and never more (double release).
"""

import operator

import pytest

from repro.cluster import make_cluster
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.simcore import Simulator

BUSY = CostModel(cpu_per_record=2e-4)


def assert_slots_restored(eng, cl):
    for name, node in cl.nodes.items():
        if node.alive:
            assert eng._free_slots[name] == node.spec.cores, \
                f"{name}: {eng._free_slots[name]} != {node.spec.cores}"


class TestSlotConservation:
    def test_plain_job_restores_all_slots(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 4)
        ctx = DataflowContext(default_parallelism=8)
        eng = SimEngine(cl, cost_model=BUSY)
        ds = ctx.range(5000, 16).map(lambda x: (x % 9, x)) \
                .reduce_by_key(operator.add)
        sim.run_until_done(eng.collect(ds))
        assert_slots_restored(eng, cl)

    def test_speculative_job_restores_all_slots(self):
        # a straggler node forces speculation; the losing attempts are
        # discarded by the stage loop but their slots stay held until the
        # simulated work finishes — then every one must come back
        sim = Simulator()
        cl = make_cluster(sim, 2, 4,
                          speed_factors=[1, 1, 1, 1, 1, 1, 1, 0.1])
        ctx = DataflowContext(default_parallelism=8)
        eng = SimEngine(cl, config=EngineConfig(speculation=True,
                                                check_interval=0.05),
                        cost_model=BUSY)
        ds = ctx.range(40_000, 16).map(lambda x: x * 2)
        res = sim.run_until_done(eng.collect(ds))
        assert len(res.value) == 40_000
        assert res.metrics.n_speculative > 0
        # let orphaned loser attempts drain
        sim.run(until=sim.now + 60.0)
        assert_slots_restored(eng, cl)

    def test_node_fail_recover_never_exceeds_cores(self):
        # fail a node mid-job, recover it later: the recover resets the
        # node's count wholesale and no late release may push it above
        # cores (the double-release bug)
        sim = Simulator()
        cl = make_cluster(sim, 2, 4)
        ctx = DataflowContext(default_parallelism=8)
        eng = SimEngine(cl, config=EngineConfig(max_task_retries=8),
                        cost_model=BUSY)
        ds = ctx.range(30_000, 16).map(lambda x: (x % 5, x)) \
                .reduce_by_key(operator.add)

        def chaos(s):
            yield s.timeout(0.02)
            cl.nodes["h0_0"].fail()
            yield s.timeout(0.1)
            cl.nodes["h0_0"].recover()
        sim.process(chaos(sim), name="chaos")
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(ds.collect())
        sim.run(until=sim.now + 60.0)
        assert_slots_restored(eng, cl)
        for name, node in cl.nodes.items():
            assert eng._free_slots[name] <= node.spec.cores

    def test_repeated_jobs_do_not_leak(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 2)
        ctx = DataflowContext(default_parallelism=4)
        eng = SimEngine(cl, cost_model=BUSY)
        for i in range(5):
            ds = ctx.range(2000 + i, 8).map(lambda x: (x % 3, x)) \
                    .reduce_by_key(operator.add)
            sim.run_until_done(eng.collect(ds))
            assert_slots_restored(eng, cl)
