"""Broadcast variables and accumulators (local + simulated engines)."""

import operator

import pytest

from repro.cluster import make_cluster
from repro.common.errors import DataflowError
from repro.dataflow import (
    CostModel,
    DataflowContext,
    EngineConfig,
    SimEngine,
)
from repro.simcore import Simulator


class TestBroadcastBasics:
    def test_value_roundtrip(self):
        ctx = DataflowContext()
        bc = ctx.broadcast({"a": 1})
        assert bc.value == {"a": 1}
        assert bc.size_bytes > 0

    def test_destroy_blocks_reads(self):
        ctx = DataflowContext()
        bc = ctx.broadcast([1, 2, 3])
        bc.destroy()
        with pytest.raises(DataflowError):
            _ = bc.value

    def test_usable_in_closures_locally(self):
        ctx = DataflowContext()
        table = ctx.broadcast({i: i * 10 for i in range(5)})
        got = ctx.range(5).map(lambda x: table.value[x]).collect()
        assert got == [0, 10, 20, 30, 40]


class TestBroadcastOnEngine:
    def test_shipped_once_per_node(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 4)     # 8 nodes, 32 slots
        ctx = DataflowContext()
        eng = SimEngine(cl)
        bc = ctx.broadcast(list(range(1000)))
        ds = ctx.range(64, 32).map(lambda x: bc.value[x % 1000])
        res = sim.run_until_done(eng.collect(ds))
        # at most (nodes - 1) transfers (first node is driver-local),
        # NOT one per task
        assert res.metrics.broadcast_bytes <= 7 * bc.size_bytes
        assert res.metrics.broadcast_bytes > 0

    def test_not_reshipped_across_jobs(self):
        sim = Simulator()
        cl = make_cluster(sim, 1, 4)
        ctx = DataflowContext()
        eng = SimEngine(cl)
        bc = ctx.broadcast("payload" * 100)
        ds = ctx.range(16, 8).map(lambda x: len(bc.value) + x)
        r1 = sim.run_until_done(eng.collect(ds))
        r2 = sim.run_until_done(eng.collect(ds.map(lambda x: x + 1)))
        assert r2.metrics.broadcast_bytes == 0.0   # already everywhere


class TestAccumulatorLocal:
    def test_counts_once_per_record(self):
        ctx = DataflowContext()
        acc = ctx.accumulator(0)
        ds = ctx.range(50, 4).map(lambda x: (acc.add(1), x)[1])
        ds.collect()
        assert acc.value == 50

    def test_custom_op(self):
        ctx = DataflowContext()
        acc = ctx.accumulator(1.0, op=lambda a, b: a * b, name="product")
        ctx.parallelize([2.0, 3.0, 4.0], 3).map(
            lambda x: (acc.add(x), x)[1]).collect()
        assert acc.value == pytest.approx(24.0)

    def test_driver_side_add(self):
        ctx = DataflowContext()
        acc = ctx.accumulator(0)
        acc.add(5)
        assert acc.value == 5

    def test_reset(self):
        ctx = DataflowContext()
        acc = ctx.accumulator(0)
        acc.add(3)
        acc.reset()
        assert acc.value == 0

    def test_cached_dataset_counts_once(self):
        ctx = DataflowContext()
        acc = ctx.accumulator(0)
        ds = ctx.range(10, 2).map(lambda x: (acc.add(1), x)[1]).cache()
        ds.collect()
        ds.collect()      # served from cache, no re-count
        assert acc.value == 10


class TestAccumulatorExactlyOnce:
    def test_engine_normal_run(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 4)
        ctx = DataflowContext()
        eng = SimEngine(cl)
        acc = ctx.accumulator(0)
        ds = ctx.range(500, 8).map(lambda x: (acc.add(1), x)[1])
        sim.run_until_done(eng.collect(ds))
        assert acc.value == 500

    def test_failed_attempts_not_counted(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 4)
        ctx = DataflowContext()
        eng = SimEngine(cl, cost_model=CostModel(cpu_per_record=2e-4))
        acc = ctx.accumulator(0)
        ds = ctx.range(20_000, 16).map(lambda x: (acc.add(1), x)[1])
        ev = eng.collect(ds)

        def killer(s):
            yield s.timeout(0.3)
            cl.nodes["h0_0"].fail()
        sim.process(killer(sim))
        res = sim.run_until_done(ev)
        assert res.metrics.n_failed_attempts > 0
        assert acc.value == 20_000     # retried work counted exactly once

    def test_speculative_losers_not_counted(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 4,
                          speed_factors=[1, 1, 1, 1, 1, 1, 1, 0.1])
        ctx = DataflowContext()
        eng = SimEngine(cl, EngineConfig(speculation=True,
                                         check_interval=0.05),
                        cost_model=CostModel(cpu_per_record=2e-4))
        acc = ctx.accumulator(0)
        ds = ctx.range(40_000, 16).map(lambda x: (acc.add(1), x)[1])
        res = sim.run_until_done(eng.collect(ds))
        assert res.metrics.n_speculative > 0
        assert acc.value == 40_000     # clone + original counted once
