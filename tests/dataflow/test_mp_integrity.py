"""Checksummed shuffle plane: bucket-file validation and pool recovery."""

import os
import pickle
import zlib

import pytest

from repro.common.errors import BucketFileError, ChecksumError
from repro.dataflow import DataflowContext, ProcessPoolBackend
from repro.dataflow import shuffleio
from repro.dataflow.shuffleio import (
    checksums_enabled,
    read_bucket_file,
    set_checksums,
    write_bucket_file,
)

BUCKETS = [[("a", 1), ("b", 2)], [], [("c", [3, 4]), ("d", None)]]


@pytest.fixture(autouse=True)
def _checksums_on_after():
    yield
    set_checksums(True)


@pytest.fixture()
def spill(tmp_path):
    path = str(tmp_path / "s0-m0.buckets")
    offsets = write_bucket_file(path, BUCKETS)
    return path, offsets


class TestBucketFileValidation:
    def test_round_trip_all_buckets(self, spill):
        path, offsets = spill
        for r, want in enumerate(BUCKETS):
            assert read_bucket_file(path, offsets, r) == want

    def test_offsets_carry_crc(self, spill):
        _, offsets = spill
        assert all(len(e) == 3 for e in offsets)
        assert checksums_enabled()

    def test_reduce_id_out_of_range(self, spill):
        path, offsets = spill
        for bad in (-1, len(BUCKETS), 99):
            with pytest.raises(BucketFileError) as ei:
                read_bucket_file(path, offsets, bad)
            assert ei.value.path == path
            assert ei.value.reduce_id == bad

    def test_window_beyond_file_size(self, spill):
        path, offsets = spill
        off, length = offsets[2][0], offsets[2][1]
        doctored = list(offsets)
        doctored[2] = (off, length + 10_000, offsets[2][2])
        with pytest.raises(BucketFileError) as ei:
            read_bucket_file(path, doctored, 2)
        err = ei.value
        assert err.offset == off and err.length == length + 10_000
        assert err.file_size == os.path.getsize(path)

    def test_negative_window_rejected(self, spill):
        path, offsets = spill
        doctored = list(offsets)
        doctored[1] = (-4, offsets[1][1], offsets[1][2])
        with pytest.raises(BucketFileError):
            read_bucket_file(path, doctored, 1)

    def test_truncated_file_is_typed(self, spill):
        path, offsets = spill
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 3)
        with pytest.raises(BucketFileError):
            read_bucket_file(path, offsets, 2)

    def test_flipped_byte_raises_checksum_error(self, spill):
        path, offsets = spill
        off = offsets[2][0]
        with open(path, "r+b") as f:
            f.seek(off + 1)
            b = f.read(1)
            f.seek(off + 1)
            f.write(bytes([b[0] ^ 0xFF]))
        # bucket 0 untouched, still serves
        assert read_bucket_file(path, offsets, 0) == BUCKETS[0]
        with pytest.raises(ChecksumError) as ei:
            read_bucket_file(path, offsets, 2)
        err = ei.value
        assert err.layer == "shuffle"
        assert err.path == path
        assert err.offset == off
        # provenance survives the worker->driver pickle hop
        back = pickle.loads(pickle.dumps(err))
        assert (back.layer, back.path, back.offset) == \
            ("shuffle", path, off)

    def test_checksums_off_writes_pairs(self, tmp_path):
        set_checksums(False)
        path = str(tmp_path / "plain.buckets")
        offsets = write_bucket_file(path, BUCKETS)
        assert all(len(e) == 2 for e in offsets)
        # no CRC recorded -> corruption passes unverified (the A/B
        # control the perf suite measures against)
        for r, want in enumerate(BUCKETS):
            assert read_bucket_file(path, offsets, r) == want


def _flip_spill_byte(path, off):
    with open(path, "r+b") as f:
        f.seek(off)
        b = f.read(1)
        f.seek(off)
        f.write(bytes([b[0] ^ 0xFF]))


class TestPoolRecovery:
    def _wordcount(self, ctx):
        words = [f"w{i % 23}" for i in range(300)]
        return (ctx.parallelize(words, 5)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b, 4))

    def test_corrupt_spill_file_recovered_end_to_end(self):
        backend = ProcessPoolBackend(n_workers=2)
        ctx = DataflowContext(default_parallelism=4)
        ctx.attach_pool(backend)
        ctx.backend = "pool"
        try:
            ds = self._wordcount(ctx)
            first = sorted(ds.collect())
            ex = ctx.pooled_executor
            assert ex.integrity_recoveries == 0
            # rot one bucket of the materialized spill file on disk
            (sid, refs), = ex._shuffle_refs.items()
            path, offsets = refs[0]
            _flip_spill_byte(path, offsets[2][0])
            # the cached shuffle is re-read by the next action: the
            # worker's ChecksumError comes back typed, the driver
            # re-runs exactly the producing map, and the answer is
            # byte-identical to the clean run
            again = sorted(ds.collect())
            assert again == first
            assert ex.integrity_recoveries == 1
            assert [a.error for a in ex.retry_session.history] == \
                ["corrupt bucket file"]
            # the refreshed spill file serves cleanly from here on
            assert sorted(ds.collect()) == first
            assert ex.integrity_recoveries == 1
        finally:
            backend.shutdown()

    def test_recovery_does_not_double_count_accumulators(self):
        backend = ProcessPoolBackend(n_workers=2)
        ctx = DataflowContext(default_parallelism=4)
        ctx.attach_pool(backend)
        ctx.backend = "pool"
        acc = ctx.accumulator(0)

        def f(x):
            acc.add(1)
            return (x % 6, x)

        try:
            ds = ctx.parallelize(range(120), 5).map(f) \
                    .reduce_by_key(lambda a, b: a + b, 4)
            first = sorted(ds.collect())
            assert acc.value == 120
            ex = ctx.pooled_executor
            (sid, refs), = ex._shuffle_refs.items()
            path, offsets = refs[1]
            _flip_spill_byte(path, offsets[0][0])
            assert sorted(ds.collect()) == first
            assert ex.integrity_recoveries == 1
            # the recovery map re-run replaces bytes only: its stashes
            # are discarded, so the map-side count stays exactly-once
            assert acc.value == 120
        finally:
            backend.shutdown()

    def test_unattributable_checksum_error_reraises(self):
        backend = ProcessPoolBackend(n_workers=2)
        ctx = DataflowContext(default_parallelism=4)
        ctx.attach_pool(backend)
        ctx.backend = "pool"
        try:
            self._wordcount(ctx).collect()
            ex = ctx.pooled_executor
            exc = ChecksumError(layer="shuffle", path="/no/such/spill",
                                offset=0, expected=1, actual=2)
            with pytest.raises(ChecksumError):
                ex._recover_corrupt_bucket(exc)
        finally:
            backend.shutdown()

    def test_workers_honor_checksum_toggle(self):
        # the prime payload ships the toggle: a pool primed with
        # checksums off writes 2-tuple offsets in its spill files
        set_checksums(False)
        backend = ProcessPoolBackend(n_workers=2)
        ctx = DataflowContext(default_parallelism=4)
        ctx.attach_pool(backend)
        ctx.backend = "pool"
        try:
            first = sorted(self._wordcount(ctx).collect())
            ex = ctx.pooled_executor
            (sid, refs), = ex._shuffle_refs.items()
            assert all(len(e) == 2 for _path, offs in refs for e in offs)
            set_checksums(True)     # re-primes; fresh shuffles carry CRCs
            ex.clear()
            ds = self._wordcount(ctx)
            assert sorted(ds.collect()) == first
            (sid, refs), = ex._shuffle_refs.items()
            assert all(len(e) == 3 for _path, offs in refs for e in offs)
        finally:
            backend.shutdown()
