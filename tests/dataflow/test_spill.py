"""Executor memory pressure: spill accounting and cost."""

import pytest

from repro.cluster import make_cluster
from repro.common.units import MB
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.simcore import Simulator

COST = CostModel(min_record_bytes=2000.0)


def run_job(memory):
    sim = Simulator()
    cl = make_cluster(sim, 2, 4)
    ctx = DataflowContext()
    eng = SimEngine(cl, EngineConfig(executor_memory=memory),
                    cost_model=COST)
    ds = ctx.parallelize([(i % 8, i) for i in range(16_000)], 16) \
        .group_by_key(8)
    res = sim.run_until_done(eng.collect(ds))
    return res


class TestSpill:
    def test_no_spill_with_infinite_memory(self):
        res = run_job(float("inf"))
        assert res.metrics.spill_bytes == 0.0

    def test_spill_recorded_under_pressure(self):
        res = run_job(MB(1))
        assert res.metrics.spill_bytes > 0

    def test_results_identical_regardless_of_memory(self):
        a = run_job(float("inf"))
        b = run_job(MB(1))
        norm = lambda rows: sorted((k, sorted(v)) for k, v in rows)
        assert norm(a.value) == norm(b.value)

    def test_spilling_costs_time(self):
        fast = run_job(float("inf"))
        slow = run_job(MB(1))
        assert slow.metrics.duration > fast.metrics.duration * 1.5

    def test_spill_monotone_in_pressure(self):
        tight = run_job(MB(1)).metrics.spill_bytes
        loose = run_job(MB(8)).metrics.spill_bytes
        assert tight >= loose
