"""Dataset transformation semantics vs plain-Python references."""

import operator
from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.dataflow import DataflowContext


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


class TestCreation:
    def test_parallelize_preserves_order(self, ctx):
        data = list(range(100))
        assert ctx.parallelize(data, 7).collect() == data

    def test_parallelize_empty(self, ctx):
        ds = ctx.parallelize([])
        assert ds.collect() == [] and ds.count() == 0

    def test_range(self, ctx):
        assert ctx.range(10).collect() == list(range(10))

    def test_partition_count_capped_by_data(self, ctx):
        ds = ctx.parallelize([1, 2], 10)
        assert ds.n_partitions == 2

    def test_from_partitions_locations_must_align(self, ctx):
        with pytest.raises(PlanError):
            ctx.from_partitions([[1], [2]], locations=[["a"]])


class TestNarrowOps:
    def test_map(self, ctx):
        assert ctx.range(5).map(lambda x: x * x).collect() == [0, 1, 4, 9, 16]

    def test_filter(self, ctx):
        assert ctx.range(10).filter(lambda x: x % 3 == 0).collect() == [0, 3, 6, 9]

    def test_flat_map(self, ctx):
        got = ctx.parallelize(["a b", "c"], 2).flat_map(str.split).collect()
        assert got == ["a", "b", "c"]

    def test_map_partitions(self, ctx):
        ds = ctx.range(10, 2).map_partitions(lambda it: [sum(it)])
        assert ds.collect() == [10, 35]

    def test_key_by(self, ctx):
        assert ctx.parallelize(["ab", "c"], 1).key_by(len).collect() == \
            [(2, "ab"), (1, "c")]

    def test_map_values(self, ctx):
        ds = ctx.parallelize([(1, 2), (3, 4)], 1).map_values(lambda v: v * 10)
        assert ds.collect() == [(1, 20), (3, 40)]

    def test_keys_values(self, ctx):
        ds = ctx.parallelize([(1, "a"), (2, "b")], 1)
        assert ds.keys().collect() == [1, 2]
        assert ds.values().collect() == ["a", "b"]

    def test_glom(self, ctx):
        assert ctx.range(4, 2).glom().collect() == [[0, 1], [2, 3]]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 1)
        b = ctx.parallelize([3], 1)
        assert a.union(b).collect() == [1, 2, 3]
        assert ctx.union([a, b, a]).collect() == [1, 2, 3, 1, 2]

    def test_sample_deterministic_and_bounded(self, ctx):
        ds = ctx.range(1000, 4)
        s1 = ds.sample(0.1, seed=5).collect()
        s2 = ds.sample(0.1, seed=5).collect()
        assert s1 == s2
        assert 40 < len(s1) < 250
        with pytest.raises(PlanError):
            ds.sample(1.5)

    def test_distinct(self, ctx):
        got = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct().collect()
        assert sorted(got) == [1, 2, 3]

    def test_chaining_is_lazy(self, ctx):
        calls = []
        ds = ctx.range(3).map(lambda x: calls.append(x) or x)
        assert calls == []        # nothing ran yet
        ds.collect()
        assert sorted(calls) == [0, 1, 2]


class TestShuffleOps:
    def test_reduce_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        got = dict(ctx.parallelize(pairs, 3)
                   .reduce_by_key(operator.add).collect())
        assert got == {"a": 4, "b": 7, "c": 4}

    def test_reduce_by_key_no_combine_same_result(self, ctx):
        pairs = [(i % 5, i) for i in range(100)]
        with_c = dict(ctx.parallelize(pairs, 4)
                      .reduce_by_key(operator.add).collect())
        without = dict(ctx.parallelize(pairs, 4)
                       .reduce_by_key(operator.add,
                                      map_side_combine=False).collect())
        assert with_c == without

    def test_group_by_key(self, ctx):
        pairs = [("x", 1), ("y", 2), ("x", 3)]
        got = {k: sorted(v) for k, v in
               ctx.parallelize(pairs, 2).group_by_key().collect()}
        assert got == {"x": [1, 3], "y": [2]}

    def test_group_by(self, ctx):
        got = {k: sorted(v) for k, v in
               ctx.range(10, 3).group_by(lambda x: x % 2).collect()}
        assert got == {0: [0, 2, 4, 6, 8], 1: [1, 3, 5, 7, 9]}

    def test_aggregate_by_key(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        got = dict(ctx.parallelize(pairs, 2).aggregate_by_key(
            [], lambda acc, v: acc + [v], lambda x, y: x + y)
            .map_values(sorted).collect())
        assert got == {"a": [1, 2], "b": [3]}

    def test_combine_by_key_types(self, ctx):
        # combiner with a result type different from the value type
        pairs = [("a", 1), ("a", 2), ("b", 5)]
        got = dict(ctx.parallelize(pairs, 2).combine_by_key(
            create=lambda v: (v, 1),
            merge_value=lambda c, v: (c[0] + v, c[1] + 1),
            merge_combiners=lambda c1, c2: (c1[0] + c2[0], c1[1] + c2[1]),
        ).collect())
        assert got == {"a": (3, 2), "b": (5, 1)}

    def test_count_by_key(self, ctx):
        pairs = [("a", 0)] * 3 + [("b", 0)] * 2
        assert ctx.parallelize(pairs, 2).count_by_key() == {"a": 3, "b": 2}

    def test_partition_by_places_keys_correctly(self, ctx):
        from repro.dataflow import HashPartitioner
        p = HashPartitioner(4)
        ds = ctx.parallelize([(i, i) for i in range(40)], 3).partition_by(p)
        parts = ctx.local_executor.collect_partitions(ds)
        for pid, part in enumerate(parts):
            for k, _ in part:
                assert p.partition(k) == pid

    def test_partition_by_same_partitioner_noop(self, ctx):
        from repro.dataflow import HashPartitioner
        p = HashPartitioner(4)
        ds = ctx.parallelize([(1, 1)], 1).partition_by(p)
        assert ds.partition_by(HashPartitioner(4)) is ds

    def test_repartition(self, ctx):
        ds = ctx.range(100, 2).repartition(8)
        assert ds.n_partitions == 8
        assert sorted(ds.collect()) == list(range(100))

    def test_reduce_after_reduce_uses_narrow_path(self, ctx):
        # second reduce_by_key with same partitioner should not add a shuffle
        ds = ctx.parallelize([(i % 10, 1) for i in range(100)], 4)
        r1 = ds.reduce_by_key(operator.add, 4)
        r2 = r1.map_values(lambda v: v).reduce_by_key(operator.add, 4)
        r2.collect()
        shuffles = ctx.local_executor.shuffle_metrics
        assert len(shuffles) == 1


class TestSorting:
    def test_sort_by_matches_sorted(self, ctx):
        import random
        random.seed(0)
        data = [random.randint(-500, 500) for _ in range(700)]
        got = ctx.parallelize(data, 6).sort_by(lambda x: x).collect()
        assert got == sorted(data)

    def test_sort_descending(self, ctx):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        got = ctx.parallelize(data, 3).sort_by(lambda x: x,
                                               ascending=False).collect()
        assert got == sorted(data, reverse=True)

    def test_sort_by_key(self, ctx):
        pairs = [(3, "c"), (1, "a"), (2, "b")]
        got = ctx.parallelize(pairs, 2).sort_by_key().collect()
        assert got == [(1, "a"), (2, "b"), (3, "c")]

    def test_sort_with_key_function(self, ctx):
        words = ["ccc", "a", "bb"]
        got = ctx.parallelize(words, 2).sort_by(len).collect()
        assert got == ["a", "bb", "ccc"]

    def test_sort_empty(self, ctx):
        assert ctx.parallelize([], 1).sort_by(lambda x: x).collect() == []


class TestJoins:
    def test_inner_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b"), (2, "B")], 2)
        b = ctx.parallelize([(2, "x"), (3, "y")], 2)
        got = sorted(a.join(b).collect())
        assert got == [(2, ("B", "x")), (2, ("b", "x"))]

    def test_left_outer_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b")], 2)
        b = ctx.parallelize([(2, "x")], 1)
        got = sorted(a.left_outer_join(b).collect())
        assert got == [(1, ("a", None)), (2, ("b", "x"))]

    def test_cogroup(self, ctx):
        a = ctx.parallelize([(1, "a"), (1, "A")], 2)
        b = ctx.parallelize([(1, "x"), (2, "y")], 2)
        got = {k: (sorted(v[0]), sorted(v[1]))
               for k, v in a.cogroup(b).collect()}
        assert got == {1: (["A", "a"], ["x"]), 2: ([], ["y"])}

    def test_join_matches_reference(self, ctx):
        import random
        random.seed(1)
        a = [(random.randint(0, 20), i) for i in range(150)]
        b = [(random.randint(0, 20), -i) for i in range(100)]
        expected = sorted((k, (v, w)) for k, v in a for k2, w in b if k == k2)
        got = sorted(ctx.parallelize(a, 5).join(ctx.parallelize(b, 3))
                     .collect())
        assert got == expected


class TestActions:
    def test_count(self, ctx):
        assert ctx.range(42, 5).count() == 42

    def test_take_less_than_available(self, ctx):
        assert ctx.range(100, 5).take(3) == [0, 1, 2]

    def test_take_more_than_available(self, ctx):
        assert ctx.range(3).take(10) == [0, 1, 2]
        assert ctx.range(3).take(0) == []

    def test_first(self, ctx):
        assert ctx.range(5).first() == 0
        with pytest.raises(PlanError):
            ctx.parallelize([], 1).first()

    def test_reduce(self, ctx):
        assert ctx.range(10, 3).reduce(operator.add) == 45
        with pytest.raises(PlanError):
            ctx.parallelize([], 1).reduce(operator.add)

    def test_sum_max_min(self, ctx):
        ds = ctx.parallelize([3, -1, 7, 2], 2)
        assert ds.sum() == 11 and ds.max() == 7 and ds.min() == -1

    def test_top(self, ctx):
        assert ctx.parallelize([5, 1, 9, 3], 2).top(2) == [9, 5]
        assert ctx.parallelize(["bb", "a", "ccc"], 2).top(1, key=len) == ["ccc"]

    def test_collect_as_map(self, ctx):
        assert ctx.parallelize([(1, "a"), (2, "b")], 2).collect_as_map() == \
            {1: "a", 2: "b"}


class TestCaching:
    def test_cache_avoids_recompute(self, ctx):
        calls = []
        ds = ctx.range(10, 2).map(lambda x: calls.append(x) or x).cache()
        ds.collect()
        ds.collect()
        ds.count()
        assert len(calls) == 10

    def test_uncache_forces_recompute(self, ctx):
        calls = []
        ds = ctx.range(5, 1).map(lambda x: calls.append(x) or x).cache()
        ds.collect()
        ctx.local_executor.uncache(ds)
        ds.collect()
        assert len(calls) == 10


class TestPropertyBased:
    kvs = st.lists(st.tuples(st.integers(0, 15), st.integers(-100, 100)),
                   max_size=150)

    @given(kvs, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_reduce_by_key_matches_counter(self, pairs, n_parts):
        ctx = DataflowContext()
        expected = defaultdict(int)
        for k, v in pairs:
            expected[k] += v
        got = dict(ctx.parallelize(pairs, n_parts)
                   .reduce_by_key(operator.add).collect())
        assert got == dict(expected)

    @given(st.lists(st.integers(-1000, 1000), max_size=150),
           st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_sort_matches_sorted(self, xs, n_parts):
        ctx = DataflowContext()
        got = ctx.parallelize(xs, n_parts).sort_by(lambda x: x).collect()
        assert got == sorted(xs)

    @given(st.lists(st.integers(0, 50), max_size=120), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_distinct_matches_set(self, xs, n_parts):
        ctx = DataflowContext()
        got = ctx.parallelize(xs, n_parts).distinct().collect()
        assert sorted(got) == sorted(set(xs))
