"""Cost-model sampling and the memoized SizeEstimator."""

import pytest

import repro.dataflow.costmodel as costmodel
from repro.dataflow import CostModel, HashPartitioner, SizeEstimator
from repro.dataflow import shuffleio
from repro.dataflow.context import DataflowContext
from repro.dataflow.plan import ShuffleDependency


class TestSampleIndices:
    @pytest.mark.parametrize("n", [0, 1, 5, 31, 32, 33, 100, 1000])
    def test_exactly_min_n_sample_size(self, n):
        cost = CostModel(sample_size=32)
        idx = list(cost.sample_indices(n))
        assert len(idx) == min(n, 32)
        assert all(0 <= i < n for i in idx)
        assert idx == sorted(set(idx))      # distinct, increasing

    def test_indices_spread_over_input(self):
        cost = CostModel(sample_size=4)
        idx = list(cost.sample_indices(100))
        assert idx == [0, 25, 50, 75]

    def test_estimate_bytes_empty(self):
        assert CostModel().estimate_bytes([]) == 0.0

    def test_per_record_floor(self):
        cost = CostModel(min_record_bytes=64.0)
        assert cost.per_record_bytes([1]) >= 64.0


class _PickleCounter:
    """Counts pickle.dumps calls made by the cost model's sampling."""

    def __init__(self, monkeypatch):
        self.calls = 0
        real = costmodel.pickle.dumps

        def counting(obj, *a, **kw):
            self.calls += 1
            return real(obj, *a, **kw)
        monkeypatch.setattr(costmodel.pickle, "dumps", counting)


class TestSizeEstimator:
    def test_samples_once_per_key(self, monkeypatch):
        counter = _PickleCounter(monkeypatch)
        cost = CostModel(sample_size=8)
        est = SizeEstimator(cost)
        records = [(i, "x" * 20) for i in range(100)]
        first = est.estimate("k", records)
        n_after_first = counter.calls
        assert n_after_first == 8
        second = est.estimate("k", records)
        assert counter.calls == n_after_first   # memoized: no new pickles
        assert first == second > 0

    def test_estimate_scales_with_count(self):
        est = SizeEstimator(CostModel())
        records = [(i, i) for i in range(50)]
        full = est.estimate("k", records)
        half = est.estimate_count("k", 25, records)
        assert half == pytest.approx(full / 2)

    def test_empty_first_sample_not_cached(self):
        est = SizeEstimator(CostModel())
        assert est.estimate("k", []) == 0.0
        # a later non-empty output must still be able to set the profile
        records = [("abc", "payload" * 10)] * 10
        assert est.estimate("k", records) == \
            pytest.approx(CostModel().estimate_bytes(records))

    def test_invalidate_resamples(self, monkeypatch):
        counter = _PickleCounter(monkeypatch)
        cost = CostModel(sample_size=4)
        est = SizeEstimator(cost)
        est.estimate("k", [(1, 2)] * 10)
        est.invalidate("k")
        est.estimate("k", [(1, 2)] * 10)
        assert counter.calls == 8               # sampled twice

    def test_invalidate_all(self):
        est = SizeEstimator(CostModel())
        est.estimate("a", [(1, 1)] * 5)
        est.estimate("b", [(2, 2)] * 5)
        est.invalidate()
        assert est._per_record == {}


class TestWriteBucketsSampling:
    def _dep(self):
        ctx = DataflowContext(default_parallelism=2)
        parent = ctx.parallelize([("_", 0)], 1)
        return ShuffleDependency(parent, HashPartitioner(16))

    def test_one_sample_per_map_output_not_per_bucket(self, monkeypatch):
        counter = _PickleCounter(monkeypatch)
        cost = CostModel(sample_size=32)
        est = SizeEstimator(cost)
        dep = self._dep()
        records = [(i, i) for i in range(2000)]
        shuffleio.write_buckets(dep, records, cost, est)
        assert counter.calls == 32              # one sample, not 16
        # a second map output for the same shuffle: zero new pickles
        shuffleio.write_buckets(dep, records, cost, est)
        assert counter.calls == 32

    def test_without_estimator_samples_per_bucket(self, monkeypatch):
        counter = _PickleCounter(monkeypatch)
        cost = CostModel(sample_size=32)
        dep = self._dep()
        records = [(i, i) for i in range(2000)]
        shuffleio.write_buckets(dep, records, cost, None)
        assert counter.calls > 32               # legacy per-bucket sampling

    def test_bucket_bytes_consistent_with_cost_model(self):
        cost = CostModel()
        dep = self._dep()
        records = [(i, "v" * 10) for i in range(500)]
        _, _, with_est = shuffleio.write_buckets(dep, records, cost,
                                                 SizeEstimator(cost))
        buckets, _, _ = shuffleio.write_buckets(dep, records, cost, None)
        # same per-record profile modulo which records got sampled
        assert len(with_est) == 16
        for est_bytes, bucket in zip(with_est, buckets):
            if bucket:
                assert est_bytes > 0
