"""Vectorized partitioning: element-wise agreement with the scalar path,
and byte-identity of the vectorized shuffle write.

The contract under test: ``partition_many(keys)[i] == partition(keys[i])``
for every key the scalar path accepts, and ``write_buckets`` produces
*identical* buckets (contents and order) whether the vectorized or the
scalar reference path runs — so flipping the implementation can never
change a job's output, only its speed.
"""

import math
import operator
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import make_cluster
from repro.dataflow import (
    CostModel,
    DataflowContext,
    HashPartitioner,
    RangePartitioner,
    SimEngine,
    SizeEstimator,
    stable_hash,
    stable_hash_many,
)
from repro.dataflow import shuffleio
from repro.dataflow.plan import Aggregator, ShuffleDependency
from repro.simcore import Simulator
from repro.workloads import teragen, zipf_text


def _rng():
    return random.Random(0xC0FFEE)


def _key_families():
    rng = _rng()
    return {
        "int": [rng.randrange(-10 ** 6, 10 ** 6) for _ in range(700)],
        "bigint": [rng.randrange(-10 ** 30, 10 ** 30) for _ in range(200)],
        "float": ([rng.uniform(-1e9, 1e9) for _ in range(300)]
                  + [0.0, -0.0, math.inf, -math.inf, 1e-300]),
        "str": (["w%04d" % rng.randrange(300) for _ in range(300)]
                + ["", "déjà vu", "é́", "z" * 50]),
        "bytes_uniform": [bytes(rng.randrange(256) for _ in range(10))
                          for _ in range(500)],
        "bytes_mixed": [bytes(rng.randrange(256)
                              for _ in range(rng.randrange(0, 15)))
                        for _ in range(500)],
        "bytes_collisions": [b"ab", b"ab\x00", b"ab\x01", b"abcdefgh",
                             b"abcdefgh\x00", b"abcdefghz", b""] * 30,
        "tuple_int": [(rng.randrange(100), rng.randrange(100))
                      for _ in range(300)],
    }


# families whose keys are mutually orderable (RangePartitioner input)
_ORDERABLE = ("int", "bigint", "float", "str", "bytes_uniform",
              "bytes_mixed", "bytes_collisions", "tuple_int")


class TestHashAgreement:
    @pytest.mark.parametrize("family", sorted(_key_families()))
    def test_partition_many_matches_scalar(self, family):
        keys = _key_families()[family]
        for n in (1, 7, 16):
            p = HashPartitioner(n)
            assert p.partition_many(keys).tolist() == \
                [p.partition(k) for k in keys]

    def test_mixed_type_keys(self):
        keys = [1, "one", b"one", (1,), 1.5, None, True, 10 ** 40]
        p = HashPartitioner(5)
        assert p.partition_many(keys).tolist() == \
            [p.partition(k) for k in keys]

    def test_nan_and_signed_zero(self):
        keys = [float("nan"), 0.0, -0.0, 5.0]
        assert stable_hash_many(keys).tolist() == \
            [stable_hash(k) for k in keys]

    @given(st.lists(st.one_of(st.integers(), st.text(), st.binary(),
                              st.floats(allow_nan=False),
                              st.tuples(st.integers(), st.integers())),
                    min_size=1, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_stable_hash_many_property(self, keys):
        assert stable_hash_many(keys).tolist() == \
            [stable_hash(k) for k in keys]


class TestRangeAgreement:
    @pytest.mark.parametrize("family", _ORDERABLE)
    @pytest.mark.parametrize("ascending", [True, False])
    def test_partition_many_matches_scalar(self, family, ascending):
        keys = _key_families()[family]
        rng = _rng()
        for n in (1, 4, 16):
            sample = rng.sample(keys, min(len(keys), 10 * n))
            p = RangePartitioner.from_sample(sample, n, ascending=ascending,
                                             seed=1)
            assert p.partition_many(keys).tolist() == \
                [p.partition(k) for k in keys]

    def test_nan_keys_fall_back_to_python_semantics(self):
        keys = [1.0, float("nan"), 7.5, -2.0]
        p = RangePartitioner(4, [0.0, 2.0, 5.0])
        assert p.partition_many(keys).tolist() == \
            [p.partition(k) for k in keys]

    def test_boundary_exact_hits(self):
        # side='left' semantics: a key equal to a boundary belongs left
        p = RangePartitioner(4, [10, 20, 30])
        keys = [9, 10, 11, 20, 29, 30, 31]
        assert p.partition_many(keys).tolist() == \
            [p.partition(k) for k in keys]

    def test_empty_keys(self):
        p = RangePartitioner(3, [1, 2])
        assert p.partition_many([]).tolist() == []

    def test_repeated_calls_use_cached_boundary_state(self):
        keys = [bytes([b]) * 10 for b in range(200)]
        p = RangePartitioner.from_sample(keys, 8, seed=2)
        first = p.partition_many(keys).tolist()
        second = p.partition_many(keys).tolist()
        assert first == second == [p.partition(k) for k in keys]

    @given(st.lists(st.binary(min_size=0, max_size=12), min_size=1,
                    max_size=120),
           st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_bytes_property(self, keys, n):
        p = RangePartitioner.from_sample(keys, n, seed=4)
        assert p.partition_many(keys).tolist() == \
            [p.partition(k) for k in keys]


_SUM = Aggregator(create=lambda v: v,
                  merge_value=lambda a, b: a + b,
                  merge_combiners=lambda a, b: a + b)


def _dep(partitioner, aggregator=None, combine=False):
    ctx = DataflowContext(default_parallelism=2)
    parent = ctx.parallelize([("_", 0)], 1)
    return ShuffleDependency(parent, partitioner, aggregator=aggregator,
                             map_side_combine=combine)


def _both_legs(dep, records):
    cost = CostModel()
    prev = shuffleio.vectorized_enabled()
    try:
        shuffleio.set_vectorized(True)
        vec = shuffleio.write_buckets(dep, records, cost,
                                      SizeEstimator(cost))
        shuffleio.set_vectorized(False)
        scalar = shuffleio.write_buckets(dep, records, cost)
    finally:
        shuffleio.set_vectorized(prev)
    return vec, scalar


class TestWriteBucketsByteIdentity:
    def test_hash_shuffle_identical(self):
        rng = _rng()
        records = [(rng.randrange(500), i) for i in range(4000)]
        vec, scalar = _both_legs(_dep(HashPartitioner(8)), records)
        assert vec[0] == scalar[0]          # bucket contents AND order
        assert vec[1] == scalar[1]          # records written

    def test_range_shuffle_identical(self):
        records = teragen(4000, key_bytes=10, payload_bytes=8, seed=5)
        part = RangePartitioner.from_sample([r[0] for r in records[:400]],
                                            8, seed=6)
        vec, scalar = _both_legs(_dep(part), records)
        assert vec[0] == scalar[0]
        assert vec[1] == scalar[1]

    def test_combine_identical_order_and_counts(self):
        docs = zipf_text(n_docs=40, words_per_doc=100, vocab_size=80,
                         skew=1.3, seed=7)
        records = [(w, 1) for d in docs for w in d.split()]
        vec, scalar = _both_legs(_dep(HashPartitioner(4), _SUM, True),
                                 records)
        assert vec[0] == scalar[0]
        assert vec[1] == scalar[1]

    def test_empty_input(self):
        vec, scalar = _both_legs(_dep(HashPartitioner(4)), [])
        assert vec[0] == scalar[0] == [[] for _ in range(4)]
        assert vec[1] == scalar[1] == 0


class TestEndToEndByteIdentity:
    """The skewed-combiner workload computes the same result on the local
    executor, the simulated engine, and the scalar reference path."""

    def _plan(self, ctx):
        docs = zipf_text(n_docs=60, words_per_doc=120, vocab_size=150,
                         skew=1.3, seed=8)
        words = [w for d in docs for w in d.split()]
        return (ctx.parallelize(words, 8)
                .map(lambda w: (w, 1))
                .reduce_by_key(operator.add, 4))

    def _run_sim(self):
        sim = Simulator()
        cl = make_cluster(sim, 2, 2)
        ctx = DataflowContext(default_parallelism=8)
        eng = SimEngine(cl)
        res = sim.run_until_done(eng.collect(self._plan(ctx)))
        return res.value

    def test_local_vs_engine_vs_scalar(self):
        prev = shuffleio.vectorized_enabled()
        try:
            shuffleio.set_vectorized(True)
            local = self._plan(DataflowContext(default_parallelism=8)) \
                .collect()
            engine = self._run_sim()
            shuffleio.set_vectorized(False)
            local_scalar = self._plan(
                DataflowContext(default_parallelism=8)).collect()
            engine_scalar = self._run_sim()
        finally:
            shuffleio.set_vectorized(prev)
        assert local == local_scalar        # exact order, not just sets
        assert engine == engine_scalar
        assert sorted(local) == sorted(engine)
