"""Simulated distributed engine: correctness vs local, FT, speculation,
locality, caching, metrics."""

import operator

import pytest

from repro.cluster import make_cluster
from repro.common.errors import TaskFailedError
from repro.dataflow import (
    CostModel,
    DataflowContext,
    EngineConfig,
    SimEngine,
)
from repro.simcore import Simulator


def make_env(n_racks=2, nodes_per_rack=4, config=None, cost=None, **kw):
    sim = Simulator()
    cl = make_cluster(sim, n_racks, nodes_per_rack, **kw)
    ctx = DataflowContext(default_parallelism=8)
    eng = SimEngine(cl, config=config, cost_model=cost)
    return sim, cl, ctx, eng


BUSY = CostModel(cpu_per_record=2e-4)


class TestCorrectness:
    def test_wordcount_matches_local(self):
        sim, cl, ctx, eng = make_env()
        docs = ["a b c"] * 30 + ["b c d"] * 20
        wc = (ctx.parallelize(docs, 8).flat_map(str.split)
              .map(lambda w: (w, 1)).reduce_by_key(operator.add))
        res = sim.run_until_done(eng.collect(wc))
        assert sorted(res.value) == sorted(wc.collect())

    def test_count(self):
        sim, cl, ctx, eng = make_env()
        res = sim.run_until_done(eng.count(ctx.range(137, 9)))
        assert res.value == 137

    def test_reduce(self):
        sim, cl, ctx, eng = make_env()
        res = sim.run_until_done(
            eng.reduce(ctx.range(100, 8), operator.add))
        assert res.value == 4950

    def test_sort(self):
        import random
        random.seed(3)
        data = [random.randint(0, 10 ** 6) for _ in range(1500)]
        sim, cl, ctx, eng = make_env()
        ds = ctx.parallelize(data, 8).sort_by(lambda x: x, n_partitions=5)
        res = sim.run_until_done(eng.collect(ds))
        assert res.value == sorted(data)

    def test_join(self):
        sim, cl, ctx, eng = make_env()
        a = ctx.parallelize([(i % 20, i) for i in range(200)], 6)
        b = ctx.parallelize([(i % 20, -i) for i in range(150)], 6)
        j = a.join(b)
        res = sim.run_until_done(eng.collect(j))
        assert sorted(res.value) == sorted(j.collect())

    def test_multi_stage_chain(self):
        sim, cl, ctx, eng = make_env()
        ds = (ctx.range(500, 8).map(lambda x: (x % 50, x))
              .reduce_by_key(operator.add)
              .map(lambda kv: (kv[0] % 5, kv[1]))
              .group_by_key()
              .map_values(sorted))
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(ds.collect())

    def test_empty_dataset(self):
        sim, cl, ctx, eng = make_env()
        res = sim.run_until_done(eng.collect(ctx.parallelize([], 1)))
        assert res.value == []


class TestMetrics:
    def test_task_count(self):
        sim, cl, ctx, eng = make_env()
        ds = ctx.range(100, 6).map(lambda x: (x, 1)).reduce_by_key(
            operator.add, 4)
        res = sim.run_until_done(eng.collect(ds))
        assert res.metrics.n_tasks == 10    # 6 map + 4 reduce

    def test_duration_positive_and_monotone_with_work(self):
        sim, cl, ctx, eng = make_env(cost=BUSY)
        small = sim.run_until_done(eng.collect(ctx.range(1000, 8)))
        sim2, cl2, ctx2, eng2 = make_env(cost=BUSY)
        big = sim2.run_until_done(eng2.collect(ctx2.range(30_000, 8)))
        assert 0 < small.metrics.duration < big.metrics.duration

    def test_shuffle_bytes_recorded(self):
        sim, cl, ctx, eng = make_env()
        ds = ctx.range(1000, 8).map(lambda x: (x, x)).group_by_key(8)
        res = sim.run_until_done(eng.collect(ds))
        assert res.metrics.shuffle_bytes > 0

    def test_more_nodes_faster(self):
        def run(n_racks, nodes):
            sim, cl, ctx, eng = make_env(n_racks, nodes, cost=BUSY)
            ds = ctx.range(40_000, 32).map(lambda x: x + 1)
            return sim.run_until_done(eng.collect(ds)).metrics.duration
        assert run(4, 4) < run(1, 2)


class TestFaultTolerance:
    def test_node_loss_mid_job_correct_result(self):
        sim, cl, ctx, eng = make_env(cost=BUSY)
        ds = (ctx.range(20_000, 16).map(lambda x: (x % 100, x))
              .reduce_by_key(operator.add, 16))
        ev = eng.collect(ds)

        def killer(s):
            yield s.timeout(0.3)
            cl.nodes["h0_0"].fail()
        sim.process(killer(sim))
        res = sim.run_until_done(ev)
        assert sorted(res.value) == sorted(ds.collect())
        assert res.metrics.n_failed_attempts > 0

    def test_lineage_recovery_after_map_stage(self):
        """Kill a node after its map outputs exist: only those re-run."""
        sim, cl, ctx, eng = make_env(cost=CostModel(cpu_per_record=1e-3))
        ds = (ctx.range(8000, 8).map(lambda x: (x % 64, 1))
              .reduce_by_key(operator.add, 8)
              .map(lambda kv: (kv[0] % 4, kv[1]))
              .reduce_by_key(operator.add, 4))
        ev = eng.collect(ds)

        fired = {}

        def killer(s):
            # wait until some map outputs registered, then kill their host
            while True:
                yield s.timeout(0.05)
                for sid, outs in eng._map_outputs.items():
                    if outs:
                        victim = next(iter(outs.values())).node
                        cl.nodes[victim].fail()
                        fired["victim"] = victim
                        return
        sim.process(killer(sim))
        res = sim.run_until_done(ev)
        assert sorted(res.value) == sorted(ds.collect())
        assert "victim" in fired

    def test_job_fails_after_retry_budget(self):
        sim, cl, ctx, eng = make_env(
            1, 1, config=EngineConfig(max_task_retries=1),
            cost=CostModel(cpu_per_record=1e-3))
        ds = ctx.range(5000, 2)
        ev = eng.collect(ds)

        def chaos(s):
            # keep killing the only node so tasks can never finish
            node = cl.nodes["h0_0"]
            for _ in range(10):
                yield s.timeout(0.2)
                node.fail()
                yield s.timeout(0.01)
                node.recover()
        sim.process(chaos(sim))
        with pytest.raises(TaskFailedError):
            sim.run_until_done(ev)


class TestSpeculation:
    def _run(self, spec: bool) -> float:
        sim = Simulator()
        cl = make_cluster(sim, 2, 4,
                          speed_factors=[1, 1, 1, 1, 1, 1, 1, 0.1])
        ctx = DataflowContext()
        eng = SimEngine(cl, EngineConfig(speculation=spec,
                                         check_interval=0.05),
                        cost_model=BUSY)
        ds = ctx.range(40_000, 16).map(lambda x: x * 2)
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == sorted(x * 2 for x in range(40_000))
        return res.metrics

    def test_speculation_beats_stragglers(self):
        no_spec = self._run(False)
        spec = self._run(True)
        assert spec.duration < no_spec.duration * 0.6
        assert spec.n_speculative > 0
        assert spec.n_spec_wins > 0

    def test_no_speculation_without_flag(self):
        m = self._run(False)
        assert m.n_speculative == 0


class TestLocality:
    def test_locality_preferred_when_free(self):
        sim, cl, ctx, eng = make_env(
            config=EngineConfig(locality_wait=1.0), cost=BUSY)
        parts = [[i] * 500 for i in range(8)]
        locs = [[f"h{i // 4}_{i % 4}"] for i in range(8)]
        ds = ctx.from_partitions(parts, locations=locs).map(lambda x: x)
        res = sim.run_until_done(eng.collect(ds))
        m = res.metrics
        assert m.locality_node == 8
        assert m.locality_fraction == 1.0

    def test_zero_wait_sacrifices_locality(self):
        # all blocks on ONE node; no waiting -> most tasks run remote
        sim, cl, ctx, eng = make_env(
            config=EngineConfig(locality_wait=0.0), cost=BUSY)
        parts = [[i] * 2000 for i in range(16)]
        locs = [["h0_0"]] * 16
        ds = ctx.from_partitions(parts, locations=locs).map(lambda x: x)
        res = sim.run_until_done(eng.collect(ds))
        assert res.metrics.locality_node <= 8   # only 4 slots on h0_0
        assert res.metrics.input_fetch_bytes > 0

    def test_waiting_improves_locality(self):
        def frac(wait):
            sim, cl, ctx, eng = make_env(
                config=EngineConfig(locality_wait=wait), cost=BUSY)
            parts = [[i] * 2000 for i in range(16)]
            locs = [["h0_0", "h0_1"]] * 16
            ds = ctx.from_partitions(parts, locations=locs).map(lambda x: x)
            return sim.run_until_done(
                eng.collect(ds)).metrics.locality_fraction
        assert frac(5.0) > frac(0.0)


class TestCachingOnEngine:
    def test_cached_dataset_not_recomputed(self):
        sim, cl, ctx, eng = make_env()
        calls = []
        base = ctx.range(100, 4).map(lambda x: calls.append(x) or x).cache()
        sim.run_until_done(eng.collect(base))
        n_first = len(calls)
        sim.run_until_done(eng.collect(base.map(lambda x: x + 1)))
        assert len(calls) == n_first    # second job served from cache

    def test_cache_invalidated_on_node_loss(self):
        sim, cl, ctx, eng = make_env()
        calls = []
        base = ctx.range(100, 4).map(lambda x: calls.append(x) or x).cache()
        sim.run_until_done(eng.collect(base))
        n_first = len(calls)
        # kill every node that holds cache entries, then recover them
        holders = {e.node for e in eng._cache.values()}
        for h in holders:
            cl.nodes[h].fail()
        for h in holders:
            cl.nodes[h].recover()
        res = sim.run_until_done(eng.collect(base))
        assert sorted(res.value) == list(range(100))
        assert len(calls) > n_first     # had to recompute

    def test_shuffle_outputs_reused_across_jobs(self):
        sim, cl, ctx, eng = make_env()
        ds = ctx.range(500, 6).map(lambda x: (x % 10, 1)).reduce_by_key(
            operator.add, 4)
        r1 = sim.run_until_done(eng.collect(ds))
        r2 = sim.run_until_done(eng.collect(ds))
        # second run skips the map stage: only reduce tasks
        assert r2.metrics.n_tasks == 4
        assert sorted(r2.value) == sorted(r1.value)


class TestStaleInboxGuard:
    """A ``Store.get`` outstanding when a stage loop exits must never
    deliver a late task result into a completed stage: each ``_run_stage``
    invocation owns a fresh inbox and withdraws its pending get on exit
    (see the ``finally`` guard), so overlapping recovery re-runs of the
    same stage cannot cross-deliver."""

    def test_overlapping_recovery_reruns_correct(self):
        sim, cl, ctx, eng = make_env(cost=CostModel(cpu_per_record=5e-4))
        ds = (ctx.range(12_000, 12).map(lambda x: (x % 80, x))
              .reduce_by_key(operator.add, 8)
              .map(lambda kv: (kv[0] % 4, kv[1]))
              .reduce_by_key(operator.add, 4))
        ev = eng.collect(ds)

        def chaos(s):
            # repeated fail/recover while stages are mid-flight forces
            # FetchFailed-driven re-runs that overlap live attempts
            for name in ("h0_0", "h1_0", "h0_1"):
                yield s.timeout(0.4)
                cl.nodes[name].fail()
                yield s.timeout(0.2)
                cl.nodes[name].recover()
        sim.process(chaos(sim))
        res = sim.run_until_done(ev)
        assert sorted(res.value) == sorted(ds.collect())
        assert res.metrics.n_failed_attempts > 0

    def test_speculation_with_recovery_reruns_correct(self):
        # the any_of(inbox, timer) wait path plus straggler copies plus a
        # node loss: maximum overlap between attempts and stage re-runs
        sim = Simulator()
        cl = make_cluster(sim, 2, 4,
                          speed_factors=[1, 1, 1, 1, 1, 1, 1, 0.15])
        ctx = DataflowContext(default_parallelism=8)
        eng = SimEngine(cl, EngineConfig(speculation=True,
                                         check_interval=0.05),
                        cost_model=CostModel(cpu_per_record=5e-4))
        ds = (ctx.range(10_000, 12).map(lambda x: (x % 50, 1))
              .reduce_by_key(operator.add, 6))
        ev = eng.collect(ds)

        def killer(s):
            yield s.timeout(0.5)
            cl.nodes["h0_1"].fail()
            yield s.timeout(0.3)
            cl.nodes["h0_1"].recover()
        sim.process(killer(sim))
        res = sim.run_until_done(ev)
        assert sorted(res.value) == sorted(ds.collect())
