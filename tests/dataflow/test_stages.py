"""Stage planning: boundaries, sharing, topological order, depths."""

import operator

import pytest

from repro.dataflow import DataflowContext
from repro.dataflow.stages import (
    build_stages,
    narrow_op_depth,
    source_record_count,
    topo_order,
)


@pytest.fixture
def ctx():
    return DataflowContext(default_parallelism=4)


def test_narrow_only_job_is_one_stage(ctx):
    ds = ctx.range(10).map(lambda x: x).filter(lambda x: True)
    result = build_stages(ds)
    assert result.is_result
    assert result.parents == []
    assert len(topo_order(result)) == 1


def test_single_shuffle_two_stages(ctx):
    ds = ctx.range(10).map(lambda x: (x % 2, x)).reduce_by_key(operator.add)
    stages = topo_order(build_stages(ds))
    assert len(stages) == 2
    assert not stages[0].is_result and stages[1].is_result


def test_chained_shuffles(ctx):
    ds = (ctx.range(100).map(lambda x: (x % 10, x))
          .reduce_by_key(operator.add)
          .map(lambda kv: (kv[1] % 3, kv[0]))
          .group_by_key())
    stages = topo_order(build_stages(ds))
    assert len(stages) == 3


def test_join_has_two_parent_stages(ctx):
    a = ctx.parallelize([(1, "a")], 2)
    b = ctx.parallelize([(1, "b")], 2)
    j = a.join(b)
    result = build_stages(j)
    stages = topo_order(result)
    # cogroup shuffles both sides -> 2 map stages + result
    assert len(stages) == 3
    assert len(result.parents) == 2


def test_diamond_shares_map_stage(ctx):
    base = ctx.range(50).map(lambda x: (x % 5, x)).reduce_by_key(operator.add)
    j = base.join(base)
    stages = topo_order(build_stages(j))
    # base's shuffle stage appears once, not twice
    map_stages = [s for s in stages if not s.is_result]
    assert len(map_stages) == 1


def test_topo_order_parents_first(ctx):
    ds = (ctx.range(100).map(lambda x: (x % 10, x))
          .reduce_by_key(operator.add)
          .map(lambda kv: (kv[1] % 3, kv[0]))
          .group_by_key())
    stages = topo_order(build_stages(ds))
    seen = set()
    for s in stages:
        for p in s.parents:
            assert id(p) in seen
        seen.add(id(s))


def test_input_shuffles_listed(ctx):
    ds = ctx.range(10).map(lambda x: (x, 1)).reduce_by_key(operator.add)
    stages = topo_order(build_stages(ds))
    result = stages[-1]
    shuffles = result.input_shuffles()
    assert len(shuffles) == 1
    assert shuffles[0].shuffle_id == stages[0].shuffle_dep.shuffle_id


def test_narrow_op_depth(ctx):
    src = ctx.range(10)
    assert narrow_op_depth(src) == 0
    assert narrow_op_depth(src.map(lambda x: x)) == 1
    assert narrow_op_depth(src.map(lambda x: x).filter(bool)) == 2


def test_source_record_count(ctx):
    src = ctx.parallelize(list(range(10)), 2)
    mapped = src.map(lambda x: x)
    assert source_record_count(mapped, 0) == 5
    assert source_record_count(mapped, 1) == 5


def test_stage_task_count_matches_partitions(ctx):
    ds = ctx.range(100, 8).map(lambda x: (x, 1)).reduce_by_key(
        operator.add, 3)
    stages = topo_order(build_stages(ds))
    assert stages[0].n_tasks == 8     # map side
    assert stages[1].n_tasks == 3     # reduce side
