"""Multi-process backend: pool execution must be indistinguishable.

Property tests assert byte-identical (pickle-equal) results between the
in-process local executor and the warm process pool for random narrow
chains and shuffle workloads, plus the failure-path contracts: worker
death recovers through the resilience retry ledger, user errors re-raise
driver-side, and the fork/spawn-safe segment cache primes per process.
"""

import os
import pickle
import random

import pytest

from repro.cluster import make_cluster
from repro.common.errors import PlanError, UnpicklableTaskError
from repro.dataflow import (
    DataflowContext,
    ProcessPoolBackend,
    SimEngine,
    fusion,
    set_fusion,
)
from repro.dataflow.fusion import (
    prime_segments,
    reset_segment_cache,
    segment_cache_shapes,
    segment_shapes,
)
from repro.simcore import Simulator

from .test_fusion import random_chain


@pytest.fixture(autouse=True)
def _fusion_on_after():
    yield
    set_fusion(True)


@pytest.fixture(scope="module")
def pool():
    """One warm 2-worker pool shared by the whole module."""
    backend = ProcessPoolBackend(n_workers=2)
    yield backend
    backend.shutdown()


def pool_ctx(pool, parallelism=4):
    ctx = DataflowContext(default_parallelism=parallelism)
    ctx.attach_pool(pool)
    ctx.backend = "pool"
    return ctx


def collect_both_backends(build, pool, parallelism=4):
    """(inprocess, pool) pickled collect() results of the same plan."""
    ctx_a = DataflowContext(default_parallelism=parallelism)
    a = pickle.dumps(build(ctx_a).collect())
    ctx_b = pool_ctx(pool, parallelism)
    b = pickle.dumps(build(ctx_b).collect())
    return a, b


# -- randomized equivalence ------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_random_chain_pool_byte_identical(seed, pool):
    local, pooled = collect_both_backends(
        lambda ctx, _s=seed: random_chain(ctx, random.Random(_s)), pool)
    assert local == pooled


@pytest.mark.parametrize("fused", [True, False])
def test_pool_fusion_toggle_reprimes(fused, pool):
    # flipping the global fusion switch must re-prime the workers, not
    # serve results compiled under the other mode
    set_fusion(fused)
    local, pooled = collect_both_backends(
        lambda ctx: random_chain(ctx, random.Random(3)), pool)
    assert local == pooled


def shuffle_workloads():
    def wordcount(ctx):
        words = [f"w{i % 23}" for i in range(300)]
        return (ctx.parallelize(words, 5)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b, 4))

    def sort(ctx):
        rng = random.Random(7)
        data = [rng.randrange(1000) for _ in range(200)]
        return ctx.parallelize(data, 4).key_by(lambda x: x).sort_by_key()

    def join(ctx):
        a = ctx.parallelize([(i % 11, i) for i in range(120)], 4)
        b = ctx.parallelize([(i % 7, -i) for i in range(90)], 3)
        return a.join(b, 5)

    def distinct_group(ctx):
        return (ctx.parallelize([i % 17 for i in range(250)], 6)
                .distinct(4)
                .key_by(lambda x: x % 3)
                .group_by_key(2))

    def chained_shuffles(ctx):
        return (ctx.parallelize(range(200), 5)
                .map(lambda x: (x % 13, x))
                .reduce_by_key(lambda a, b: a + b, 4)
                .map(lambda kv: (kv[1] % 5, kv[0]))
                .group_by_key(3)
                .map_values(sorted))

    return [wordcount, sort, join, distinct_group, chained_shuffles]


@pytest.mark.parametrize("build", shuffle_workloads(),
                         ids=lambda f: f.__name__)
def test_shuffle_workloads_pool_byte_identical(build, pool):
    local, pooled = collect_both_backends(build, pool)
    assert local == pooled


def test_pool_cache_clear_and_repeat_actions(pool):
    ctx = pool_ctx(pool)
    mid = ctx.parallelize(range(80), 4).map(lambda x: x * x).cache()
    top = mid.filter(lambda x: x % 3 == 0)
    first = top.collect()
    assert top.collect() == first          # cached partitions re-serve
    assert top.count() == len(first)
    ctx.pooled_executor.clear()            # drop shuffles + worker caches
    assert top.collect() == first
    ctx.pooled_executor.uncache(mid)
    assert top.collect() == first


def test_pool_actions_match_local(pool):
    def build(ctx):
        return ctx.parallelize(range(100), 4).map(lambda x: (x * 7) % 31)
    la = DataflowContext(default_parallelism=4)
    lp = pool_ctx(pool)
    a, b = build(la), build(lp)
    assert a.count() == b.count()
    assert a.take(13) == b.take(13)
    assert a.sum() == b.sum()
    assert a.reduce(max) == b.reduce(max)
    assert a.top(5) == b.top(5)
    assert a.take_ordered(5) == b.take_ordered(5)


# -- shared variables ------------------------------------------------------


def test_pool_accumulators_exactly_once(pool):
    def run(ctx):
        acc = ctx.accumulator(0)
        errs = ctx.accumulator(0, name="errs")

        def f(x):
            acc.add(1)
            if x % 10 == 0:
                errs.add(1)
            return (x % 6, x)
        out = (ctx.parallelize(range(120), 5).map(f)
               .reduce_by_key(lambda a, b: a + b).collect())
        return sorted(out), acc.value, errs.value

    assert run(DataflowContext(default_parallelism=4)) == \
        run(pool_ctx(pool))


def test_pool_take_partial_scan_accumulator_parity(pool):
    # take() must not charge accumulators for partitions the local
    # executor would never materialize
    def run(ctx):
        acc = ctx.accumulator(0)
        ds = ctx.parallelize(range(100), 10).map(
            lambda x: (acc.add(1), x)[1])
        got = ds.take(5)
        return got, acc.value

    assert run(DataflowContext(default_parallelism=4)) == \
        run(pool_ctx(pool))


def test_pool_broadcast(pool):
    def run(ctx):
        bc = ctx.broadcast({"scale": 3})
        return (ctx.parallelize(range(50), 4)
                .map(lambda x: x * bc.value["scale"]).collect())

    assert run(DataflowContext(default_parallelism=4)) == \
        run(pool_ctx(pool))


# -- toggles ---------------------------------------------------------------


def test_backend_validation():
    ctx = DataflowContext()
    assert ctx.backend == "inprocess"
    with pytest.raises(PlanError):
        ctx.backend = "threads"
    with pytest.raises(PlanError):
        DataflowContext(backend="distributed")


def test_backend_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "pool")
    monkeypatch.setenv("REPRO_POOL_WORKERS", "2")
    ctx = DataflowContext(default_parallelism=3)
    try:
        assert ctx.backend == "pool"
        assert ctx.parallelize(range(30)).map(lambda x: -x).sum() == -435
        assert ctx.pooled_executor.backend.n_workers == 2
    finally:
        ctx.close()


def test_backend_constructor_and_switching(pool):
    ctx = pool_ctx(pool)
    data = ctx.parallelize(range(40), 4).map(lambda x: x + 1)
    pooled = data.collect()
    ctx.backend = "inprocess"
    assert data.collect() == pooled
    ctx.backend = "pool"
    assert data.collect() == pooled


# -- failure paths ---------------------------------------------------------


def test_worker_death_recovers_with_retry_ledger(tmp_path):
    backend = ProcessPoolBackend(n_workers=2)
    ctx = DataflowContext(default_parallelism=4)
    ctx.attach_pool(backend)
    ctx.backend = "pool"
    flag = str(tmp_path / "died-once")

    def maybe_die(x):
        # first worker to see record 13 kills itself mid-stage; the
        # retry (on a fresh worker) finds the flag file and proceeds
        if x == 13 and not os.path.exists(flag):
            open(flag, "w").close()
            os.kill(os.getpid(), 9)
        return (x % 5, x)

    try:
        expected = sorted((x % 5, x) for x in range(40))
        got = sorted(ctx.parallelize(range(40), 4).map(maybe_die).collect())
        assert got == expected
        assert backend.worker_deaths == 1
        history = ctx.pooled_executor.retry_session.history
        assert len(history) == 1
        assert history[0].error == "pool worker died"
        assert backend.workers_alive == backend.n_workers
    finally:
        backend.shutdown()


def test_worker_death_during_shuffle_map(tmp_path):
    backend = ProcessPoolBackend(n_workers=2)
    ctx = DataflowContext(default_parallelism=4)
    ctx.attach_pool(backend)
    ctx.backend = "pool"
    flag = str(tmp_path / "map-died-once")

    def maybe_die(x):
        if x == 7 and not os.path.exists(flag):
            open(flag, "w").close()
            os.kill(os.getpid(), 9)
        return (x % 3, 1)

    try:
        got = sorted(ctx.parallelize(range(60), 5).map(maybe_die)
                     .reduce_by_key(lambda a, b: a + b).collect())
        assert got == [(0, 20), (1, 20), (2, 20)]
        assert backend.worker_deaths == 1
        assert [a.error for a in
                ctx.pooled_executor.retry_session.history] \
            == ["pool worker died"]
    finally:
        backend.shutdown()


def test_retry_budget_exhaustion_raises_task_failed():
    from repro.common.errors import TaskFailedError
    from repro.resilience import RetryPolicy
    backend = ProcessPoolBackend(
        n_workers=1, retry_policy=RetryPolicy(max_attempts=2))
    ctx = DataflowContext(default_parallelism=2)
    ctx.attach_pool(backend)
    ctx.backend = "pool"
    try:
        with pytest.raises(TaskFailedError) as ei:
            ctx.parallelize(range(10), 2).map(
                lambda x: os.kill(os.getpid(), 9)).collect()
        assert len(ei.value.attempts) == 2
        assert backend.worker_deaths == 2
    finally:
        backend.shutdown()


def test_user_error_reraises_and_pool_stays_usable(pool):
    ctx = pool_ctx(pool)
    with pytest.raises(ZeroDivisionError):
        ctx.parallelize(range(10), 2).map(lambda x: 1 // (x - 4)).collect()
    # no retries for user errors …
    assert ctx.pooled_executor.retry_session.history == []
    # … and the pool still serves correct results afterwards
    assert ctx.parallelize(range(10), 2).map(lambda x: x + 1).sum() == 55


def test_unpicklable_closure_names_operator(pool):
    ctx = pool_ctx(pool)
    gen = (i for i in range(3))    # generators cannot pickle
    with pytest.raises(UnpicklableTaskError) as ei:
        ctx.parallelize(range(10), 2).map(lambda x, _g=gen: x).collect()
    assert "MappedDataset" in str(ei.value)


# -- segment-cache safety (per-process codegen state) ----------------------


def test_segment_cache_reset_and_prime():
    reset_segment_cache()
    assert segment_cache_shapes() == ()
    shapes = segment_shapes(["map", "filter", "iter", "flatmap", "map"])
    assert shapes == [("map", "filter"), ("flatmap", "map")]
    assert prime_segments(shapes) == 2
    assert set(segment_cache_shapes()) == set(shapes)
    assert prime_segments(shapes) == 0      # idempotent: cache hits
    reset_segment_cache()
    assert segment_cache_shapes() == ()


def test_segment_shapes_match_run_chain_compilation():
    reset_segment_cache()
    kinds = ["map", "map", "iter_split", "filter"]
    ds_kinds = segment_shapes(kinds)
    prime_segments(ds_kinds)
    primed = set(segment_cache_shapes())
    # running the equivalent fused chain compiles nothing new
    steps = [("map", lambda x: x + 1), ("map", lambda x: x * 2),
             ("iter_split", lambda s, it: list(it)),
             ("filter", lambda x: x % 2 == 0)]
    out = list(fusion.run_chain(steps, 0, iter(range(10))))
    assert out == [(x + 1) * 2 for x in range(10) if (x + 1) * 2 % 2 == 0]
    assert set(segment_cache_shapes()) == primed
    reset_segment_cache()


def test_pool_worker_rebuilds_segment_cache(pool):
    # a fused plan whose shapes were never compiled driver-side still
    # runs pooled: workers prime their own per-process cache
    reset_segment_cache()
    ctx = pool_ctx(pool)
    got = (ctx.parallelize(range(60), 3)
           .map(lambda x: x + 1)
           .filter(lambda x: x % 2 == 0)
           .flat_map(lambda x: (x, x))
           .collect())
    assert got == [y for x in range(60) if (x + 1) % 2 == 0
                   for y in ((x + 1), (x + 1))]


# -- spawn start method ----------------------------------------------------


@pytest.mark.skipif(os.name == "nt", reason="POSIX pool only")
def test_spawn_start_method_smoke():
    backend = ProcessPoolBackend(n_workers=1, start_method="spawn")
    ctx = DataflowContext(default_parallelism=2)
    ctx.attach_pool(backend)
    ctx.backend = "pool"
    try:
        # arithmetic-only closures: int hashing is seed-independent, so
        # results cannot depend on the child's PYTHONHASHSEED
        got = (ctx.parallelize(range(40), 2)
               .map(lambda x: (x % 4, x * 3))
               .reduce_by_key(lambda a, b: a + b).collect())
        ref = {}
        for x in range(40):
            ref[x % 4] = ref.get(x % 4, 0) + x * 3
        assert sorted(got) == sorted(ref.items())
    finally:
        backend.shutdown()


# -- simulated engine integration ------------------------------------------


def _sim_collect(build, backend=None, pool_prefetch=True):
    from repro.dataflow import EngineConfig
    sim = Simulator()
    cluster = make_cluster(sim, 2, 2)
    ctx = DataflowContext(default_parallelism=4)
    if backend is not None:
        ctx.attach_pool(backend)
        ctx.backend = "pool"
    eng = SimEngine(cluster, EngineConfig(pool_prefetch=pool_prefetch))
    ev = eng.collect(build(ctx))
    sim.run()
    res = ev.value
    return pickle.dumps(res.value), res.metrics


def test_engine_pool_prefetch_identical_results_and_schedule(pool):
    build = lambda ctx: (ctx.parallelize(range(80), 4)
                         .map(lambda x: x * 3)
                         .filter(lambda x: x % 2 == 0))
    v_local, m_local = _sim_collect(build)
    v_pool, m_pool = _sim_collect(build, backend=pool)
    v_off, m_off = _sim_collect(build, backend=pool, pool_prefetch=False)
    assert v_local == v_pool == v_off
    assert m_local.pool_prefetched == 0
    assert m_pool.pool_prefetched == 4
    assert m_off.pool_prefetched == 0
    # prefetch must not perturb the simulated schedule
    assert m_local.duration == m_pool.duration


def test_engine_pool_prefetch_skips_impure_stages(pool):
    # shuffle-fed result stage and accumulator jobs must compute inline
    build = lambda ctx: (ctx.parallelize(range(60), 4)
                         .map(lambda x: (x % 5, x))
                         .reduce_by_key(lambda a, b: a + b, 3))
    v_local, m_local = _sim_collect(build)
    v_pool, m_pool = _sim_collect(build, backend=pool)
    assert v_local == v_pool
    # only the 4 pure map-stage partitions prefetch, not the reduce side
    assert m_pool.pool_prefetched == 4
