"""Narrow-chain fusion: fused and unfused plans must be indistinguishable.

Property tests assert byte-identical ``collect()`` results (pickle
equality) and identical shuffle/cache traces for random narrow chains —
including ``with_split`` ops, cached midpoints, sample barriers, and
diamond/multi-child DAGs — on both the local executor and the simulated
engine.
"""

import operator
import pickle
import random

import pytest

from repro.cluster import make_cluster
from repro.dataflow import (
    DataflowContext,
    SimEngine,
    fusion_enabled,
    fusion_groups,
    set_fusion,
)
from repro.simcore import Simulator


@pytest.fixture(autouse=True)
def _fusion_on_after():
    yield
    set_fusion(True)


def collect_both(build):
    """(fused, unfused) pickled collect() results of the same plan."""
    out = {}
    for fused in (True, False):
        set_fusion(fused)
        ctx = DataflowContext(default_parallelism=4)
        out[fused] = pickle.dumps(build(ctx).collect())
    set_fusion(True)
    return out[True], out[False]


# -- random narrow chains -------------------------------------------------


def random_chain(ctx, rng):
    """A random pipeline of narrow ops (element-wise and with_split)."""
    ds = ctx.parallelize(range(rng.randrange(0, 400)), rng.randrange(1, 6))
    for _ in range(rng.randrange(1, 10)):
        op = rng.randrange(8)
        if op == 0:
            k = rng.randrange(1, 5)
            ds = ds.map(lambda x, _k=k: x * _k + 1)
        elif op == 1:
            m = rng.randrange(2, 5)
            ds = ds.filter(lambda x, _m=m: hash(x) % _m != 0)
        elif op == 2:
            ds = ds.flat_map(lambda x: (x, -x) if isinstance(x, int) else (x,))
        elif op == 3:
            ds = ds.map_partitions(lambda it: [sum(1 for _ in it)])
        elif op == 4:
            ds = ds.zip_with_index().map(lambda kv: kv[0])
        elif op == 5:
            ds = ds.key_by(lambda x: hash(x) % 7).map_values(
                lambda v: v).values()
        elif op == 6:
            ds = ds.glom().flat_map(lambda chunk: chunk)
        else:
            ds = ds.map(str).map(len)
    return ds


@pytest.mark.parametrize("seed", range(12))
def test_random_chain_byte_identical(seed):
    rng_args = seed
    fused, unfused = collect_both(
        lambda ctx, _s=rng_args: random_chain(ctx, random.Random(_s)))
    assert fused == unfused


@pytest.mark.parametrize("seed", range(6))
def test_random_chain_with_shuffle_byte_identical(seed):
    def build(ctx):
        rng = random.Random(seed)
        ds = random_chain(ctx, rng).map(
            lambda x: (hash(x) % 11, 1)).reduce_by_key(operator.add, 4)
        return ds.map_values(lambda v: v * 2)
    fused, unfused = collect_both(build)
    assert fused == unfused


def test_shuffle_metrics_identical():
    """Fusion must not change what crosses the wire."""
    def build(ctx):
        return (ctx.parallelize(range(1000), 5)
                .map(lambda x: x % 97).filter(lambda x: x % 2 == 0)
                .flat_map(lambda x: (x, x + 1))
                .map(lambda x: (x % 13, x))
                .reduce_by_key(operator.add, 3))
    traces = {}
    for fused in (True, False):
        set_fusion(fused)
        ctx = DataflowContext(4)
        ds = build(ctx)
        result = ds.collect()
        traces[fused] = (
            result,
            {sid: (m.records_in, m.records_written, m.bytes_written)
             for sid, m in ctx.local_executor.shuffle_metrics.items()},
        )
    assert traces[True] == traces[False]


# -- barriers -------------------------------------------------------------


def test_cached_midpoint_is_barrier_and_hits_cache():
    for fused in (True, False):
        set_fusion(fused)
        ctx = DataflowContext(2)
        calls = []
        base = ctx.parallelize(range(20), 2).map(
            lambda x: calls.append(x) or x + 1)
        mid = base.map(lambda x: x * 2).cache()
        top = mid.map(lambda x: x - 1).filter(lambda x: x % 3 != 0)
        first = top.collect()
        n_after_first = len(calls)
        second = top.collect()
        assert first == second
        assert len(calls) == n_after_first     # cache hit: no recompute
        if fused:
            groups = fusion_groups(top)
            # the cached dataset splits the pipeline: consumers above it
            # fuse separately, and it may only ever HEAD its own group
            # (caching wraps compute, so heading a chain is safe)
            assert len(groups) == 2
            assert all(mid.dataset_id not in g[:-1] for g in groups)
            assert groups[0] == [top.parent.dataset_id, top.dataset_id]
    set_fusion(True)


def test_diamond_multi_child_is_barrier():
    ctx = DataflowContext(2)
    a = ctx.parallelize(range(50), 2).map(lambda x: x + 1)
    b = a.map(lambda x: x * 2)            # b feeds two children
    c = b.map(lambda x: x + 3)
    d = b.filter(lambda x: x % 4 == 0)
    top = c.union(d)
    groups = {tuple(g) for g in fusion_groups(top)}
    # c and d each fuse alone: their shared parent b is a barrier
    assert (c.dataset_id,) in groups
    assert (d.dataset_id,) in groups
    # b itself still fuses with a below the fan-out
    assert (a.dataset_id, b.dataset_id) in groups

    fused, unfused = collect_both(
        lambda ctx2: (lambda a2: a2.map(lambda x: x + 3).union(
            a2.filter(lambda x: x % 4 == 0)))(
                ctx2.parallelize(range(50), 2).map(lambda x: x + 1)
                .map(lambda x: x * 2)))
    assert fused == unfused


def test_sample_is_barrier_and_deterministic():
    def build(ctx):
        return (ctx.parallelize(range(500), 3).map(lambda x: x * 3)
                .sample(0.4, seed=11).map(lambda x: x + 1))
    fused, unfused = collect_both(build)
    assert fused == unfused
    ctx = DataflowContext(3)
    top = build(ctx)
    groups = fusion_groups(top)
    # the op above the sample fuses alone: the sample is never pulled
    # into a consumer's segment (it may still head its own)
    assert groups[0] == [top.dataset_id]
    assert all(top.parent.dataset_id not in g[:-1] for g in groups)


def test_context_flag_disables_fusion():
    ctx = DataflowContext(2)
    ctx.fusion_enabled = False
    ds = ctx.parallelize(range(30), 2).map(lambda x: x + 1).map(
        lambda x: x * 2)
    assert ds.collect() == [(x + 1) * 2 for x in range(30)]


def test_global_toggle_roundtrip():
    assert fusion_enabled()
    set_fusion(False)
    assert not fusion_enabled()
    set_fusion(True)
    assert fusion_enabled()


def test_deep_chain():
    def build(ctx):
        ds = ctx.parallelize(range(100), 2)
        for i in range(40):
            ds = ds.map(lambda x, _i=i: x + _i)
        return ds
    fused, unfused = collect_both(build)
    assert fused == unfused
    ctx = DataflowContext(2)
    ds = ctx.parallelize(range(10), 2)
    for i in range(40):
        ds = ds.map(lambda x, _i=i: x + _i)
    (group,) = fusion_groups(ds)
    assert len(group) == 40


# -- simulated engine -----------------------------------------------------


def _sim_collect(build):
    sim = Simulator()
    cl = make_cluster(sim, 2, 3)
    ctx = DataflowContext(default_parallelism=6)
    eng = SimEngine(cl)
    res = sim.run_until_done(eng.collect(build(ctx)))
    return res


@pytest.mark.parametrize("seed", range(4))
def test_simengine_fused_equals_unfused(seed):
    def build(ctx):
        rng = random.Random(seed + 100)
        return random_chain(ctx, rng).map(
            lambda x: (hash(x) % 5, 1)).reduce_by_key(operator.add, 3)
    out = {}
    for fused in (True, False):
        set_fusion(fused)
        out[fused] = pickle.dumps(_sim_collect(build).value)
    set_fusion(True)
    assert out[True] == out[False]


def test_simengine_reports_fused_segments():
    def build(ctx):
        return (ctx.parallelize(range(200), 4)
                .map(lambda x: x + 1).filter(lambda x: x % 2 == 0)
                .map(lambda x: (x % 7, x)).reduce_by_key(operator.add, 3)
                .map_values(lambda v: v + 1).map(lambda kv: kv[1]))
    res = _sim_collect(build)
    assert res.metrics.fused_segments >= 2   # map side + reduce side
    set_fusion(False)
    try:
        res_off = _sim_collect(build)
        assert res_off.metrics.fused_segments == 0
        assert sorted(res_off.value) == sorted(res.value)
    finally:
        set_fusion(True)
