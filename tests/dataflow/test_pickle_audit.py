"""Picklability audit: every plan-layer closure must ship to the pool.

The multi-process backend serializes whole plan graphs — wrapper
lambdas, user element functions, aggregator folds, partitioner state,
and source partitions.  These tests round-trip representative plans
through the closure pickler and assert that anything unshippable
surfaces as :class:`UnpicklableTaskError` naming the offending operator,
never as a deep worker traceback.
"""

import math
import pickle
import types

import pytest

from repro.common.errors import UnpicklableTaskError
from repro.dataflow import DataflowContext, audit_plan
from repro.dataflow import closure
from repro.dataflow.mp import _plan_overrides, _walk_datasets


def mega_plan(ctx):
    """One plan touching every closure-carrying operator family."""
    a = (ctx.parallelize(range(200), 4)
         .map(lambda x: x + 1)
         .filter(lambda x: x % 3 != 0)
         .flat_map(lambda x: (x, -x))
         .map_partitions(lambda it: [v for v in it if v >= 0])
         .key_by(lambda x: x % 7))
    b = ctx.parallelize([(i % 7, str(i)) for i in range(50)], 3)
    joined = a.combine_by_key(lambda v: [v],
                              lambda acc, v: acc + [v],
                              lambda l, r: l + r, 4).join(b, 3)
    return joined.map_values(lambda vw: len(vw[0])).sort_by_key()


def test_audit_passes_on_full_plan_surface():
    ctx = DataflowContext(default_parallelism=4)
    root = mega_plan(ctx)
    audit_plan(root)   # must not raise


def test_full_plan_graph_round_trips():
    ctx = DataflowContext(default_parallelism=4)
    root = mega_plan(ctx)
    expected = root.collect()
    blob, bufs = closure.dumps(root, overrides=_plan_overrides())
    rebuilt = closure.loads(blob, bufs)
    assert rebuilt.dataset_id == root.dataset_id
    assert len(_walk_datasets(rebuilt)) == len(_walk_datasets(root))
    # sanity: the plan result itself is picklable data
    assert pickle.loads(pickle.dumps(expected)) == expected


def test_every_plan_closure_checks_individually():
    ctx = DataflowContext(default_parallelism=4)
    root = mega_plan(ctx)
    checked = 0
    for ds in _walk_datasets(root):
        for attr in ("fn", "elem_fn"):
            fnv = getattr(ds, attr, None)
            if fnv is not None:
                closure.check_picklable(fnv, dataset=repr(ds), operator=attr)
                checked += 1
        for dep in ds.deps:
            agg = getattr(dep, "aggregator", None)
            if agg is not None:
                for op in ("create", "merge_value", "merge_combiners"):
                    closure.check_picklable(getattr(agg, op))
                    checked += 1
            part = getattr(dep, "partitioner", None)
            if part is not None:
                closure.check_picklable(part)
                checked += 1
    assert checked > 10


# -- failure naming --------------------------------------------------------


def test_unpicklable_map_closure_names_fn():
    ctx = DataflowContext(default_parallelism=2)
    gen = (i for i in range(3))    # generators never pickle
    ds = ctx.parallelize(range(10), 2).map(lambda x, _g=gen: x)
    with pytest.raises(UnpicklableTaskError) as ei:
        audit_plan(ds)
    err = ei.value
    assert err.operator in ("fn", "elem_fn")
    assert err.dataset is not None and "MappedDataset" in err.dataset
    assert "MappedDataset" in str(err)


def test_unpicklable_aggregator_fold_named():
    ctx = DataflowContext(default_parallelism=2)
    handle = open(__file__)        # file objects never pickle
    try:
        ds = (ctx.parallelize([(i % 3, i) for i in range(20)], 2)
              .combine_by_key(lambda v: [v],
                              lambda acc, v, _h=handle: acc + [v],
                              lambda l, r: l + r, 2))
        with pytest.raises(UnpicklableTaskError) as ei:
            audit_plan(ds)
        assert "aggregator.merge_value" in str(ei.value.operator)
    finally:
        handle.close()


def test_unpicklable_source_partition_named():
    ctx = DataflowContext(default_parallelism=2)
    ds = ctx.parallelize([1, 2, (i for i in range(3))], 2)
    with pytest.raises(UnpicklableTaskError) as ei:
        audit_plan(ds)
    assert ei.value.operator == "source partitions"


# -- closure pickler mechanics ---------------------------------------------


def test_nested_closures_defaults_and_kwdefaults():
    base = 10

    def outer(scale):
        offset = scale * 2

        def inner(x, mult=3, *, bias=base):
            return x * mult + offset + bias
        return inner

    fn = outer(5)
    blob, bufs = closure.dumps(fn)
    rebuilt = closure.loads(blob, bufs)
    assert rebuilt(7) == fn(7)
    assert rebuilt(7, mult=2, bias=0) == fn(7, mult=2, bias=0)


def test_importable_function_ships_by_reference():
    blob, _ = closure.dumps(math.sqrt)
    assert closure.loads(blob) is math.sqrt


def test_module_closure_ships_by_name():
    fn = lambda x: math.floor(x / 2)
    blob, bufs = closure.dumps(fn)
    assert closure.loads(blob, bufs)(9) == 4


def test_main_style_function_ships_globals_subset():
    # functions from __main__ have no importable module in a worker: the
    # referenced subset of their globals must travel by value
    src = "def f(x):\n    return x * FACTOR + math.floor(1.5)\n"
    g = {"FACTOR": 4, "math": math}
    exec(compile(src, "<test>", "exec"), g)
    fn = g["f"]
    fn.__module__ = "__main__"
    blob, bufs = closure.dumps(fn)
    rebuilt = closure.loads(blob, bufs)
    assert rebuilt(10) == 41
    assert isinstance(rebuilt, types.FunctionType)


def test_numpy_buffers_ship_out_of_band():
    np = pytest.importorskip("numpy")
    arr = np.arange(1024, dtype=np.int64)
    blob, bufs = closure.dumps({"col": arr})
    assert bufs, "expected at least one out-of-band buffer"
    rebuilt = closure.loads(blob, bufs)
    assert (rebuilt["col"] == arr).all()
