"""Adaptive query plans under injected faults: recovery equivalence.

The AQE rewrites change the physical shape of a join — a broadcast join
removes the shuffle entirely; skew re-partitioning adds dedicated
reducers for hot keys.  Both must stay inside the engine's recovery
envelope: a run with node deaths, task crashes and lost shuffle blocks
must produce byte-identical results to the fault-free run, and re-running
the same fault plan must reproduce the same injection trace.
"""

import random

import pytest

from repro.chaos import ClusterChaos, EngineChaos, FaultPlan, InjectionTrace
from repro.cluster import make_cluster
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.simcore import Simulator
from repro.sql import DataFrame, col, count_, sum_
from repro.sql.adaptive import AdaptiveConfig, set_adaptive

SEEDS = range(3)

NODES = [f"h{r}_{i}" for r in range(2) for i in range(4)]


@pytest.fixture(autouse=True)
def _reset_adaptive():
    yield
    set_adaptive(False, AdaptiveConfig())


def _fault_plan(seed):
    return FaultPlan.renewal(
        seed, horizon=0.3,
        rates={"node_fail": 3.0, "slow_node": 6.0,
               "task_crash": 15.0, "lost_shuffle": 10.0},
        targets=NODES, mean_duration=0.08)


def _broadcast_query(ctx, seed):
    rng = random.Random(seed)
    fact = [{"k": rng.randrange(12), "v": rng.randrange(100)}
            for _ in range(600)]
    dim = [{"k": i, "label": f"g{i}"} for i in range(12)]
    f = DataFrame.from_rows(ctx, fact, name="fact")
    d = DataFrame.from_rows(ctx, dim, name="dim")
    return (f.join(d, on="k")
            .group_by("label").agg(n=count_(), s=sum_(col("v"))))


def _skew_query(ctx, seed):
    rng = random.Random(seed)
    fact = [{"k": 0 if rng.random() < 0.7 else rng.randrange(1, 30),
             "v": rng.randrange(100)} for _ in range(900)]
    dim = [{"k": i, "w": i * 2} for i in range(30)]
    f = DataFrame.from_rows(ctx, fact, name="fact")
    d = DataFrame.from_rows(ctx, dim, name="dim")
    return f.join(d, on="k").group_by("k").agg(n=count_(), s=sum_(col("w")))


def _run(query_fn, seed, fault_plan, columnar):
    sim = Simulator()
    cluster = make_cluster(sim, n_racks=2, nodes_per_rack=4)
    ctx = DataflowContext(default_parallelism=8)
    engine = SimEngine(cluster, config=EngineConfig(max_task_retries=8),
                       cost_model=CostModel(cpu_per_record=2e-4))
    q = query_fn(ctx, seed)
    ds = q.to_dataset(columnar=columnar, adaptive=True)
    report = q.last_adaptive_report
    trace = InjectionTrace()
    if fault_plan is not None:
        ClusterChaos(cluster, fault_plan, trace).start()
        EngineChaos(engine, fault_plan, trace).start()
    res = sim.run_until_done(engine.collect(ds))
    return sorted(map(repr, res.value)), trace, report


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("columnar", [True, False])
def test_broadcast_join_recovery_equivalence(seed, columnar):
    set_adaptive(False, AdaptiveConfig(broadcast_rows=100))
    free, _t, report = _run(_broadcast_query, seed, None, columnar)
    assert "broadcast_joins" in report.kinds()      # the rewrite fired
    plan = _fault_plan(seed)
    faulted1, trace1, _ = _run(_broadcast_query, seed, plan, columnar)
    faulted2, trace2, _ = _run(_broadcast_query, seed, plan, columnar)
    assert faulted1 == free, "broadcast join diverged under faults"
    assert faulted1 == faulted2
    assert trace1.signature() == trace2.signature()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("columnar", [True, False])
def test_skew_repartition_recovery_equivalence(seed, columnar):
    set_adaptive(False, AdaptiveConfig(broadcast_rows=1,   # keep the shuffle
                                       skew_min_rows=100, skew_factor=2.0,
                                       measure=False))
    free, _t, report = _run(_skew_query, seed, None, columnar)
    assert "skew_repartitions" in report.kinds()    # hot key was isolated
    plan = _fault_plan(seed)
    faulted1, trace1, _ = _run(_skew_query, seed, plan, columnar)
    faulted2, trace2, _ = _run(_skew_query, seed, plan, columnar)
    assert faulted1 == free, "skew re-partition diverged under faults"
    assert faulted1 == faulted2
    assert trace1.signature() == trace2.signature()


def test_faults_actually_fire():
    # non-vacuity: across the seeds at least one run injects something
    total = 0
    set_adaptive(False, AdaptiveConfig(broadcast_rows=100))
    for seed in SEEDS:
        _out, trace, _r = _run(_broadcast_query, seed, _fault_plan(seed),
                               True)
        total += len(trace)
    assert total > 0
