"""The data_corrupt fault kind and the check_integrity oracle layer."""

from operator import add

import numpy as np
import pytest

from repro.chaos import (
    FAULT_KINDS,
    DFSChaos,
    EngineChaos,
    FaultEvent,
    FaultPlan,
    LAYERS,
    check_integrity,
    snapshot_corrupt_times,
)
from repro.cluster import make_cluster
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.simcore import Simulator
from repro.storage.dfs import DFSConfig, DistributedFS


class TestFaultKind:
    def test_data_corrupt_is_a_kind(self):
        assert "data_corrupt" in FAULT_KINDS

    def test_renewal_plans_can_carry_it(self):
        plan = FaultPlan.renewal(3, horizon=50.0,
                                 rates={"data_corrupt": 0.1})
        assert plan.kinds() == ["data_corrupt"]
        assert all(e.magnitude == 1.0 for e in plan)

    def test_snapshot_corrupt_times(self):
        plan = FaultPlan.scripted([
            FaultEvent(7.0, "data_corrupt"),
            FaultEvent(2.0, "data_corrupt"),
            FaultEvent(4.0, "operator_crash"),
        ])
        assert snapshot_corrupt_times(plan) == [2.0, 7.0]

    def test_plan_rng_streams_are_stable(self):
        a = FaultPlan.scripted([], seed=9).rng("dfs.data_corrupt")
        b = FaultPlan.scripted([], seed=9).rng("dfs.data_corrupt")
        c = FaultPlan.scripted([], seed=9).rng("engine.data_corrupt")
        draws = lambda r: r.integers(0, 1 << 30, 8).tolist()
        assert draws(a) == draws(b)
        assert draws(a) != draws(c)      # per-purpose child streams


def _wordcount_env():
    sim = Simulator()
    cl = make_cluster(sim, 2, 4)
    ctx = DataflowContext(default_parallelism=8)
    eng = SimEngine(cl, EngineConfig(max_task_retries=8),
                    cost_model=CostModel(cpu_per_record=2e-4))
    words = (["alpha", "beta", "gamma", "delta"] * 300)
    ds = ctx.parallelize(words, 8).map(lambda w: (w, 1)).reduce_by_key(add, 4)
    expected = sorted(ds.collect())
    return sim, eng, ds, expected


class TestEngineCorruption:
    def test_corrupt_bucket_recovered_by_lineage(self):
        sim, eng, ds, expected = _wordcount_env()
        # rot two registered map outputs right after the map stage
        # finishes; the reduces detect the checksum breaks and lineage
        # recovery re-runs exactly the producing maps
        plan = FaultPlan.scripted(
            [FaultEvent(0.066, "data_corrupt", magnitude=2.0)], seed=5)
        chaos = EngineChaos(eng, plan)
        chaos.start()
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == expected
        assert chaos.trace.count("data_corrupt") == 2
        assert eng.integrity_detected + eng.integrity_latent_discarded == 2
        assert eng.audit_shuffle_integrity() == []

    def test_corrupt_before_any_output_is_skipped(self):
        sim, eng, ds, expected = _wordcount_env()
        plan = FaultPlan.scripted([FaultEvent(0.0, "data_corrupt")], seed=5)
        chaos = EngineChaos(eng, plan)
        chaos.start()
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == expected
        assert chaos.trace.count("data_corrupt_skipped") == 1
        assert eng.integrity_detected == 0

    def test_corrupt_map_outputs_audit(self):
        sim, eng, ds, expected = _wordcount_env()
        res = sim.run_until_done(eng.collect(ds))
        assert res.value
        hit = eng.corrupt_map_outputs(2)
        assert len(hit) == 2
        assert sorted(eng.audit_shuffle_integrity()) == sorted(hit)


class TestDFSCorruption:
    def test_corrupt_piece_detected_and_healed(self):
        sim = Simulator()
        cl = make_cluster(sim, n_racks=3, nodes_per_rack=3)
        dfs = DistributedFS(cl, DFSConfig(block_size=64 * 1024,
                                          detection_delay=0.5,
                                          scrub_interval=5.0), seed=3)
        payload = np.random.default_rng(17).bytes(120_000)
        sim.run_until_done(dfs.write("/f.bin", data=payload,
                                     writer="h0_0", mode="replicate"))
        plan = FaultPlan.scripted([FaultEvent(1.0, "data_corrupt")], seed=4)
        chaos = DFSChaos(dfs, plan)
        chaos.start()
        sim.run(until=60.0)
        assert chaos.trace.count("data_corrupt") == 1
        assert dfs.integrity_detected == 1
        assert dfs.audit_integrity() == []
        got, _ = sim.run_until_done(dfs.read("/f.bin", reader="h2_2"))
        assert got == payload

    def test_corrupt_skipped_when_nothing_stored(self):
        sim = Simulator()
        cl = make_cluster(sim, n_racks=2, nodes_per_rack=2)
        dfs = DistributedFS(cl, DFSConfig(block_size=64 * 1024), seed=3)
        plan = FaultPlan.scripted([FaultEvent(1.0, "data_corrupt")], seed=4)
        chaos = DFSChaos(dfs, plan)
        chaos.start()
        sim.run(until=5.0)
        assert chaos.trace.count("data_corrupt_skipped") == 1


class TestIntegrityOracle:
    def test_registered_layer(self):
        assert "integrity" in LAYERS
        assert LAYERS["integrity"] is check_integrity

    # seeds 0-5 run in test_oracle.py's all-layer sweep; here one seed
    # deep-checks the report shape and that corruption actually fired
    def test_report_is_complete_and_injecting(self):
        report = check_integrity(0)
        assert report.ok, report.failures
        assert report.injections > 0
        labels = " ".join(report.checks)
        for needle in ("recovery_equivalence", "trace_determinism",
                       "accounting", "no_latent_after_scrub",
                       "protection_restored", "exactly_once_emissions"):
            assert needle in labels, f"missing {needle} in {labels}"

    def test_trace_repeats_exactly(self):
        a = check_integrity(1)
        b = check_integrity(1)
        assert a.ok and b.ok
        assert a.injections == b.injections
        assert a.checks == b.checks
