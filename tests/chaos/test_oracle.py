"""Recovery-equivalence oracles, swept over seeds across all five layers.

These are the acceptance checks of the chaos harness: for every layer and
seed, the faulted run must be byte-equal to the fault-free run, re-running
the same plan must reproduce the identical injection trace, and the
layer's conservation invariants must hold.
"""

import pytest

from repro.chaos import (
    LAYERS,
    FaultEvent,
    FaultPlan,
    check_dataflow,
    check_event_streaming,
    check_streaming,
    run_all,
    sweep,
)

SEEDS = range(6)


@pytest.mark.parametrize("layer", sorted(LAYERS))
@pytest.mark.parametrize("seed", SEEDS)
def test_layer_oracle(layer, seed):
    report = LAYERS[layer](seed)
    assert report.ok, f"{layer} seed={seed}: {report.failures}"
    assert report.failures == []
    assert report.checks


def test_run_all_covers_every_layer():
    reports = run_all(0)
    assert sorted(r.layer for r in reports) == sorted(LAYERS)


def test_sweep_flattens_reports():
    reports = sweep([1, 2], layers=["streaming", "autoscale"])
    assert len(reports) == 4
    assert all(r.ok for r in reports)


def test_faults_actually_fire_somewhere():
    # the oracles are vacuous if the calibrated plans never inject; across
    # a few seeds every layer must see at least one real injection
    by_layer = {}
    for r in sweep(SEEDS):
        by_layer[r.layer] = by_layer.get(r.layer, 0) + r.injections
    assert all(n > 0 for n in by_layer.values()), by_layer


def test_dataflow_oracle_accepts_custom_plan():
    plan = FaultPlan.scripted([
        FaultEvent(0.02, "task_crash", magnitude=2.0),
        FaultEvent(0.05, "node_fail", "h0_0", duration=0.1),
    ], seed=0)
    report = check_dataflow(0, plan)
    assert report.ok, report.failures


def test_streaming_oracle_trailing_crash_plan():
    # a crash far beyond the last event exercises the trailing-crash drain
    plan = FaultPlan.scripted([
        FaultEvent(40.0, "operator_crash"),
        FaultEvent(500.0, "operator_crash"),
    ], seed=0)
    report = check_streaming(0, plan)
    assert report.ok, report.failures
    assert report.injections == 2


def test_event_streaming_oracle_accepts_custom_plan():
    # dense crashes, including one past the last arrival: the emission
    # log must still be byte-equal to the crash-free run
    plan = FaultPlan.scripted([
        FaultEvent(5.0, "operator_crash"),
        FaultEvent(5.5, "operator_crash"),
        FaultEvent(30.0, "operator_crash"),
        FaultEvent(200.0, "operator_crash"),
    ], seed=0)
    report = check_event_streaming(0, plan)
    assert report.ok, report.failures
    assert report.injections == 4
    assert any("exactly_once" in c for c in report.checks)
    assert any("per_window_conservation" in c for c in report.checks)
