"""FaultPlan DSL: construction, determinism, filtering, validation."""

import pytest

from repro.chaos import FAULT_KINDS, FaultEvent, FaultPlan
from repro.common.errors import ConfigError


class TestFaultEvent:
    def test_valid_kinds_accepted(self):
        for kind in FAULT_KINDS:
            FaultEvent(1.0, kind)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "meteor_strike")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(-0.1, "node_fail")

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "node_fail", duration=-1.0)

    def test_nonpositive_magnitude_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "slow_node", magnitude=0.0)


class TestScripted:
    def test_events_sorted_by_time(self):
        plan = FaultPlan.scripted([
            FaultEvent(5.0, "node_fail", "n1"),
            FaultEvent(1.0, "task_crash"),
            FaultEvent(3.0, "lost_block"),
        ])
        assert [e.time for e in plan] == [1.0, 3.0, 5.0]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.scripted([])
        assert len(FaultPlan.scripted([])) == 0

    def test_signature_distinguishes_plans(self):
        a = FaultPlan.scripted([FaultEvent(1.0, "node_fail", "n1")])
        b = FaultPlan.scripted([FaultEvent(1.0, "node_fail", "n2")])
        assert a.signature() != b.signature()


class TestRenewal:
    RATES = {"node_fail": 0.1, "operator_crash": 0.05, "load_burst": 0.02}

    def test_same_seed_same_schedule(self):
        a = FaultPlan.renewal(7, 100.0, self.RATES, targets=["n1", "n2"])
        b = FaultPlan.renewal(7, 100.0, self.RATES, targets=["n1", "n2"])
        assert a.signature() == b.signature()

    def test_different_seed_different_schedule(self):
        a = FaultPlan.renewal(7, 200.0, self.RATES)
        b = FaultPlan.renewal(8, 200.0, self.RATES)
        assert a.signature() != b.signature()

    def test_adding_a_kind_preserves_other_kinds(self):
        # per-kind child streams: enabling one kind must not perturb the
        # schedule of another (the reproducibility rule from common.rng)
        just_crash = FaultPlan.renewal(3, 300.0, {"operator_crash": 0.05})
        both = FaultPlan.renewal(
            3, 300.0, {"operator_crash": 0.05, "node_fail": 0.1})
        assert (both.only("operator_crash").signature()
                == just_crash.signature())

    def test_events_within_horizon(self):
        plan = FaultPlan.renewal(1, 50.0, self.RATES)
        assert all(0.0 <= e.time < 50.0 for e in plan)

    def test_zero_rate_emits_nothing(self):
        assert len(FaultPlan.renewal(1, 100.0, {"node_fail": 0.0})) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.renewal(1, 100.0, {"node_fail": -0.1})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.renewal(1, 100.0, {"gremlins": 1.0})

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.renewal(1, 0.0, self.RATES)

    def test_targets_drawn_from_pool(self):
        plan = FaultPlan.renewal(2, 400.0, {"node_fail": 0.1},
                                 targets=["a", "b", "c"])
        assert len(plan) > 0
        assert all(e.target in {"a", "b", "c"} for e in plan)

    def test_magnitude_override(self):
        plan = FaultPlan.renewal(2, 400.0, {"slow_node": 0.1},
                                 magnitudes={"slow_node": 0.5})
        assert all(e.magnitude == 0.5 for e in plan)


class TestQueries:
    PLAN = FaultPlan.scripted([
        FaultEvent(1.0, "node_fail", "n1"),
        FaultEvent(2.0, "task_crash"),
        FaultEvent(3.0, "node_fail", "n2"),
        FaultEvent(9.0, "lost_block"),
    ], seed=5)

    def test_only_filters_kinds(self):
        sub = self.PLAN.only("node_fail")
        assert len(sub) == 2
        assert sub.kinds() == ["node_fail"]

    def test_only_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            self.PLAN.only("gremlins")

    def test_until_is_strict(self):
        assert len(self.PLAN.until(3.0)) == 2
        assert len(self.PLAN.until(100.0)) == 4

    def test_filters_preserve_seed(self):
        assert self.PLAN.only("node_fail").seed == 5
        assert self.PLAN.until(3.0).seed == 5

    def test_kinds_sorted_distinct(self):
        assert self.PLAN.kinds() == ["lost_block", "node_fail", "task_crash"]


class TestPlanRng:
    def test_same_purpose_same_stream(self):
        plan = FaultPlan.scripted([], seed=11)
        a = plan.rng("victims").integers(0, 1000, size=8)
        b = plan.rng("victims").integers(0, 1000, size=8)
        assert (a == b).all()

    def test_different_purpose_different_stream(self):
        plan = FaultPlan.scripted([], seed=11)
        a = plan.rng("victims").integers(0, 1000, size=8)
        b = plan.rng("targets").integers(0, 1000, size=8)
        assert not (a == b).all()

    def test_different_seed_different_stream(self):
        a = FaultPlan.scripted([], seed=11).rng("v").integers(0, 1000, size=8)
        b = FaultPlan.scripted([], seed=12).rng("v").integers(0, 1000, size=8)
        assert not (a == b).all()
