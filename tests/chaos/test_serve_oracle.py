"""check_serve: the serving-gateway leg of the chaos oracle."""

from repro.chaos.oracle import LAYERS, check_serve, sweep
from repro.chaos.plan import FaultEvent, FaultPlan


class TestServeOracle:
    def test_registered_as_chaos_layer(self):
        assert LAYERS["serve"] is check_serve

    def test_default_plan_passes(self):
        report = check_serve(0)
        assert report.ok, report.failures
        assert report.injections > 0

    def test_sweep_holds_conservation_for_every_seed(self):
        reports = sweep(range(4), layers=["serve"])
        assert len(reports) == 4
        for r in reports:
            assert r.ok, (r.seed, r.failures)
            assert any("per_tenant_conservation" in c for c in r.checks)

    def test_scripted_storm(self):
        plan = FaultPlan.scripted([
            FaultEvent(2.0, "task_crash", magnitude=30),
            FaultEvent(5.0, "node_fail", duration=15.0),
            FaultEvent(8.0, "slow_node", duration=10.0, magnitude=0.4),
            FaultEvent(12.0, "load_burst", duration=8.0, magnitude=3.0),
        ], seed=3, name="storm")
        report = check_serve(3, plan)
        assert report.ok, report.failures
