"""Per-layer injection adapters: scripted faults land where they should."""

from operator import add

import numpy as np
import pytest

from repro.chaos import (
    ClusterChaos,
    DFSChaos,
    EngineChaos,
    FaultEvent,
    FaultPlan,
    InjectionTrace,
    burst_rate,
    burst_series,
    operator_crash_times,
)
from repro.chaos.adapters import sleep_until
from repro.cluster import make_cluster
from repro.dataflow import CostModel, DataflowContext, EngineConfig, SimEngine
from repro.simcore import Simulator
from repro.storage.dfs import DFSConfig, DistributedFS


class TestSleepUntil:
    def test_absolute_time(self):
        sim = Simulator()
        hits = []

        def _p():
            yield sleep_until(sim, 5.0)
            hits.append(sim.now)
        sim.process(_p())
        sim.run()
        assert hits == [5.0]

    def test_past_time_collapses_to_now(self):
        sim = Simulator()
        hits = []

        def _p():
            yield sim.timeout(3.0)
            yield sleep_until(sim, 1.0)   # already past: zero delay
            hits.append(sim.now)
        sim.process(_p())
        sim.run()
        assert hits == [3.0]

    def test_same_timestamp_fires_in_spawn_order(self):
        # the property every injection adapter relies on: events scheduled
        # for the same instant (including already-past times collapsing to
        # "now") fire in the order their processes were spawned, so a
        # plan's same-time faults land in plan order
        order = []

        def runs():
            sim = Simulator()

            def _p(tag, t):
                yield sleep_until(sim, t)
                order.append((tag, sim.now))
            for tag in ("a", "b", "c", "d"):
                sim.process(_p(tag, 2.0), name=f"inj:{tag}")
            sim.run()
        runs()
        assert [tag for tag, _ in order] == ["a", "b", "c", "d"]
        assert all(t == 2.0 for _, t in order)
        first = list(order)
        order.clear()
        runs()
        assert order == first


class TestInjectionTrace:
    def test_record_and_signature(self):
        tr = InjectionTrace()
        tr.record(1.5, "node_fail", "n1")
        tr.record(2.5, "node_recover", "n1")
        assert len(tr) == 2
        assert tr.signature() == ((1.5, "node_fail", "n1"),
                                  (2.5, "node_recover", "n1"))

    def test_count_by_kind(self):
        tr = InjectionTrace()
        tr.record(1.0, "task_crash", "a")
        tr.record(2.0, "task_crash", "b")
        tr.record(3.0, "node_fail", "n")
        assert tr.count("task_crash") == 2
        assert tr.count("lost_block") == 0


class TestClusterChaos:
    def _cluster(self):
        sim = Simulator()
        return sim, make_cluster(sim, n_racks=1, nodes_per_rack=3)

    def test_scripted_fail_and_recover(self):
        sim, cl = self._cluster()
        plan = FaultPlan.scripted(
            [FaultEvent(5.0, "node_fail", "h0_1", duration=10.0)])
        chaos = ClusterChaos(cl, plan)
        assert chaos.start() == 1
        sim.run(until=6.0)
        assert not cl.nodes["h0_1"].alive
        sim.run(until=20.0)
        assert cl.nodes["h0_1"].alive
        assert chaos.trace.signature() == (
            (5.0, "node_fail", "h0_1"), (15.0, "node_recover", "h0_1"))

    def test_last_live_node_is_spared(self):
        sim, cl = self._cluster()
        plan = FaultPlan.scripted([
            FaultEvent(1.0, "node_fail", "h0_0"),
            FaultEvent(2.0, "node_fail", "h0_1"),
            FaultEvent(3.0, "node_fail", "h0_2"),
        ])
        chaos = ClusterChaos(cl, plan)
        chaos.start()
        sim.run(until=10.0)
        assert len(cl.live_nodes()) == 1
        assert chaos.trace.count("node_fail") == 2
        assert chaos.trace.count("node_fail_skipped") == 1

    def test_slow_node_restores_speed(self):
        sim, cl = self._cluster()
        plan = FaultPlan.scripted(
            [FaultEvent(2.0, "slow_node", "h0_0", duration=4.0,
                        magnitude=0.25)])
        ClusterChaos(cl, plan).start()
        node = cl.nodes["h0_0"]
        sim.run(until=3.0)
        assert node.speed_factor == pytest.approx(0.25)
        sim.run(until=10.0)
        assert node.speed_factor == pytest.approx(1.0)

    def test_failure_injector_apply_plan_bridge(self):
        from repro.cluster.failures import FailureInjector
        sim, cl = self._cluster()
        inj = FailureInjector(cl, mtbf=1e9, mttr=1.0, seed=0)
        plan = FaultPlan.scripted([
            FaultEvent(2.0, "node_fail", "h0_0", duration=3.0),
            FaultEvent(4.0, "slow_node", "h0_1"),     # not the bridge's job
        ])
        assert inj.apply_plan(plan) == 1
        sim.run(until=3.0)
        assert not cl.nodes["h0_0"].alive
        sim.run(until=10.0)
        assert cl.nodes["h0_0"].alive
        assert inj.events == [(2.0, "h0_0", "fail"), (5.0, "h0_0", "recover")]

    def test_unnamed_target_resolved_deterministically(self):
        picks = []
        for _ in range(2):
            sim, cl = self._cluster()
            plan = FaultPlan.scripted([FaultEvent(1.0, "node_fail")], seed=9)
            chaos = ClusterChaos(cl, plan)
            chaos.start()
            sim.run(until=2.0)
            picks.append(chaos.trace.signature())
        assert picks[0] == picks[1]
        assert picks[0][0][1] == "node_fail"


def _wordcount_env():
    sim = Simulator()
    cl = make_cluster(sim, n_racks=2, nodes_per_rack=4)
    ctx = DataflowContext(default_parallelism=8)
    eng = SimEngine(cl, config=EngineConfig(max_task_retries=8),
                    cost_model=CostModel(cpu_per_record=2e-4))
    words = (["alpha", "beta", "gamma", "delta"] * 300)
    ds = ctx.parallelize(words, 8).map(lambda w: (w, 1)).reduce_by_key(add, 4)
    expected = sorted(ds.collect())
    return sim, eng, ds, expected


class TestEngineChaos:
    def test_task_crash_retried_transparently(self):
        sim, eng, ds, expected = _wordcount_env()
        plan = FaultPlan.scripted(
            [FaultEvent(0.0, "task_crash", magnitude=3.0)])
        chaos = EngineChaos(eng, plan)
        chaos.start()
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == expected
        assert chaos.trace.count("task_crash") == 3

    def test_hook_not_armed_without_task_crashes(self):
        sim, eng, ds, _ = _wordcount_env()
        plan = FaultPlan.scripted([FaultEvent(0.05, "lost_shuffle")])
        EngineChaos(eng, plan).start()
        assert eng.fault_hook is None

    def test_lost_shuffle_triggers_lineage_recovery(self):
        sim, eng, ds, expected = _wordcount_env()
        # drop two map outputs right after the map stage registers them
        # (all 8 maps finish at t=0.065 in this homogeneous setup); reduces
        # that have not fetched yet hit MissingShuffleError and lineage
        # recovery re-runs the dropped maps
        plan = FaultPlan.scripted(
            [FaultEvent(0.066, "lost_shuffle", magnitude=2.0)])
        chaos = EngineChaos(eng, plan)
        chaos.start()
        res = sim.run_until_done(eng.collect(ds))
        assert sorted(res.value) == expected
        assert chaos.trace.count("lost_shuffle") == 2

    def test_drop_map_outputs_without_rng_is_lowest_first(self):
        sim, eng, ds, _ = _wordcount_env()
        res = sim.run_until_done(eng.collect(ds))
        assert res.value
        # after the job the registry still holds the map outputs
        dropped = eng.drop_map_outputs(2)
        assert dropped == [(0, 0), (0, 1)]


class TestDFSChaos:
    def _fs(self):
        sim = Simulator()
        cl = make_cluster(sim, n_racks=3, nodes_per_rack=3)
        dfs = DistributedFS(cl, DFSConfig(block_size=64 * 1024, ec_k=4,
                                          ec_m=2, detection_delay=0.5),
                            seed=3)
        return sim, dfs

    @pytest.mark.parametrize("mode", ["replicate", "ec"])
    def test_lost_piece_is_repaired_and_data_survives(self, mode):
        sim, dfs = self._fs()
        rng = np.random.default_rng(17)
        payload = rng.bytes(120_000)
        sim.run_until_done(dfs.write("/f.bin", data=payload,
                                     writer="h0_0", mode=mode))
        plan = FaultPlan.scripted([FaultEvent(1.0, "lost_block")], seed=4)
        chaos = DFSChaos(dfs, plan)
        assert chaos.start() == 1
        sim.run(until=30.0)
        assert chaos.trace.count("lost_block") == 1
        assert chaos.trace.count("block_repaired") == 1
        assert dfs.repairs_started >= 1
        got, _ = sim.run_until_done(dfs.read("/f.bin", reader="h2_2"))
        assert got == payload

    def test_skip_when_nothing_droppable(self):
        sim, dfs = self._fs()
        plan = FaultPlan.scripted([FaultEvent(1.0, "lost_block")], seed=4)
        chaos = DFSChaos(dfs, plan)
        chaos.start()
        sim.run(until=5.0)
        assert chaos.trace.count("lost_block_skipped") == 1


class TestStreamAndLoadHelpers:
    def test_operator_crash_times(self):
        plan = FaultPlan.scripted([
            FaultEvent(3.0, "operator_crash"),
            FaultEvent(1.0, "operator_crash"),
            FaultEvent(2.0, "node_fail", "n1"),
        ])
        assert operator_crash_times(plan) == [1.0, 3.0]

    def test_burst_rate_windows(self):
        plan = FaultPlan.scripted(
            [FaultEvent(10.0, "load_burst", duration=5.0, magnitude=3.0)])
        rate = burst_rate(lambda t: 100.0, plan)
        assert rate(9.9) == 100.0
        assert rate(10.0) == 300.0
        assert rate(14.9) == 300.0
        assert rate(15.0) == 100.0

    def test_burst_rate_no_events_returns_base_fn(self):
        base = lambda t: 42.0
        assert burst_rate(base, FaultPlan.scripted([])) is base

    def test_burst_series(self):
        plan = FaultPlan.scripted(
            [FaultEvent(2.0, "load_burst", duration=2.0, magnitude=2.0)])
        out = burst_series([10.0] * 6, plan, dt=1.0)
        assert out.tolist() == [10.0, 10.0, 20.0, 20.0, 10.0, 10.0]
